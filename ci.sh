#!/usr/bin/env bash
# Local CI: formatting, lints, tier-1 build + full test suite.
# Everything runs offline against the vendored dependency shims.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests =="
cargo test -q --offline

echo "== workspace tests =="
cargo test -q --workspace --offline

echo "CI OK"
