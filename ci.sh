#!/usr/bin/env bash
# Local CI: formatting, lints, tier-1 build + full test suite.
# Everything runs offline against the vendored dependency shims.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build =="
cargo build --release --offline
# The root package build skips workspace-member bins; the smoke below
# drives the experiment binaries, so build them explicitly.
cargo build --release --offline -p amdb-experiments

echo "== tier-1: tests =="
cargo test -q --offline

echo "== workspace tests =="
cargo test -q --workspace --offline

echo "== consistency suite (amdb-consistency + core acceptance properties) =="
cargo test -q --offline -p amdb-consistency
cargo test -q --offline -p amdb-core --test consistency

echo "== parallel sweep smoke (--jobs 2) + determinism =="
# The bins write results/ + BENCH_sweep.json relative to cwd; run the smoke
# from a scratch dir so quick-fidelity output never clobbers the committed
# full-fidelity CSVs.
BIN="$PWD/target/release"
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
# fig2 quick grid, serial vs 2 workers: stdout (tables) must be identical.
(cd "$SMOKE" && "$BIN/fig2" --jobs 1 >fig2_j1.out 2>/dev/null)
(cd "$SMOKE" && "$BIN/fig2" --jobs 2 >fig2_j2.out 2>/dev/null)
cmp "$SMOKE/fig2_j1.out" "$SMOKE/fig2_j2.out" \
  || { echo "fig2 output differs between --jobs 1 and --jobs 2"; exit 1; }
# AMDB_JOBS must steer the worker count the same way.
(cd "$SMOKE" && AMDB_JOBS=2 "$BIN/fig5" >fig5_env.out 2>/dev/null)
(cd "$SMOKE" && "$BIN/fig5" --jobs 1 >fig5_j1.out 2>/dev/null)
cmp "$SMOKE/fig5_j1.out" "$SMOKE/fig5_env.out" \
  || { echo "fig5 output differs between --jobs 1 and AMDB_JOBS=2"; exit 1; }
# E-C consistency sweep, serial vs 2 workers: table must be identical.
(cd "$SMOKE" && "$BIN/extensions_consistency" --jobs 1 >ec_j1.out 2>/dev/null)
(cd "$SMOKE" && "$BIN/extensions_consistency" --jobs 2 >ec_j2.out 2>/dev/null)
cmp "$SMOKE/ec_j1.out" "$SMOKE/ec_j2.out" \
  || { echo "extensions_consistency differs between --jobs 1 and --jobs 2"; exit 1; }

echo "== bench_sweep: serial vs parallel wall-clock =="
(cd "$SMOKE" && "$BIN/bench_sweep" --jobs 2 >/dev/null)
[ -s "$SMOKE/BENCH_sweep.json" ] || { echo "BENCH_sweep.json missing or empty"; exit 1; }
python3 - "$SMOKE/BENCH_sweep.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    b = json.load(f)
for key in ("host_cores", "jobs", "fig2_fig5", "fig3_fig6", "total_serial_s",
            "total_parallel_s", "speedup"):
    if key not in b:
        sys.exit(f"BENCH_sweep.json missing key: {key}")
for fig in ("fig2_fig5", "fig3_fig6"):
    if not b[fig]["identical"]:
        sys.exit(f"BENCH_sweep.json: {fig} serial/parallel outputs diverged")
print(f"bench_sweep ok: {b['total_serial_s']:.1f}s serial vs "
      f"{b['total_parallel_s']:.1f}s with {b['jobs']} jobs "
      f"({b['speedup']:.2f}x, {b['host_cores']} cores)")
EOF

echo "CI OK"
