#!/usr/bin/env bash
# Local CI: formatting, lints, tier-1 build + full test suite.
# Everything runs offline against the vendored dependency shims.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build =="
cargo build --release --offline
# The root package build skips workspace-member bins; the smoke below
# drives the experiment binaries, so build them explicitly.
cargo build --release --offline -p amdb-experiments
# The quickstart example regenerates the quickstart_trace.json artifact.
cargo build --release --offline --example quickstart

echo "== tier-1: tests =="
cargo test -q --offline

echo "== workspace tests =="
cargo test -q --workspace --offline

echo "== consistency suite (amdb-consistency + core acceptance properties) =="
cargo test -q --offline -p amdb-consistency
cargo test -q --offline -p amdb-core --test consistency

echo "== parallel sweep smoke (--jobs 2) + determinism =="
# The bins write results/ + BENCH_sweep.json relative to cwd; run the smoke
# from a scratch dir so quick-fidelity output never clobbers the committed
# full-fidelity CSVs.
BIN="$PWD/target/release"
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
# fig2 quick grid, serial vs 2 workers: stdout (tables) must be identical.
(cd "$SMOKE" && "$BIN/fig2" --jobs 1 >fig2_j1.out 2>/dev/null)
(cd "$SMOKE" && "$BIN/fig2" --jobs 2 >fig2_j2.out 2>/dev/null)
cmp "$SMOKE/fig2_j1.out" "$SMOKE/fig2_j2.out" \
  || { echo "fig2 output differs between --jobs 1 and --jobs 2"; exit 1; }
# AMDB_JOBS must steer the worker count the same way.
(cd "$SMOKE" && AMDB_JOBS=2 "$BIN/fig5" >fig5_env.out 2>/dev/null)
(cd "$SMOKE" && "$BIN/fig5" --jobs 1 >fig5_j1.out 2>/dev/null)
cmp "$SMOKE/fig5_j1.out" "$SMOKE/fig5_env.out" \
  || { echo "fig5 output differs between --jobs 1 and AMDB_JOBS=2"; exit 1; }
# E-C consistency sweep, serial vs 2 workers: table must be identical.
(cd "$SMOKE" && "$BIN/extensions_consistency" --jobs 1 >ec_j1.out 2>/dev/null)
(cd "$SMOKE" && "$BIN/extensions_consistency" --jobs 2 >ec_j2.out 2>/dev/null)
cmp "$SMOKE/ec_j1.out" "$SMOKE/ec_j2.out" \
  || { echo "extensions_consistency differs between --jobs 1 and --jobs 2"; exit 1; }
# E-PA parallel-apply sweep, serial vs 2 workers: the rendered table *and*
# the results CSV must be byte-identical for any jobs count.
mkdir -p "$SMOKE/pa_j1" "$SMOKE/pa_j2"
(cd "$SMOKE/pa_j1" && "$BIN/extensions_parallel_apply" --jobs 1 >pa.out 2>/dev/null)
(cd "$SMOKE/pa_j2" && "$BIN/extensions_parallel_apply" --jobs 2 >pa.out 2>/dev/null)
cmp "$SMOKE/pa_j1/pa.out" "$SMOKE/pa_j2/pa.out" \
  || { echo "extensions_parallel_apply differs between --jobs 1 and --jobs 2"; exit 1; }
cmp "$SMOKE/pa_j1/results/extensions_parallel_apply.csv" "$SMOKE/pa_j2/results/extensions_parallel_apply.csv" \
  || { echo "extensions_parallel_apply.csv differs between --jobs 1 and --jobs 2"; exit 1; }
# obs_slo SLO/alert sweep: the rendered alert timeline *and* the results
# CSV must be byte-identical for any jobs count.
mkdir -p "$SMOKE/slo_j1" "$SMOKE/slo_j2"
(cd "$SMOKE/slo_j1" && "$BIN/obs_slo" --jobs 1 >obs_slo.out 2>/dev/null)
(cd "$SMOKE/slo_j2" && "$BIN/obs_slo" --jobs 2 >obs_slo.out 2>/dev/null)
cmp "$SMOKE/slo_j1/obs_slo.out" "$SMOKE/slo_j2/obs_slo.out" \
  || { echo "obs_slo output differs between --jobs 1 and --jobs 2"; exit 1; }
cmp "$SMOKE/slo_j1/results/obs_slo_alerts.csv" "$SMOKE/slo_j2/results/obs_slo_alerts.csv" \
  || { echo "obs_slo_alerts.csv differs between --jobs 1 and --jobs 2"; exit 1; }
# fig2_sharded scale-out + cross-shard ablation: the rendered tables *and*
# every results CSV must be byte-identical for any jobs count.
mkdir -p "$SMOKE/sh_j1" "$SMOKE/sh_j2"
(cd "$SMOKE/sh_j1" && "$BIN/fig2_sharded" --jobs 1 >sharded.out 2>/dev/null)
(cd "$SMOKE/sh_j2" && "$BIN/fig2_sharded" --jobs 2 >sharded.out 2>/dev/null)
cmp "$SMOKE/sh_j1/sharded.out" "$SMOKE/sh_j2/sharded.out" \
  || { echo "fig2_sharded output differs between --jobs 1 and --jobs 2"; exit 1; }
for csv in fig2_sharded.csv fig2_sharded_p95.csv \
           fig2_sharded_cross_ablation.csv fig2_sharded_cross_ablation_p95.csv; do
  cmp "$SMOKE/sh_j1/results/$csv" "$SMOKE/sh_j2/results/$csv" \
    || { echo "$csv differs between --jobs 1 and --jobs 2"; exit 1; }
done
# E-SL shared-log extensions: backend grid, per-backend failover, and the
# log-replica fault grid — rendered tables *and* every results CSV must be
# byte-identical for any jobs count.
mkdir -p "$SMOKE/sl_j1" "$SMOKE/sl_j2"
(cd "$SMOKE/sl_j1" && "$BIN/extensions_shared_log" --jobs 1 >esl.out 2>/dev/null)
(cd "$SMOKE/sl_j2" && "$BIN/extensions_shared_log" --jobs 2 >esl.out 2>/dev/null)
cmp "$SMOKE/sl_j1/esl.out" "$SMOKE/sl_j2/esl.out" \
  || { echo "extensions_shared_log differs between --jobs 1 and --jobs 2"; exit 1; }
for csv in extensions_shared_log_backends.csv extensions_shared_log_failover.csv \
           extensions_shared_log_faults.csv; do
  cmp "$SMOKE/sl_j1/results/$csv" "$SMOKE/sl_j2/results/$csv" \
    || { echo "$csv differs between --jobs 1 and --jobs 2"; exit 1; }
done
# The fault grid's acceptance invariant: no cell loses an acked write.
awk -F, 'NR>1 && $NF != 0 { print "fault cell " $1 " lost acked writes"; bad=1 } END { exit bad }' \
  "$SMOKE/sl_j1/results/extensions_shared_log_faults.csv" \
  || { echo "shared-log fault grid lost acked writes"; exit 1; }
# The replication-backend knob must be invisible until opted into:
# `--backend statement` renders byte-identically to the flag-less default
# (whose fingerprint bench_simcore pins to the pre-backend pipeline).
(cd "$SMOKE" && "$BIN/fig2" --backend statement --jobs 1 >fig2_stmt.out 2>/dev/null)
cmp "$SMOKE/fig2_j1.out" "$SMOKE/fig2_stmt.out" \
  || { echo "fig2 --backend statement differs from the default pipeline"; exit 1; }
(cd "$SMOKE" && "$BIN/fig5" --backend statement --jobs 1 >fig5_stmt.out 2>/dev/null)
cmp "$SMOKE/fig5_j1.out" "$SMOKE/fig5_stmt.out" \
  || { echo "fig5 --backend statement differs from the default pipeline"; exit 1; }
# fleet_report (the fleet observability plane): per-shard top tables, the
# fleet alert timeline, and the OpenMetrics dump must all be byte-identical
# for any jobs count.
mkdir -p "$SMOKE/fl_j1" "$SMOKE/fl_j2"
(cd "$SMOKE/fl_j1" && "$BIN/fleet_report" --jobs 1 >fleet.out 2>/dev/null)
(cd "$SMOKE/fl_j2" && "$BIN/fleet_report" --jobs 2 >fleet.out 2>/dev/null)
cmp "$SMOKE/fl_j1/fleet.out" "$SMOKE/fl_j2/fleet.out" \
  || { echo "fleet_report output differs between --jobs 1 and --jobs 2"; exit 1; }
for art in fleet_report.csv fleet_alerts.csv fleet_metrics.prom; do
  cmp "$SMOKE/fl_j1/results/$art" "$SMOKE/fl_j2/results/$art" \
    || { echo "$art differs between --jobs 1 and --jobs 2"; exit 1; }
done
# The exposition dump must be well-formed OpenMetrics text: ends in # EOF.
tail -n 1 "$SMOKE/fl_j1/results/fleet_metrics.prom" | grep -qx '# EOF' \
  || { echo "fleet_metrics.prom does not end with # EOF"; exit 1; }

echo "== bench_sweep: serial vs parallel wall-clock =="
(cd "$SMOKE" && "$BIN/bench_sweep" --jobs 2 >/dev/null)
[ -s "$SMOKE/BENCH_sweep.json" ] || { echo "BENCH_sweep.json missing or empty"; exit 1; }
python3 - "$SMOKE/BENCH_sweep.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    b = json.load(f)
for key in ("host_cores", "jobs", "fig2_fig5", "fig3_fig6", "total_serial_s",
            "total_parallel_s", "speedup"):
    if key not in b:
        sys.exit(f"BENCH_sweep.json missing key: {key}")
for fig in ("fig2_fig5", "fig3_fig6"):
    if not b[fig]["identical"]:
        sys.exit(f"BENCH_sweep.json: {fig} serial/parallel outputs diverged")
print(f"bench_sweep ok: {b['total_serial_s']:.1f}s serial vs "
      f"{b['total_parallel_s']:.1f}s with {b['jobs']} jobs "
      f"({b['speedup']:.2f}x, {b['host_cores']} cores)")
EOF

echo "== plan cache: transparency cross-diff + hot-path speedup =="
# The statement->plan cache must be a pure speed knob: fig2 with the cache
# disabled must render byte-identically to the cached run above.
(cd "$SMOKE" && AMDB_PLAN_CACHE=off "$BIN/fig2" --jobs 1 >fig2_nocache.out 2>/dev/null)
cmp "$SMOKE/fig2_j1.out" "$SMOKE/fig2_nocache.out" \
  || { echo "fig2 output differs with AMDB_PLAN_CACHE=off — cache is not transparent"; exit 1; }
# bench_hotpath times the quick fig2/fig5 sweep cache-off vs cache-on,
# asserts identical rendered tables, and records the wall clock.
(cd "$SMOKE" && "$BIN/bench_hotpath" --jobs 1 >/dev/null 2>&1)
[ -s "$SMOKE/BENCH_hotpath.json" ] || { echo "BENCH_hotpath.json missing or empty"; exit 1; }
python3 - "$SMOKE/BENCH_hotpath.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    b = json.load(f)
for key in ("bench", "host_cores", "jobs", "cache_off_s", "cache_on_s",
            "speedup", "identical"):
    if key not in b:
        sys.exit(f"BENCH_hotpath.json missing key: {key}")
if not b["identical"]:
    sys.exit("BENCH_hotpath.json: cache-on/off outputs diverged")
print(f"bench_hotpath ok: {b['cache_off_s']:.1f}s cache-off vs "
      f"{b['cache_on_s']:.1f}s cache-on ({b['speedup']:.2f}x)")
EOF

echo "== bench_apply: scheduler dispatch cost + in-order commit =="
# bench_apply times the dependency scheduler against the serial pop-one
# path over 200k synthetic row events, asserts the committed LSN order is
# identical, and re-renders the quick E-PA sweep at two jobs counts.
(cd "$SMOKE" && "$BIN/bench_apply" --jobs 2 >/dev/null 2>&1)
[ -s "$SMOKE/BENCH_apply.json" ] || { echo "BENCH_apply.json missing or empty"; exit 1; }
python3 - "$SMOKE/BENCH_apply.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    b = json.load(f)
for key in ("bench", "host_cores", "jobs", "events", "serial_dispatch_s",
            "batched_dispatch_s", "dispatch_overhead", "mean_batch",
            "sweep_serial_s", "sweep_jobs_s", "in_order", "identical"):
    if key not in b:
        sys.exit(f"BENCH_apply.json missing key: {key}")
if not b["in_order"]:
    sys.exit("BENCH_apply.json: scheduler broke commit order")
if not b["identical"]:
    sys.exit("BENCH_apply.json: E-PA sweep output varies with --jobs")
if b["mean_batch"] < 1.0:
    sys.exit("BENCH_apply.json: implausible mean batch size")
print(f"bench_apply ok: dispatch {b['serial_dispatch_s']:.3f}s serial vs "
      f"{b['batched_dispatch_s']:.3f}s batched over {b['events']} events "
      f"({b['dispatch_overhead']:.2f}x, mean batch {b['mean_batch']:.2f})")
EOF

echo "== bench_simcore: sim-core raw speed + output fingerprints =="
# bench_simcore times the quick grids (best-of-3, serial) against the
# pre-program baseline and fingerprints every rendered table; the
# fingerprints are the byte contract for the whole sim-core program
# (DESIGN.md section 13) and must match the values pinned in
# crates/experiments/tests/simcore_fingerprint.rs.
(cd "$SMOKE" && "$BIN/bench_simcore" >/dev/null 2>&1)
[ -s "$SMOKE/BENCH_simcore.json" ] || { echo "BENCH_simcore.json missing or empty"; exit 1; }
python3 - "$SMOKE/BENCH_simcore.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    b = json.load(f)
for key in ("bench", "host_cores", "fig2_fig5", "fig3_fig6",
            "total_baseline_s", "total_current_s", "speedup"):
    if key not in b:
        sys.exit(f"BENCH_simcore.json missing key: {key}")
pinned = {"fig2_fig5": "55294b98a489afbd", "fig3_fig6": "85d2c4117df7430a"}
for fig, fp in pinned.items():
    if b[fig]["fingerprint"] != fp:
        sys.exit(f"BENCH_simcore.json: {fig} fingerprint {b[fig]['fingerprint']} != pinned {fp}")
print(f"bench_simcore ok: {b['total_baseline_s']:.1f}s pre-program vs "
      f"{b['total_current_s']:.1f}s current ({b['speedup']:.2f}x), "
      "fingerprints pinned")
EOF
# The release-only fingerprint test re-derives the same bytes through the
# library path (serial and --jobs 4) — run it explicitly since the debug
# workspace suite skips it.
cargo test -q --release --offline -p amdb-experiments --test simcore_fingerprint

echo "== bench_sharded: sharded-tree wall-clock + output fingerprints =="
# bench_sharded times the quick fig2_sharded grid at shards {1, 4}
# (best-of-3, serial), asserts repetition-identical rendered tables, and
# records the N-tree dispatch overhead.
(cd "$SMOKE" && "$BIN/bench_sharded" >/dev/null 2>&1)
[ -s "$SMOKE/BENCH_sharded.json" ] || { echo "BENCH_sharded.json missing or empty"; exit 1; }
python3 - "$SMOKE/BENCH_sharded.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    b = json.load(f)
for key in ("bench", "host_cores", "shards1", "shards4", "total_current_s",
            "tree_overhead_x"):
    if key not in b:
        sys.exit(f"BENCH_sharded.json missing key: {key}")
for grid in ("shards1", "shards4"):
    for key in ("current_s", "fingerprint"):
        if key not in b[grid]:
            sys.exit(f"BENCH_sharded.json missing key: {grid}.{key}")
print(f"bench_sharded ok: {b['shards1']['current_s']:.2f}s at 1 shard vs "
      f"{b['shards4']['current_s']:.2f}s at 4 shards "
      f"({b['tree_overhead_x']:.2f}x tree overhead)")
EOF

echo "== bench_backend: per-backend wall-clock + statement bit-identity =="
# bench_backend times the quick fig2/fig5 grid under each replication
# backend (best-of-3, serial), fingerprints the rendered tables, and binds
# the statement backend to the default pipeline's pinned fingerprint.
(cd "$SMOKE" && "$BIN/bench_backend" >/dev/null 2>&1)
[ -s "$SMOKE/BENCH_backend.json" ] || { echo "BENCH_backend.json missing or empty"; exit 1; }
python3 - "$SMOKE/BENCH_backend.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    b = json.load(f)
for key in ("bench", "host_cores", "default", "statement", "row", "shared_log",
            "statement_matches_default", "shared_log_overhead_x"):
    if key not in b:
        sys.exit(f"BENCH_backend.json missing key: {key}")
for grid in ("default", "statement", "row", "shared_log"):
    for key in ("current_s", "fingerprint"):
        if key not in b[grid]:
            sys.exit(f"BENCH_backend.json missing key: {grid}.{key}")
if not b["statement_matches_default"]:
    sys.exit("BENCH_backend.json: --backend statement diverged from the default grid")
# Transitive pre-PR pin: the default grid's fingerprint is pinned by
# bench_simcore, so statement == default == pre-backend pipeline.
pinned = "55294b98a489afbd"
if b["statement"]["fingerprint"] != pinned:
    sys.exit(f"BENCH_backend.json: statement fingerprint "
             f"{b['statement']['fingerprint']} != pinned {pinned}")
print(f"bench_backend ok: statement {b['statement']['current_s']:.2f}s == default, "
      f"shared-log {b['shared_log']['current_s']:.2f}s "
      f"({b['shared_log_overhead_x']:.2f}x), fingerprint pinned")
EOF

echo "== bench_obs: disabled probes + tsdb-on telemetry overhead =="
# bench_obs asserts the two cost contracts of the observability plane:
# disabled probes compile to a discriminant test (sub-ns each) and the
# attached time-series store keeps the telemetry quick grid within 5%
# while producing bit-identical run results.
(cd "$SMOKE" && "$BIN/bench_obs" >/dev/null 2>&1)
[ -s "$SMOKE/BENCH_obs.json" ] || { echo "BENCH_obs.json missing or empty"; exit 1; }
python3 - "$SMOKE/BENCH_obs.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    b = json.load(f)
for key in ("bench", "host_cores", "disabled_probe_ns", "tsdb_off", "tsdb_on",
            "tsdb_overhead_x"):
    if key not in b:
        sys.exit(f"BENCH_obs.json missing key: {key}")
for grid in ("tsdb_off", "tsdb_on"):
    for key in ("current_s", "fingerprint"):
        if key not in b[grid]:
            sys.exit(f"BENCH_obs.json missing key: {grid}.{key}")
if b["disabled_probe_ns"] >= 4.0:
    sys.exit(f"BENCH_obs.json: disabled probe volley {b['disabled_probe_ns']:.3f} ns "
             "(4 probes must stay sub-ns each)")
if b["tsdb_off"]["fingerprint"] != b["tsdb_on"]["fingerprint"]:
    sys.exit("BENCH_obs.json: attaching the tsdb changed run results")
if b["tsdb_overhead_x"] > 1.05:
    sys.exit(f"BENCH_obs.json: tsdb overhead {b['tsdb_overhead_x']:.3f}x > 1.05x budget")
print(f"bench_obs ok: {b['disabled_probe_ns']:.3f} ns disabled volley, "
      f"tsdb {b['tsdb_overhead_x']:.3f}x on the telemetry quick grid")
EOF

echo "== heartbeat regression: row-format delay reads the apply stamp =="
# Pinned regression for the row-format heartbeat bug (shipped master
# timestamps measured zero delay); must stay green in isolation.
cargo test -q --offline -p amdb-repl row_format_delay_reads_apply_stamp_not_shipped_timestamp

echo "== trace artifacts regenerate deterministically =="
# quickstart_trace.json and results/obs_trace.json + obs_series.csv are
# regenerable (gitignored) artifacts; two fresh regenerations must agree
# byte-for-byte, and a repo-root copy — when present — must be fresh.
mkdir -p "$SMOKE/art1" "$SMOKE/art2"
(cd "$SMOKE/art1" && "$BIN/examples/quickstart" >quickstart.out 2>/dev/null)
(cd "$SMOKE/art2" && "$BIN/examples/quickstart" >quickstart.out 2>/dev/null)
cmp "$SMOKE/art1/quickstart.out" "$SMOKE/art2/quickstart.out" \
  || { echo "quickstart output not deterministic"; exit 1; }
cmp "$SMOKE/art1/quickstart_trace.json" "$SMOKE/art2/quickstart_trace.json" \
  || { echo "quickstart_trace.json not deterministic"; exit 1; }
if [ -f quickstart_trace.json ]; then
  cmp quickstart_trace.json "$SMOKE/art1/quickstart_trace.json" \
    || { echo "stale quickstart_trace.json — rerun the quickstart example"; exit 1; }
fi
(cd "$SMOKE/art1" && "$BIN/obs_report" >obs_report.out 2>/dev/null)
(cd "$SMOKE/art2" && "$BIN/obs_report" >obs_report.out 2>/dev/null)
cmp "$SMOKE/art1/obs_report.out" "$SMOKE/art2/obs_report.out" \
  || { echo "obs_report output not deterministic"; exit 1; }
for art in obs_trace.json obs_series.csv; do
  cmp "$SMOKE/art1/results/$art" "$SMOKE/art2/results/$art" \
    || { echo "$art not deterministic"; exit 1; }
  if [ -f "results/$art" ]; then
    cmp "results/$art" "$SMOKE/art1/results/$art" \
      || { echo "stale results/$art — rerun obs_report"; exit 1; }
  fi
done

echo "== micro-bench contract: disabled telemetry + tsdb probes stay sub-ns =="
# micro_substrates carries explicit 50M-iteration loops that assert the
# disabled-path flow probe and tsdb probe each cost < 1 ns; a regression
# panics the bench.
cargo bench --offline -p amdb-bench --bench micro_substrates | tail -n 5

echo "== micro-bench: apply scheduler dispatch vs serial pop =="
cargo bench --offline -p amdb-bench --bench micro_apply | tail -n 5

echo "== micro-bench contract: plan-cache hit beats parse+plan by >= 5x =="
# micro_sql carries an explicit loop that asserts a cached prepare is at
# least 5x faster than an uncached parse+plan; a regression panics.
cargo bench --offline -p amdb-bench --bench micro_sql | tail -n 4

echo "CI OK"
