//! Property tests pinning the sketch↔exact agreement contract: the
//! streaming sketch's p50/p95/p99 land within one bucket width of the exact
//! `percentile_sorted` answer, across adversarial shapes — constant
//! (degenerate mass), bimodal (interpolation across a gap), and heavy-tail
//! (orders-of-magnitude spread).

use amdb_metrics::{percentile_sorted, QuantileSketch};
use proptest::prelude::*;

/// Record `vals` into a fresh latency sketch and check p50/p95/p99 (plus
/// the extremes) against the exact percentiles. "One bucket width" is
/// measured at whichever of (exact, estimate) sits in the wider bucket —
/// both order statistics bracketing the rank live at or below that bucket.
fn agrees_within_one_bucket(vals: &[f64]) -> Result<(), TestCaseError> {
    let mut sketch = QuantileSketch::latency();
    for &v in vals {
        sketch.record(v);
    }
    let mut sorted = vals.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
        let exact = percentile_sorted(&sorted, p).unwrap();
        let est = sketch.percentile(p).unwrap();
        let width = sketch
            .config()
            .bucket_width(exact)
            .max(sketch.config().bucket_width(est));
        prop_assert!(
            (est - exact).abs() <= width,
            "p{}: est {} vs exact {} exceeds bucket width {}",
            p,
            est,
            exact,
            width
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Constant streams: every quantile must collapse to (within a bucket
    /// of) the single value, for any magnitude across nine decades.
    #[test]
    fn constant_distribution_agrees(
        v in 1e-3..1e6f64,
        n in 1..400usize,
    ) {
        let vals = vec![v; n];
        agrees_within_one_bucket(&vals)?;
    }

    /// Bimodal streams: two modes separated by orders of magnitude, with
    /// arbitrary mixing. Quantile ranks that straddle the gap are where
    /// naive bucket-midpoint schemes lose the interpolation contract.
    #[test]
    fn bimodal_distribution_agrees(
        lo in 1e-2..5.0f64,
        hi in 50.0..5e4f64,
        picks in prop::collection::vec(0..2usize, 1..300),
    ) {
        let vals: Vec<f64> = picks
            .iter()
            .map(|&p| if p == 0 { lo } else { hi })
            .collect();
        agrees_within_one_bucket(&vals)?;
    }

    /// Heavy-tailed streams: Pareto-style `scale · u^(-1/α)` with a light
    /// α, spreading samples across many decades within one run.
    #[test]
    fn heavy_tail_distribution_agrees(
        us in prop::collection::vec(1e-6..1.0f64, 1..300),
        scale in 1e-2..10.0f64,
        inv_alpha in 0.5..3.0f64,
    ) {
        let vals: Vec<f64> = us.iter().map(|&u| scale * u.powf(-inv_alpha)).collect();
        agrees_within_one_bucket(&vals)?;
    }

    /// Mixed junk: zeros and sub-resolution values interleaved with normal
    /// magnitudes must keep the contract (the low bucket has width `min`).
    #[test]
    fn low_bucket_mixtures_agree(
        vals in prop::collection::vec(
            prop_oneof![
                Just(0.0),
                1e-6..1e-3f64,
                1e-3..1e3f64,
            ],
            1..200,
        ),
    ) {
        agrees_within_one_bucket(&vals)?;
    }

    /// Merging shard sketches is exactly equivalent to one big sketch, so
    /// the merged estimate inherits the same agreement bound.
    #[test]
    fn merged_shards_agree(
        vals in prop::collection::vec(1e-3..1e5f64, 2..300),
        shards in 2..5usize,
    ) {
        let mut parts: Vec<QuantileSketch> =
            (0..shards).map(|_| QuantileSketch::latency()).collect();
        for (i, &v) in vals.iter().enumerate() {
            parts[i % shards].record(v);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge(p);
        }
        let mut whole = QuantileSketch::latency();
        for &v in &vals {
            whole.record(v);
        }
        // Bucket state matches exactly; `sum` may differ in the last ulp
        // because shard sums associate float additions differently.
        prop_assert_eq!(merged.count(), whole.count());
        for p in [0.0, 25.0, 50.0, 95.0, 99.0, 100.0] {
            prop_assert_eq!(merged.percentile(p), whole.percentile(p));
        }
        agrees_within_one_bucket(&vals)?;
    }
}
