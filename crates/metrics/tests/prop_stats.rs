//! Property tests for the statistics helpers.

use amdb_metrics::{mean, median, percentile, stddev, trimmed_mean, OnlineStats, Summary};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e9..1e9f64, 1..max_len)
}

proptest! {
    #[test]
    fn mean_within_min_max(xs in finite_vec(100)) {
        let m = mean(&xs).expect("non-empty");
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
    }

    #[test]
    fn trimmed_mean_within_min_max(xs in finite_vec(100), trim in 0.0..0.45f64) {
        if let Some(tm) = trimmed_mean(&xs, trim) {
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(tm >= lo - 1e-6 && tm <= hi + 1e-6);
        }
    }

    #[test]
    fn trimming_reduces_outlier_influence(core in finite_vec(50)) {
        // Adding a huge outlier moves the plain mean more than the trimmed
        // mean (with enough samples for the trim to cut at least one).
        let mut xs = core.clone();
        xs.extend(std::iter::repeat_n(0.0, 20));
        let tm_before = trimmed_mean(&xs, 0.05).expect("some");
        let m_before = mean(&xs).expect("some");
        xs.push(1e15);
        let tm_after = trimmed_mean(&xs, 0.05).expect("some");
        let m_after = mean(&xs).expect("some");
        prop_assert!((tm_after - tm_before).abs() <= (m_after - m_before).abs() + 1e-6);
    }

    #[test]
    fn percentile_monotone_in_p(xs in finite_vec(60), p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&xs, lo).expect("some");
        let b = percentile(&xs, hi).expect("some");
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn median_is_50th_percentile(xs in finite_vec(60)) {
        prop_assert_eq!(median(&xs), percentile(&xs, 50.0));
    }

    #[test]
    fn online_matches_batch(xs in finite_vec(200)) {
        let mut o = OnlineStats::new();
        for &x in &xs { o.push(x); }
        prop_assert!((o.mean().expect("some") - mean(&xs).expect("some")).abs() < 1e-3);
        if xs.len() > 1 {
            let scale = stddev(&xs).expect("some").abs().max(1.0);
            prop_assert!((o.stddev().expect("some") - stddev(&xs).expect("some")).abs() / scale < 1e-6);
        }
    }

    #[test]
    fn online_merge_any_split(xs in finite_vec(100), split in any::<prop::sample::Index>()) {
        let k = split.index(xs.len());
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..k] { a.push(x); }
        for &x in &xs[k..] { b.push(x); }
        a.merge(&b);
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.push(x); }
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean().expect("some") - whole.mean().expect("some")).abs() < 1e-3);
    }

    #[test]
    fn summary_orderings_hold(xs in finite_vec(100)) {
        let s = Summary::of(&xs).expect("non-empty");
        prop_assert!(s.min <= s.p5 + 1e-9);
        prop_assert!(s.p5 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert_eq!(s.count, xs.len());
    }
}
