//! Fixed-bucket linear histogram with overflow/underflow buckets.

/// A simple linear histogram over `[lo, hi)` with `n` equal buckets plus
/// explicit underflow and overflow counters. Used by the experiment harness
/// to sanity-check delay distributions without storing every sample.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `buckets` equal-width buckets.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `buckets == 0` (programmer error, not data).
    /// Use [`Histogram::try_new`] to handle untrusted bounds without
    /// panicking.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        Self::try_new(lo, hi, buckets).expect("invalid histogram construction")
    }

    /// Fallible constructor: `Err` describes the problem instead of
    /// panicking when `lo >= hi`, the bounds are non-finite, or
    /// `buckets == 0`.
    pub fn try_new(lo: f64, hi: f64, buckets: usize) -> Result<Self, String> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(format!("histogram bounds must be finite, got [{lo}, {hi})"));
        }
        if lo >= hi {
            return Err(format!("histogram range [{lo}, {hi}) is empty"));
        }
        if buckets == 0 {
            return Err("histogram needs at least one bucket".to_string());
        }
        Ok(Self {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
        })
    }

    /// Record one sample. Non-finite samples are counted but kept out of
    /// the buckets: `-inf` lands in underflow, `+inf` and `NaN` in overflow
    /// (a NaN would otherwise silently corrupt bucket 0's count).
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x.is_nan() {
            self.overflow += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Guard against FP rounding right at the upper edge.
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total samples recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range top.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// `(bucket_lo, bucket_hi, count)` triples for rendering.
    pub fn iter_bounds(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets.iter().enumerate().map(move |(i, &c)| {
            let lo = self.lo + width * i as f64;
            (lo, lo + width, c)
        })
    }

    /// Approximate quantile from bucket midpoints (`q` in 0..=1), ignoring
    /// under/overflow mass. Returns `None` when no in-range samples exist.
    pub fn approx_quantile(&self, q: f64) -> Option<f64> {
        let in_range: u64 = self.buckets.iter().sum();
        if in_range == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = (q * in_range as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + width * (i as f64 + 0.5));
            }
        }
        unreachable!("target <= total in-range count");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // hi edge is exclusive -> overflow
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
        assert!(h.buckets().iter().all(|&c| c == 0));
    }

    #[test]
    fn quantile_midpoint() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.approx_quantile(0.5).unwrap();
        assert!((med - 49.5).abs() <= 1.0, "got {med}");
        assert_eq!(h.approx_quantile(1.5), None);
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.approx_quantile(0.5), None);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn try_new_reports_each_failure_mode() {
        assert!(Histogram::try_new(1.0, 1.0, 4).is_err(), "empty range");
        assert!(Histogram::try_new(2.0, 1.0, 4).is_err(), "inverted range");
        assert!(Histogram::try_new(0.0, 1.0, 0).is_err(), "zero buckets");
        assert!(Histogram::try_new(f64::NAN, 1.0, 4).is_err(), "NaN bound");
        assert!(
            Histogram::try_new(0.0, f64::INFINITY, 4).is_err(),
            "infinite bound"
        );
        assert!(Histogram::try_new(0.0, 1.0, 4).is_ok());
    }

    #[test]
    fn non_finite_samples_stay_out_of_buckets() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.overflow(), 2, "NaN and +inf counted as overflow");
        assert_eq!(h.underflow(), 1, "-inf counted as underflow");
        assert!(h.buckets().iter().all(|&c| c == 0), "buckets untouched");
    }

    #[test]
    fn single_sample_quantile_is_that_bucket() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(4.2);
        let q = h.approx_quantile(0.5).unwrap();
        assert!((q - 4.5).abs() < 1e-12, "bucket midpoint, got {q}");
    }

    #[test]
    fn iter_bounds_cover_range() {
        let h = Histogram::new(0.0, 10.0, 5);
        let bounds: Vec<_> = h.iter_bounds().collect();
        assert_eq!(bounds.len(), 5);
        assert_eq!(bounds[0].0, 0.0);
        assert!((bounds[4].1 - 10.0).abs() < 1e-12);
    }
}
