//! Plain-text and CSV rendering of experiment result tables.
//!
//! Every figure in the paper is reported by the harness as a table whose rows
//! are the x-axis (number of concurrent users) and whose columns are the
//! series (number of slaves). This module renders those tables for the
//! terminal and as CSV for external plotting.

use std::fmt::Write as _;
use std::io;

/// A rectangular results table: a header row plus data rows of equal arity.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: Vec<String>) -> Self {
        Self {
            title: title.into(),
            header,
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    ///
    /// # Panics
    /// Panics when the row arity does not match the header (harness bug).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(row);
    }

    /// Convenience: append a row of floats rendered with `prec` decimals;
    /// `None` cells render as `-`.
    pub fn push_float_row(&mut self, label: impl Into<String>, cells: &[Option<f64>], prec: usize) {
        let mut row = vec![label.into()];
        for c in cells {
            row.push(match c {
                Some(v) => format!("{v:.prec$}"),
                None => "-".to_string(),
            });
        }
        self.push_row(row);
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render as an aligned monospace table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{cell:>width$}", width = widths[i]);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let line = |cells: &[String]| -> String {
            cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        };
        let _ = writeln!(out, "{}", line(&self.header));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row));
        }
        out
    }
}

/// Write a table as CSV to any writer (typically a results file).
pub fn write_csv<W: io::Write>(table: &Table, w: &mut W) -> io::Result<()> {
    w.write_all(table.to_csv().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "throughput",
            vec!["users".into(), "1 slave".into(), "2 slaves".into()],
        );
        t.push_row(vec!["50".into(), "7.1".into(), "7.3".into()]);
        t.push_float_row("75", &[Some(9.5), None], 2);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.contains("## throughput"));
        assert!(r.contains("users"));
        assert!(r.contains("9.50"));
        assert!(r.contains('-'), "separator line present");
    }

    #[test]
    fn csv_round_trip_simple() {
        let c = sample().to_csv();
        let mut lines = c.lines();
        assert_eq!(lines.next().unwrap(), "users,1 slave,2 slaves");
        assert_eq!(lines.next().unwrap(), "50,7.1,7.3");
        assert_eq!(lines.next().unwrap(), "75,9.50,-");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", vec!["a,b".into(), "c\"d".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        let c = t.to_csv();
        assert!(c.starts_with("\"a,b\",\"c\"\"d\""));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn write_csv_to_vec() {
        let mut buf = Vec::new();
        write_csv(&sample(), &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("users"));
    }
}
