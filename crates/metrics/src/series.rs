//! Timestamped sample series (e.g. clock offset over a 20-minute run, Fig. 4).

/// A time series of `(t_seconds, value)` samples, kept in insertion order.
/// The experiment harness records simulated-time samples and later summarizes
/// or windows them.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample taken at `t` seconds.
    pub fn push(&mut self, t: f64, value: f64) {
        self.points.push((t, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Values only (drops timestamps).
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Samples with `lo <= t < hi`.
    pub fn window(&self, lo: f64, hi: f64) -> TimeSeries {
        TimeSeries {
            points: self
                .points
                .iter()
                .copied()
                .filter(|&(t, _)| t >= lo && t < hi)
                .collect(),
        }
    }

    /// Least-squares linear fit `value ≈ a + b·t`; returns `(a, b)`.
    ///
    /// Used to verify the linear clock-drift trend in the Fig. 4 reproduction
    /// ("the time difference ... surges linearly from 7 ms up to 50 ms").
    /// Returns `None` with fewer than two points or zero time variance.
    pub fn linear_fit(&self) -> Option<(f64, f64)> {
        let n = self.points.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let (st, sv): (f64, f64) = self
            .points
            .iter()
            .fold((0.0, 0.0), |(a, b), &(t, v)| (a + t, b + v));
        let (mt, mv) = (st / nf, sv / nf);
        let mut cov = 0.0;
        let mut var = 0.0;
        for &(t, v) in &self.points {
            cov += (t - mt) * (v - mv);
            var += (t - mt) * (t - mt);
        }
        if var == 0.0 {
            return None;
        }
        let b = cov / var;
        Some((mv - b * mt, b))
    }

    /// Downsample by averaging consecutive groups of `k` samples
    /// (timestamp = group mean). `k == 0` is treated as 1.
    pub fn downsample(&self, k: usize) -> TimeSeries {
        let k = k.max(1);
        let mut out = TimeSeries::new();
        for chunk in self.points.chunks(k) {
            let n = chunk.len() as f64;
            let (st, sv) = chunk
                .iter()
                .fold((0.0, 0.0), |(a, b), &(t, v)| (a + t, b + v));
            out.push(st / n, sv / n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        let mut s = TimeSeries::new();
        for i in 0..100 {
            s.push(i as f64, 5.0 + 2.0 * i as f64);
        }
        s
    }

    #[test]
    fn window_filters_half_open() {
        let s = ramp();
        let w = s.window(10.0, 20.0);
        assert_eq!(w.len(), 10);
        assert_eq!(w.points()[0].0, 10.0);
        assert_eq!(w.points()[9].0, 19.0);
    }

    #[test]
    fn linear_fit_recovers_slope_and_intercept() {
        let (a, b) = ramp().linear_fit().unwrap();
        assert!((a - 5.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        let mut s = TimeSeries::new();
        assert_eq!(s.linear_fit(), None);
        s.push(1.0, 1.0);
        assert_eq!(s.linear_fit(), None);
        s.push(1.0, 2.0); // zero time variance
        assert_eq!(s.linear_fit(), None);
    }

    #[test]
    fn downsample_averages_groups() {
        let s = ramp();
        let d = s.downsample(10);
        assert_eq!(d.len(), 10);
        // first group: t = 0..9 -> mean 4.5; v = 5 + 2t -> mean 14.0
        assert!((d.points()[0].0 - 4.5).abs() < 1e-12);
        assert!((d.points()[0].1 - 14.0).abs() < 1e-12);
    }

    #[test]
    fn values_extracts_in_order() {
        let mut s = TimeSeries::new();
        s.push(0.0, 3.0);
        s.push(1.0, 1.0);
        assert_eq!(s.values(), vec![3.0, 1.0]);
    }
}
