//! Streaming quantile sketch with logarithmic buckets.
//!
//! The full-sample percentile path in this crate ([`crate::percentile`])
//! keeps every observation in a `Vec<f64>` — exact, but memory grows with
//! the run. Hot observability probes (per-statement service demands, pool
//! waits, replication waterfall legs) want bounded state instead. This is
//! the classic HDR-histogram / DDSketch compromise: fixed log-spaced
//! buckets, so memory is bounded by the configured bucket count and the
//! estimate error by the width of one bucket.
//!
//! **Agreement contract.** [`QuantileSketch::quantile`] mirrors
//! [`crate::percentile_sorted`]'s interpolation rule — rank
//! `q × (n − 1)`, linear between the two adjacent order statistics — but
//! evaluated over bucket *representatives* (arithmetic midpoints). Each
//! order statistic is off by at most half its bucket's width, so the
//! estimate lands within one bucket width of the exact percentile. The
//! proptest suite (`tests/prop_sketch.rs`) pins this across constant,
//! bimodal and heavy-tailed inputs.
//!
//! Sketches with the same [`SketchConfig`] merge losslessly (bucket-wise
//! counter addition), so per-shard sketches can be combined after a
//! parallel sweep without re-observing anything.

/// Bucket layout of a [`QuantileSketch`].
///
/// Bucket `i` covers `[min·growth^i, min·growth^(i+1))`; one extra "low"
/// bucket covers `[0, min)` (and receives non-positive values). Values
/// beyond the last bucket clamp into it — size `max_buckets` to cover the
/// physical range, the defaults span `1 µs` to beyond `10^9 ms`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchConfig {
    /// Upper edge of the low bucket: smallest value resolved logarithmically.
    pub min: f64,
    /// Ratio between consecutive bucket edges (must be `> 1`).
    pub growth: f64,
    /// Number of logarithmic buckets (excluding the low bucket).
    pub max_buckets: usize,
}

impl SketchConfig {
    /// Latency preset: resolves `1 µs` to `~10^12 ms` at ±2.5 % relative
    /// error (growth 1.05, 700 buckets ≈ 5.6 KiB of counters). Suits any
    /// millisecond- or microsecond-denominated series in this repo.
    pub const LATENCY: SketchConfig = SketchConfig {
        min: 1e-3,
        growth: 1.05,
        max_buckets: 700,
    };

    /// Index of the logarithmic bucket holding `v` (`None` → low bucket).
    fn index(&self, v: f64) -> Option<usize> {
        if v.is_nan() || v < self.min {
            // Non-positive, sub-min and NaN all land in the low bucket.
            return None;
        }
        let i = ((v / self.min).ln() / self.growth.ln()).floor();
        Some((i.max(0.0) as usize).min(self.max_buckets - 1))
    }

    /// Lower edge of logarithmic bucket `i`.
    fn edge(&self, i: usize) -> f64 {
        self.min * self.growth.powi(i as i32)
    }

    /// Width of the bucket that holds `v` — the agreement-contract unit.
    pub fn bucket_width(&self, v: f64) -> f64 {
        match self.index(v) {
            None => self.min,
            Some(i) => self.edge(i + 1) - self.edge(i),
        }
    }

    /// Representative (arithmetic midpoint) of the bucket holding rank `k`.
    fn representative(&self, bucket: Option<usize>) -> f64 {
        match bucket {
            None => self.min / 2.0,
            Some(i) => (self.edge(i) + self.edge(i + 1)) / 2.0,
        }
    }
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig::LATENCY
    }
}

/// Mergeable, bounded-memory quantile estimator over log-spaced buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    cfg: SketchConfig,
    /// Count of values below `cfg.min` (including zero and negatives).
    low: u64,
    /// Logarithmic bucket counters, grown lazily up to `cfg.max_buckets`.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min_seen: f64,
    max_seen: f64,
}

impl QuantileSketch {
    /// Empty sketch with the given layout.
    pub fn new(cfg: SketchConfig) -> Self {
        assert!(cfg.min > 0.0, "sketch min must be positive");
        assert!(cfg.growth > 1.0, "sketch growth must exceed 1");
        assert!(cfg.max_buckets > 0, "sketch needs at least one bucket");
        Self {
            cfg,
            low: 0,
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// Empty sketch with the [`SketchConfig::LATENCY`] layout.
    pub fn latency() -> Self {
        Self::new(SketchConfig::LATENCY)
    }

    /// The bucket layout.
    pub fn config(&self) -> &SketchConfig {
        &self.cfg
    }

    /// Record one observation. NaN is ignored (it has no rank).
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        match self.cfg.index(v) {
            None => self.low += 1,
            Some(i) => {
                if self.counts.len() <= i {
                    self.counts.resize(i + 1, 0);
                }
                self.counts[i] += 1;
            }
        }
        self.count += 1;
        self.sum += v;
        self.min_seen = self.min_seen.min(v);
        self.max_seen = self.max_seen.max(v);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (exact, not bucketed).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all observations, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest observation, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min_seen)
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max_seen)
    }

    /// Bucket holding 0-based rank `k` (`None` → low bucket).
    fn bucket_of_rank(&self, k: u64) -> Option<usize> {
        if k < self.low {
            return None;
        }
        let mut cum = self.low;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if k < cum {
                return Some(i);
            }
        }
        // Unreachable for k < count; defend with the last non-empty bucket.
        Some(self.counts.len().saturating_sub(1))
    }

    /// Estimated value of the 0-based `k`-th smallest observation, clamped
    /// to the exact observed range.
    fn order_statistic(&self, k: u64) -> f64 {
        self.cfg
            .representative(self.bucket_of_rank(k))
            .clamp(self.min_seen, self.max_seen)
    }

    /// Estimated `q`-quantile, `q ∈ [0, 1]`. Mirrors
    /// [`crate::percentile_sorted`]'s rank interpolation over bucket
    /// representatives; `None` when empty or `q` out of range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        if self.count == 1 {
            return Some(self.order_statistic(0));
        }
        let rank = q * (self.count - 1) as f64;
        let lo = rank.floor() as u64;
        let hi = rank.ceil() as u64;
        Some(if lo == hi {
            self.order_statistic(lo)
        } else {
            let frac = rank - lo as f64;
            self.order_statistic(lo) * (1.0 - frac) + self.order_statistic(hi) * frac
        })
    }

    /// Estimated `p`-th percentile, `p ∈ [0, 100]` — the
    /// [`crate::percentile`]-flavoured spelling of [`Self::quantile`].
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if !(0.0..=100.0).contains(&p) {
            return None;
        }
        self.quantile(p / 100.0)
    }

    /// Fold another sketch into this one. Panics if the layouts differ —
    /// merging incompatible sketches is a probe-wiring bug, the same policy
    /// the metrics registry applies to kind mismatches.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.cfg, other.cfg,
            "cannot merge sketches with different layouts"
        );
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.low += other.low;
        self.count += other.count;
        self.sum += other.sum;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Fold an iterator of sketches into one with the latency layout — the
    /// fleet-rollup shape: per-shard leg sketches in, one fleet-wide
    /// distribution out. Panics (via [`Self::merge`]) if any input uses a
    /// different layout.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a QuantileSketch>) -> QuantileSketch {
        let mut out = QuantileSketch::latency();
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Bytes of counter state currently allocated (bounded by
    /// `max_buckets × 8`), for memory accounting in reports.
    pub fn state_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u64>()
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile_sorted;

    #[test]
    fn merged_folds_many_sketches_like_one() {
        let mut whole = QuantileSketch::latency();
        let mut parts = vec![QuantileSketch::latency(); 3];
        for i in 0..300 {
            let v = (i % 97) as f64 + 0.5;
            whole.record(v);
            parts[i % 3].record(v);
        }
        let fleet = QuantileSketch::merged(parts.iter());
        assert_eq!(fleet.count(), whole.count());
        assert_eq!(fleet.sum(), whole.sum());
        assert_eq!(fleet.quantile(0.95), whole.quantile(0.95));
        assert_eq!(QuantileSketch::merged([].into_iter()).count(), 0);
    }

    fn assert_within_one_bucket(sketch: &QuantileSketch, sorted: &[f64], p: f64) {
        let exact = percentile_sorted(sorted, p).unwrap();
        let est = sketch.percentile(p).unwrap();
        let width = sketch
            .config()
            .bucket_width(exact)
            .max(sketch.config().bucket_width(est));
        assert!(
            (est - exact).abs() <= width,
            "p{p}: est {est} vs exact {exact} (width {width})"
        );
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::latency();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn single_value_is_recovered_within_bucket_width() {
        let mut s = QuantileSketch::latency();
        s.record(42.0);
        let est = s.quantile(0.5).unwrap();
        assert!((est - 42.0).abs() <= s.config().bucket_width(42.0));
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn quantiles_track_exact_percentiles() {
        let mut s = QuantileSketch::latency();
        let mut vals: Vec<f64> = (1..=1000).map(|i| (i as f64) * 0.37).collect();
        for &v in &vals {
            s.record(v);
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            assert_within_one_bucket(&s, &vals, p);
        }
    }

    #[test]
    fn zero_and_subresolution_values_land_in_the_low_bucket() {
        let mut s = QuantileSketch::latency();
        for _ in 0..10 {
            s.record(0.0);
        }
        // Exact p50 is 0; the estimate may sit anywhere in the low bucket.
        let est = s.quantile(0.5).unwrap();
        assert!(est.abs() <= s.config().min);
        assert_eq!(s.count(), 10);
    }

    #[test]
    fn nan_is_ignored() {
        let mut s = QuantileSketch::latency();
        s.record(f64::NAN);
        s.record(1.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn out_of_range_values_clamp_into_the_last_bucket() {
        let mut s = QuantileSketch::new(SketchConfig {
            min: 1.0,
            growth: 2.0,
            max_buckets: 4,
        });
        s.record(1e12); // far beyond 1·2^4
        assert_eq!(s.count(), 1);
        // Clamped to the observed max, not the bucket midpoint.
        assert_eq!(s.quantile(1.0), Some(1e12));
    }

    #[test]
    fn merge_equals_recording_everything_in_one_sketch() {
        let mut a = QuantileSketch::latency();
        let mut b = QuantileSketch::latency();
        let mut all = QuantileSketch::latency();
        for i in 0..500 {
            let v = 0.5 + (i as f64) * 1.3;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    #[should_panic(expected = "different layouts")]
    fn merging_mismatched_layouts_panics() {
        let mut a = QuantileSketch::latency();
        let b = QuantileSketch::new(SketchConfig {
            min: 1.0,
            growth: 2.0,
            max_buckets: 8,
        });
        a.merge(&b);
    }

    #[test]
    fn memory_is_bounded_by_max_buckets() {
        let mut s = QuantileSketch::latency();
        for i in 0..100_000 {
            s.record((i % 977) as f64 * 13.7 + 0.001);
        }
        assert!(s.state_bytes() <= SketchConfig::LATENCY.max_buckets * 8);
    }
}
