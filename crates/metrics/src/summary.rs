//! Online (single-pass) statistics and batch summaries.

/// Welford online accumulator: mean / variance / min / max without storing
/// samples. Numerically stable; suitable for millions of simulated samples.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feed one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the samples, `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sample variance (n-1), `None` with fewer than 2 samples.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation, `None` with fewer than 2 samples.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest sample, `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A batch summary of a sample vector: count, mean, median, stddev,
/// p5/p95/p99, min, max, and the 5 %-per-tail trimmed mean used by the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub median: f64,
    pub stddev: f64,
    pub p5: f64,
    pub p95: f64,
    pub p99: f64,
    pub min: f64,
    pub max: f64,
    pub trimmed_mean_5pct: f64,
}

impl Summary {
    /// Summarize a sample set. Returns `None` for an empty input.
    pub fn of(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in Summary input"));
        let mean = crate::mean(&v).expect("non-empty");
        // `v` is non-empty here, so every percentile is defined.
        let pct = |p: f64| crate::percentile_sorted(&v, p).expect("non-empty input");
        Some(Summary {
            count: v.len(),
            mean,
            median: pct(50.0),
            stddev: crate::stddev(&v).unwrap_or(0.0),
            p5: pct(5.0),
            p95: pct(95.0),
            p99: pct(99.0),
            min: v[0],
            max: v[v.len() - 1],
            trimmed_mean_5pct: crate::trimmed_mean(&v, 0.05).unwrap_or(mean),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        assert_eq!(o.count(), 8);
        assert!((o.mean().unwrap() - crate::mean(&xs).unwrap()).abs() < 1e-12);
        assert!((o.stddev().unwrap() - crate::stddev(&xs).unwrap()).abs() < 1e-12);
        assert_eq!(o.min(), Some(1.0));
        assert_eq!(o.max(), Some(9.0));
    }

    #[test]
    fn online_empty() {
        let o = OnlineStats::new();
        assert_eq!(o.mean(), None);
        assert_eq!(o.stddev(), None);
        assert_eq!(o.min(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean().unwrap() - all.mean().unwrap()).abs() < 1e-10);
        assert!((a.variance().unwrap() - all.variance().unwrap()).abs() < 1e-8);
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.median - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(s.p95 > s.median && s.p99 > s.p95);
        // trimmed mean of a symmetric set equals the mean
        assert!((s.trimmed_mean_5pct - 50.5).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn summary_single_sample_is_degenerate_but_defined() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p5, 7.0);
        assert_eq!(s.p99, 7.0);
        assert_eq!(s.stddev, 0.0, "undefined stddev reported as 0");
        assert_eq!(s.trimmed_mean_5pct, 7.0);
    }
}
