//! # amdb-metrics — measurement and summary statistics
//!
//! Statistics utilities used throughout the reproduction: trimmed means (the
//! paper cuts the top and bottom 5 % of replication-delay samples as outliers,
//! §IV-B.1), medians, standard deviations, percentiles, online (Welford)
//! accumulation, fixed-bucket histograms, time series, and simple table /
//! CSV rendering for the experiment harnesses.
//!
//! All functions are deterministic and allocation-conscious: the sorting
//! helpers sort *copies* only when the caller cannot give up its data, and the
//! online accumulators never allocate after construction.

pub mod histogram;
pub mod series;
pub mod sketch;
pub mod summary;
pub mod table;

pub use histogram::Histogram;
pub use series::TimeSeries;
pub use sketch::{QuantileSketch, SketchConfig};
pub use summary::{OnlineStats, Summary};
pub use table::{write_csv, Table};

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample standard deviation (n-1 denominator). Returns `None` when fewer
/// than two samples are present.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some((ss / (xs.len() - 1) as f64).sqrt())
}

/// Coefficient of variation (stddev / mean); `None` when undefined.
///
/// Schad et al. report a CoV of 21 % for small-instance CPU performance; the
/// cloud substrate's calibration test uses this helper to verify it matches.
pub fn coefficient_of_variation(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    if m == 0.0 {
        return None;
    }
    Some(stddev(xs)? / m)
}

/// Median via sorting a copy. Returns `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Linear-interpolation percentile (`p` in 0..=100) over a copy of the data.
///
/// Uses the common "exclusive rank, linear interpolation" definition: the
/// percentile of a single-element slice is that element for every `p`.
/// Returns `None` when the input contains NaN (a NaN sample means an
/// upstream bug, and a panic here would take down a whole experiment run).
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&p) || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN screened above"));
    percentile_sorted(&v, p)
}

/// Percentile over data the caller has already sorted ascending. Returns
/// `None` for an empty slice or `p` outside `0..=100` (an earlier version
/// panicked on empty input in release builds via index underflow).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    Some(if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    })
}

/// Mean after discarding the lowest and highest `trim_fraction` of samples.
///
/// This is the paper's outlier treatment: *"Both average is sampled with the
/// top 5 % and the bottom 5 % data cut out as outliers, because of network
/// fluctuation"* (§IV-B.1). `trim_fraction` is per-tail, so the paper's
/// treatment is `trimmed_mean(xs, 0.05)`.
///
/// Returns `None` when trimming would discard everything, the input is
/// empty, or the input contains NaN (like [`percentile`], bad samples report
/// as an absent statistic rather than a panic). A `trim_fraction` of `0.0`
/// degenerates to the plain mean.
///
/// The per-tail cut is `floor(n × trim_fraction)` — the conventional
/// truncated-mean definition. Pinned consequence for the paper's 5 % trim:
/// **samples with `n < 20` are not trimmed at all** (the cut floors to
/// zero), `n in 20..40` drops exactly one sample per tail, and so on. Small
/// heartbeat windows therefore keep their outliers rather than discarding
/// half of a 3-sample window; do not "fix" this to `ceil` or rounding
/// without recalibrating every committed result.
pub fn trimmed_mean(xs: &[f64], trim_fraction: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..0.5).contains(&trim_fraction) || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN screened above"));
    let cut = (v.len() as f64 * trim_fraction).floor() as usize;
    let kept = &v[cut..v.len() - cut];
    if kept.is_empty() {
        return None;
    }
    mean(kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
    }

    #[test]
    fn stddev_needs_two_samples() {
        assert_eq!(stddev(&[1.0]), None);
        assert!(stddev(&[1.0, 1.0]).unwrap().abs() < 1e-12);
    }

    #[test]
    fn stddev_known_value() {
        // Sample stddev of {2,4,4,4,5,5,7,9} is ~2.138 (population is 2.0).
        let s = stddev(&[2., 4., 4., 4., 5., 5., 7., 9.]).unwrap();
        assert!((s - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn percentile_bounds() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 100.0), Some(40.0));
        assert_eq!(percentile(&xs, 50.0), Some(25.0));
        assert_eq!(percentile(&xs, 101.0), None);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn percentile_nan_input_is_none_not_panic() {
        // Used to panic inside the sort comparator on NaN.
        assert_eq!(percentile(&[1.0, f64::NAN, 3.0], 50.0), None);
        assert_eq!(trimmed_mean(&[1.0, f64::NAN, 3.0], 0.05), None);
    }

    #[test]
    fn percentile_sorted_empty_is_none() {
        assert_eq!(percentile_sorted(&[], 50.0), None);
    }

    #[test]
    fn percentile_sorted_rejects_out_of_range_p() {
        assert_eq!(percentile_sorted(&[1.0, 2.0], -0.1), None);
        assert_eq!(percentile_sorted(&[1.0, 2.0], 100.1), None);
    }

    #[test]
    fn percentile_sorted_single_element_any_p() {
        assert_eq!(percentile_sorted(&[3.5], 0.0), Some(3.5));
        assert_eq!(percentile_sorted(&[3.5], 100.0), Some(3.5));
    }

    #[test]
    fn trimmed_mean_single_sample() {
        // 5 % per-tail trim of one sample floors to zero cut: the sample
        // survives and the trimmed mean is the sample itself.
        assert_eq!(trimmed_mean(&[42.0], 0.05), Some(42.0));
    }

    #[test]
    fn trimmed_mean_cuts_tails() {
        // 20 samples: one huge outlier at each end; 5% per-tail trim drops both.
        let mut xs: Vec<f64> = (0..18).map(|i| 10.0 + i as f64 * 0.1).collect();
        xs.push(-1e9);
        xs.push(1e9);
        let tm = trimmed_mean(&xs, 0.05).unwrap();
        assert!((tm - 10.85).abs() < 1e-9, "got {tm}");
    }

    #[test]
    fn trimmed_mean_tiny_samples_are_untrimmed_at_5pct() {
        // Pinned: floor(n × 0.05) = 0 for every n < 20, so the 5 % trim is
        // the identity on tiny samples — outliers included.
        for n in 1..20usize {
            let mut xs: Vec<f64> = (0..n.saturating_sub(1)).map(|i| i as f64).collect();
            xs.push(1e9); // blatant outlier must survive
            assert_eq!(
                trimmed_mean(&xs, 0.05),
                mean(&xs),
                "n={n} must not be trimmed"
            );
        }
    }

    #[test]
    fn trimmed_mean_cut_count_boundaries() {
        // floor semantics: n=20..39 cuts exactly 1 per tail, n=40 cuts 2.
        let build = |n: usize| -> Vec<f64> {
            let mut xs: Vec<f64> = vec![10.0; n - 2];
            xs.push(-1e9);
            xs.push(1e9);
            xs
        };
        // n=20: both outliers (one per tail) are dropped.
        assert_eq!(trimmed_mean(&build(20), 0.05), Some(10.0));
        // n=39: still exactly one per tail.
        assert_eq!(trimmed_mean(&build(39), 0.05), Some(10.0));
        // n=40: two per tail — outliers and one honest sample per tail go.
        assert_eq!(trimmed_mean(&build(40), 0.05), Some(10.0));
        // n=19: nothing is cut — the mean is dragged off 10.0 by the
        // (slightly cancelling) outliers instead of recovering it.
        let tm = trimmed_mean(&build(19), 0.05).unwrap();
        assert_eq!(tm, mean(&build(19)).unwrap(), "n=19 is untrimmed");
        assert!((tm - 10.0).abs() > 0.5, "n=19 keeps outliers, got {tm}");
    }

    #[test]
    fn trimmed_mean_matches_mean_exactly_below_twenty() {
        // Bit-exact equivalence on a realistic small heartbeat window
        // (sorted input, so the summation order matches exactly).
        let xs = [11.9, 12.2, 12.5, 13.1, 14.0, 55.0];
        assert_eq!(
            trimmed_mean(&xs, 0.05).unwrap().to_bits(),
            mean(&xs).unwrap().to_bits()
        );
    }

    #[test]
    fn trimmed_mean_zero_trim_is_mean() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(trimmed_mean(&xs, 0.0), mean(&xs));
    }

    #[test]
    fn trimmed_mean_rejects_bad_fraction() {
        assert_eq!(trimmed_mean(&[1.0, 2.0], 0.5), None);
        assert_eq!(trimmed_mean(&[1.0, 2.0], -0.1), None);
    }

    #[test]
    fn cov_matches_hand_computation() {
        let xs = [8.0, 10.0, 12.0];
        let cov = coefficient_of_variation(&xs).unwrap();
        assert!((cov - 2.0 / 10.0).abs() < 1e-12);
    }
}
