//! Fleet-level telemetry rollup across shard trees.
//!
//! Each shard tree runs its own [`Telemetry`] bundle — waterfall plus
//! per-shard [`SloEngine`](crate::SloEngine) — and the sharded front never
//! synchronizes them during a run (that would serialize the trees). After
//! the run, [`FleetTelemetry`] absorbs the per-tree bundles and answers
//! fleet questions:
//!
//! * a merged alert timeline naming every transition `(shard, component,
//!   instance)`, sorted deterministically by `(time, shard, rule,
//!   instance)`;
//! * fleet-wide staleness-leg distributions, folded from the per-shard
//!   [`QuantileSketch`]es with [`QuantileSketch::merged`];
//! * total FIFO-evicted traces, so silent trace loss anywhere in the
//!   fleet is visible in one number.

use crate::slo::{AlertEvent, AlertKind};
use crate::Telemetry;
use amdb_metrics::{QuantileSketch, Table};

/// Per-shard telemetry bundles collected after a sharded run.
#[derive(Debug, Clone, Default)]
pub struct FleetTelemetry {
    shards: Vec<(u32, Telemetry)>,
}

impl FleetTelemetry {
    /// Empty rollup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take ownership of shard `shard`'s telemetry bundle.
    pub fn absorb(&mut self, shard: u32, t: Telemetry) {
        self.shards.push((shard, t));
        self.shards.sort_by_key(|(s, _)| *s);
    }

    /// Number of absorbed shard bundles.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True before any bundle is absorbed.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Per-shard bundles in shard order.
    pub fn shards(&self) -> impl Iterator<Item = (u32, &Telemetry)> {
        self.shards.iter().map(|(s, t)| (*s, t))
    }

    /// The merged fleet alert timeline, sorted by `(time, shard, rule,
    /// instance)` — a total, deterministic order regardless of absorb
    /// order.
    pub fn alerts(&self) -> Vec<&AlertEvent> {
        let mut out: Vec<&AlertEvent> = self
            .shards
            .iter()
            .flat_map(|(_, t)| t.slo.alerts().iter())
            .collect();
        out.sort_by_key(|a| (a.at, a.shard, a.rule, a.inst));
        out
    }

    /// `(shard, rule, instance)` triples currently firing, fleet-wide.
    pub fn firing(&self) -> Vec<(u32, &'static str, u32)> {
        self.shards
            .iter()
            .flat_map(|(s, t)| t.slo.firing().into_iter().map(move |(r, i)| (*s, r, i)))
            .collect()
    }

    /// Fleet-wide end-to-end replication-delay distribution (commit →
    /// applied), folded over every shard's every slave.
    pub fn merged_e2e(&self) -> QuantileSketch {
        QuantileSketch::merged(
            self.shards
                .iter()
                .flat_map(|(_, t)| t.waterfall.legs().iter().map(|l| &l.e2e_ms)),
        )
    }

    /// Fleet-wide apply-leg distribution (SQL-thread pickup → applied).
    pub fn merged_apply(&self) -> QuantileSketch {
        QuantileSketch::merged(
            self.shards
                .iter()
                .flat_map(|(_, t)| t.waterfall.legs().iter().map(|l| &l.apply_ms)),
        )
    }

    /// Fleet-wide relay-queue-wait distribution (delivery → pickup).
    pub fn merged_queue(&self) -> QuantileSketch {
        QuantileSketch::merged(
            self.shards
                .iter()
                .flat_map(|(_, t)| t.waterfall.legs().iter().map(|l| &l.queue_ms)),
        )
    }

    /// Writes traced to commit across the fleet.
    pub fn total_committed(&self) -> u64 {
        self.shards.iter().map(|(_, t)| t.waterfall.committed).sum()
    }

    /// Traces lost to the FIFO caps across the fleet.
    pub fn total_evicted(&self) -> u64 {
        self.shards.iter().map(|(_, t)| t.waterfall.evicted).sum()
    }

    /// The fleet alert timeline as a table — the per-tree
    /// [`Telemetry::alert_table`] columns plus a leading `shard` column.
    pub fn alert_table(&self) -> Table {
        let mut t = Table::new(
            "fleet alert timeline",
            vec![
                "t (s)".into(),
                "shard".into(),
                "rule".into(),
                "metric".into(),
                "inst".into(),
                "event".into(),
                "value".into(),
                "attribution".into(),
            ],
        );
        for a in self.alerts() {
            t.push_row(vec![
                format!("{:.3}", a.at.as_micros() as f64 / 1e6),
                a.shard.to_string(),
                a.rule.to_string(),
                a.metric.as_str().to_string(),
                a.inst.to_string(),
                match a.kind {
                    AlertKind::Fire => "FIRE".into(),
                    AlertKind::Clear => "clear".into(),
                },
                format!("{:.1}", a.value),
                a.attribution.clone().unwrap_or_else(|| "-".into()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::{Direction, SloMetric, SloRule, SloSample};
    use crate::TelemetryConfig;
    use amdb_obs::Component;
    use amdb_obs::ResourceUsage;
    use amdb_sim::SimTime;

    fn surge_rule() -> SloRule {
        SloRule {
            name: "delay_surge",
            metric: SloMetric::ReplicationDelayMs,
            direction: Direction::Above,
            fire_at: 100.0,
            clear_at: 25.0,
            window: 1,
            arm_above: None,
        }
    }

    fn shard_telemetry(shard: u32, fire_at_ms: u64) -> Telemetry {
        let cfg = TelemetryConfig {
            enabled: true,
            rules: vec![surge_rule()],
            shard,
            shards: 4,
            ..TelemetryConfig::default()
        };
        let mut t = Telemetry::new(&cfg, 1);
        let rows = [ResourceUsage {
            comp: Component::Cpu,
            inst: 1,
            label: "slave0 cpu".into(),
            utilization: 0.97,
            peak_queue: 3,
        }];
        t.slo.observe(&SloSample {
            at: SimTime::from_millis(fire_at_ms),
            delay_ms: &[400.0],
            cpu_util: &[],
            pool_waiting: 0.0,
            ops_per_s: 0.0,
            sla_violation_rate: 0.0,
            rows: &rows,
            rtt_ms: 16.0,
            rtt_class: "same zone",
        });
        // Seed one waterfall trace so leg merges have mass.
        let tr = t.waterfall.begin_write(SimTime::ZERO, SimTime::ZERO);
        t.waterfall
            .on_service_start(tr, SimTime::from_millis(1), 0, 1);
        t.waterfall.on_commit(tr, SimTime::from_millis(2));
        t.waterfall.on_deliver(0, 1, SimTime::from_millis(3));
        t.waterfall.on_apply_start(0, 1, SimTime::from_millis(3));
        t.waterfall
            .on_applied(0, 1, SimTime::from_millis(4 + shard as u64));
        t
    }

    #[test]
    fn fleet_timeline_orders_by_time_then_shard() {
        let mut f = FleetTelemetry::new();
        // Absorb out of order; shard 2 fires earlier than shard 0.
        f.absorb(2, shard_telemetry(2, 100));
        f.absorb(0, shard_telemetry(0, 500));
        assert_eq!(f.len(), 2);
        let alerts = f.alerts();
        assert_eq!(alerts.len(), 2);
        assert_eq!((alerts[0].shard, alerts[0].inst), (2, 0));
        assert_eq!(alerts[1].shard, 0);
        assert_eq!(
            f.firing(),
            vec![(0, "delay_surge", 0), (2, "delay_surge", 0)]
        );
        let csv = f.alert_table().to_csv();
        assert!(csv.contains("0.100,2,delay_surge,replication_delay_ms,0,FIRE"));
        assert!(csv.contains("0.500,0,delay_surge"));
    }

    #[test]
    fn merged_legs_fold_every_shard() {
        let mut f = FleetTelemetry::new();
        f.absorb(0, shard_telemetry(0, 100));
        f.absorb(1, shard_telemetry(1, 100));
        assert_eq!(f.total_committed(), 2);
        assert_eq!(f.total_evicted(), 0);
        let e2e = f.merged_e2e();
        assert_eq!(e2e.count(), 2, "one applied write per shard");
        // Shard 0 applied at 2 ms delay, shard 1 at 3 ms.
        assert!(e2e.max().unwrap() > e2e.min().unwrap());
        assert_eq!(f.merged_apply().count(), 2);
        assert_eq!(f.merged_queue().count(), 2);
    }
}
