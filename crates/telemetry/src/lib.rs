//! # amdb-telemetry — online telemetry for the simulated cluster
//!
//! Where `amdb-obs` explains a run *after the fact* (steady-window
//! bottleneck attribution, trace export), this crate watches the pipeline
//! *as it runs* — the operator-facing layer a production replicated tier
//! would ship:
//!
//! * [`StalenessWaterfall`] — causal per-write tracing keyed by binlog
//!   sequence: client issue → proxy route → master commit → relay delivery
//!   → apply → first stale read, decomposing each slave's replication
//!   delay into network / queueing / apply legs held in bounded
//!   [`amdb_metrics::QuantileSketch`]es;
//! * [`SloEngine`] — deterministic threshold rules with hysteresis over
//!   the sampled series, including the **delay-surge detector** that
//!   attributes each surge to the saturated resource via the bottleneck
//!   attributor's rows at surge onset;
//! * [`Telemetry`] — the bundle the cluster owns when the
//!   [`TelemetryConfig`] knob is on.
//!
//! ## Determinism contract
//!
//! Telemetry reads only simulated time and deterministic cluster state,
//! never mutates anything the workload observes, and stores its state in
//! ordered containers — so enabling it changes no run result, and its own
//! outputs (alert timeline, waterfall, flow events) are byte-identical
//! across runs and `--jobs` counts. When the knob is off the cluster holds
//! no `Telemetry` at all and every probe site is a single `Option`
//! discriminant test, preserving the `Obs::Null` zero-cost path.

pub mod fleet;
pub mod slo;
pub mod waterfall;

pub use fleet::FleetTelemetry;
pub use slo::{
    attribute_surge, paper_rules, AlertEvent, AlertKind, Direction, SloEngine, SloMetric, SloRule,
    SloSample,
};
pub use waterfall::{ClientLeg, SlaveLeg, StalenessWaterfall, DEFAULT_MAX_INFLIGHT};

use amdb_metrics::Table;
use amdb_obs::bottleneck::DEFAULT_SATURATION_THRESHOLD;

/// Telemetry configuration knob carried in `ClusterConfig`. Enabling it
/// forces observability on (telemetry records through the same recorder).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Trace writes, run the SLO engine, emit flow events.
    pub enabled: bool,
    /// Alert rules evaluated at every obs sampling tick.
    pub rules: Vec<SloRule>,
    /// Utilization at which surge attribution considers a resource
    /// saturated (the bottleneck attributor's threshold).
    pub saturation_threshold: f64,
    /// Which shard tree this telemetry instance watches (0 unsharded);
    /// stamped into every alert so fleet timelines name `(shard,
    /// component, instance)`.
    pub shard: u32,
    /// Total shard trees in the fleet. A sharded front multiplies the
    /// outstanding write traces by its fan-out, so the waterfall's FIFO
    /// eviction cap scales with this count.
    pub shards: u32,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            rules: paper_rules(),
            saturation_threshold: DEFAULT_SATURATION_THRESHOLD,
            shard: 0,
            shards: 1,
        }
    }
}

impl TelemetryConfig {
    /// Enabled with the default (paper) rule set.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// The live telemetry state a cluster owns while running.
#[derive(Debug, Clone)]
pub struct Telemetry {
    pub waterfall: StalenessWaterfall,
    pub slo: SloEngine,
}

impl Telemetry {
    /// Build from the knob for a cluster with `n_slaves` slaves. The
    /// waterfall's FIFO cap scales with the fleet's shard count so a
    /// scatter-gather front fanning out to N trees keeps the same
    /// per-tree trace retention as an unsharded cluster.
    pub fn new(cfg: &TelemetryConfig, n_slaves: usize) -> Self {
        let cap = DEFAULT_MAX_INFLIGHT * cfg.shards.max(1) as usize;
        Self {
            waterfall: StalenessWaterfall::with_inflight_cap(n_slaves, cap),
            slo: SloEngine::new(cfg.rules.clone(), cfg.saturation_threshold).with_shard(cfg.shard),
        }
    }

    /// The alert timeline as a table (one row per fire/clear transition).
    pub fn alert_table(&self) -> Table {
        let mut t = Table::new(
            "alert timeline",
            vec![
                "t (s)".into(),
                "rule".into(),
                "metric".into(),
                "inst".into(),
                "event".into(),
                "value".into(),
                "attribution".into(),
            ],
        );
        for a in self.slo.alerts() {
            t.push_row(vec![
                format!("{:.3}", a.at.as_micros() as f64 / 1e6),
                a.rule.to_string(),
                a.metric.as_str().to_string(),
                a.inst.to_string(),
                match a.kind {
                    AlertKind::Fire => "FIRE".into(),
                    AlertKind::Clear => "clear".into(),
                },
                format!("{:.1}", a.value),
                a.attribution.clone().unwrap_or_else(|| "-".into()),
            ]);
        }
        t
    }

    /// Terminal rendering: waterfall plus alert timeline.
    pub fn render(&self) -> String {
        let mut out = self.waterfall.table().render();
        out.push_str(&self.alert_table().render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_off_with_paper_rules() {
        let c = TelemetryConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.rules, paper_rules());
        assert!(TelemetryConfig::enabled().enabled);
    }

    #[test]
    fn telemetry_bundle_renders_empty() {
        let t = Telemetry::new(&TelemetryConfig::enabled(), 2);
        let r = t.render();
        assert!(r.contains("staleness waterfall"));
        assert!(r.contains("alert timeline"));
    }
}
