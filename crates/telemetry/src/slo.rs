//! Deterministic SLO monitor and alert engine.
//!
//! Rules are threshold checks with hysteresis over a rolling window of
//! sampled values — the classic alerting shape ("fire when the 2 s mean
//! replication delay exceeds 500 ms, clear when it falls back under
//! 125 ms") made deterministic: evaluation happens at the cluster's obs
//! sampling tick in simulated time, so the alert timeline is a pure
//! function of the seed.
//!
//! ## Rule grammar
//!
//! A [`SloRule`] is `(name, metric, direction, fire_at, clear_at, window,
//! arm_above)`:
//!
//! * `metric` selects a sampled series ([`SloMetric`]); per-instance
//!   metrics (replication delay per slave, CPU per node) evaluate one
//!   state machine per instance.
//! * `direction` — [`Direction::Above`] fires when the windowed mean
//!   reaches `fire_at` and clears when it drops below `clear_at`
//!   (`clear_at ≤ fire_at`); [`Direction::Below`] mirrors this for
//!   floor-style rules (throughput collapse).
//! * `window` — number of consecutive samples averaged; transitions only
//!   evaluate once the window is full.
//! * `arm_above` — optional arming level for `Below` rules: the rule stays
//!   dormant until the windowed mean first *exceeds* this value, so a
//!   throughput-floor rule does not fire during ramp-up when throughput is
//!   legitimately still zero.
//!
//! ## Surge attribution
//!
//! When a [`SloMetric::ReplicationDelayMs`] rule fires, the engine names
//! the resource responsible using the bottleneck attributor's rows *at the
//! fire instant* (interval utilizations, not steady-window averages):
//! saturated resource if any (deterministically tie-broken by
//! [`BottleneckReport::busiest`]), otherwise the network RTT class when
//! the base RTT is a large fraction of the observed delay, otherwise the
//! busiest CPU. This reproduces the paper's §IV reading: surges start at
//! saturated slaves and migrate to the master as slaves are added.

use amdb_obs::{BottleneckReport, ResourceUsage};
use amdb_sim::SimTime;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Which side of the threshold is unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Fire when the windowed mean rises to `fire_at` (delay, CPU, waits).
    Above,
    /// Fire when the windowed mean falls to `fire_at` (throughput floors).
    Below,
}

/// The sampled series a rule watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloMetric {
    /// True replication delay per slave (ms) — binlog ground truth, not
    /// the heartbeat-quantized observable. One state machine per slave.
    ReplicationDelayMs,
    /// Interval CPU utilization per node (0 = master, `s+1` = slave `s`).
    CpuUtilization,
    /// Connections waiting on the pool (cluster-wide).
    PoolWaiting,
    /// Completed operations per second over the sample interval.
    ThroughputOps,
    /// Consistency-SLA violations per second over the sample interval.
    SlaViolationRate,
}

impl SloMetric {
    /// Stable label used in tables and CSV.
    pub fn as_str(self) -> &'static str {
        match self {
            SloMetric::ReplicationDelayMs => "replication_delay_ms",
            SloMetric::CpuUtilization => "cpu_utilization",
            SloMetric::PoolWaiting => "pool_waiting",
            SloMetric::ThroughputOps => "throughput_ops",
            SloMetric::SlaViolationRate => "sla_violation_rate",
        }
    }
}

/// One alert rule; see the module docs for the grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Stable rule name (static so alert instants never allocate).
    pub name: &'static str,
    pub metric: SloMetric,
    pub direction: Direction,
    /// Windowed-mean level at which the rule fires.
    pub fire_at: f64,
    /// Windowed-mean level at which a firing rule clears (hysteresis).
    pub clear_at: f64,
    /// Samples in the rolling window.
    pub window: usize,
    /// For `Below` rules: stay dormant until the mean first exceeds this.
    pub arm_above: Option<f64>,
}

/// The default rule set used by `TelemetryConfig`: the paper's §IV signals.
pub fn paper_rules() -> Vec<SloRule> {
    vec![
        // The delay-surge detector. Fig 5 puts the healthy 3-slave delay
        // near 100 ms and the surged regimes at 200 ms – 14 s, so a 150 ms
        // windowed mean separates surge from noise at every placement.
        SloRule {
            name: "delay_surge",
            metric: SloMetric::ReplicationDelayMs,
            direction: Direction::Above,
            fire_at: 150.0,
            clear_at: 50.0,
            window: 4,
            arm_above: None,
        },
        SloRule {
            name: "cpu_saturated",
            metric: SloMetric::CpuUtilization,
            direction: Direction::Above,
            fire_at: 0.95,
            clear_at: 0.80,
            window: 4,
            arm_above: None,
        },
        SloRule {
            name: "pool_backlog",
            metric: SloMetric::PoolWaiting,
            direction: Direction::Above,
            fire_at: 4.0,
            clear_at: 1.0,
            window: 4,
            arm_above: None,
        },
        SloRule {
            name: "throughput_collapse",
            metric: SloMetric::ThroughputOps,
            direction: Direction::Below,
            fire_at: 1.0,
            clear_at: 2.0,
            window: 4,
            arm_above: Some(5.0),
        },
        SloRule {
            name: "sla_violations",
            metric: SloMetric::SlaViolationRate,
            direction: Direction::Above,
            fire_at: 5.0,
            clear_at: 1.0,
            window: 4,
            arm_above: None,
        },
    ]
}

/// Did the rule fire or clear?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    Fire,
    Clear,
}

/// One alert transition on the deterministic timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    pub rule: &'static str,
    pub metric: SloMetric,
    /// Shard tree the engine watches (0 for an unsharded cluster), so a
    /// fleet aggregator can name alerts as `(shard, component, instance)`.
    pub shard: u32,
    /// Instance the rule fired for (slave index, node index, or 0).
    pub inst: u32,
    pub kind: AlertKind,
    pub at: SimTime,
    /// The windowed mean at the transition.
    pub value: f64,
    /// For delay-surge fires: the resource the surge is attributed to.
    pub attribution: Option<String>,
}

/// One sampling tick's inputs, gathered by the cluster.
#[derive(Debug, Clone, Copy)]
pub struct SloSample<'a> {
    pub at: SimTime,
    /// True replication delay per slave (ms).
    pub delay_ms: &'a [f64],
    /// Interval CPU utilization per node (0 = master, then slaves).
    pub cpu_util: &'a [f64],
    /// Connections currently waiting on the pool.
    pub pool_waiting: f64,
    /// Completed operations per second over the last interval.
    pub ops_per_s: f64,
    /// Consistency-SLA violations per second over the last interval.
    pub sla_violation_rate: f64,
    /// Interval resource-usage rows for surge attribution (master CPU,
    /// slave CPUs; labels as in the steady-window bottleneck report).
    pub rows: &'a [ResourceUsage],
    /// Base one-way RTT to the slave zone (ms) and its placement class.
    pub rtt_ms: f64,
    pub rtt_class: &'a str,
}

/// Per-(rule, instance) hysteresis state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    window: VecDeque<f64>,
    armed: bool,
    firing: bool,
}

/// The engine: evaluates every rule at every sample and keeps the alert
/// log. All state lives in `BTreeMap`s keyed by (rule index, instance), so
/// evaluation order — and the alert timeline — is deterministic.
#[derive(Debug, Clone)]
pub struct SloEngine {
    rules: Vec<SloRule>,
    saturation_threshold: f64,
    shard: u32,
    state: BTreeMap<(usize, u32), RuleState>,
    alerts: Vec<AlertEvent>,
}

impl SloEngine {
    /// Engine over `rules`; `saturation_threshold` feeds surge attribution.
    pub fn new(rules: Vec<SloRule>, saturation_threshold: f64) -> Self {
        Self {
            rules,
            saturation_threshold,
            shard: 0,
            state: BTreeMap::new(),
            alerts: Vec::new(),
        }
    }

    /// Stamp every alert this engine emits with `shard` — one engine runs
    /// per shard tree, and the fleet aggregator merges their timelines.
    pub fn with_shard(mut self, shard: u32) -> Self {
        self.shard = shard;
        self
    }

    /// The shard this engine's alerts are attributed to.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The configured rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// The full alert log, in firing order.
    pub fn alerts(&self) -> &[AlertEvent] {
        &self.alerts
    }

    /// Rules currently firing, as `(rule name, instance)`.
    pub fn firing(&self) -> Vec<(&'static str, u32)> {
        self.state
            .iter()
            .filter(|(_, s)| s.firing)
            .map(|(&(ri, inst), _)| (self.rules[ri].name, inst))
            .collect()
    }

    /// Feed one sampling tick; returns the transitions it produced (also
    /// appended to [`Self::alerts`]).
    pub fn observe(&mut self, s: &SloSample<'_>) -> Vec<AlertEvent> {
        let mut out = Vec::new();
        for ri in 0..self.rules.len() {
            let rule = self.rules[ri].clone();
            match rule.metric {
                SloMetric::ReplicationDelayMs => {
                    for (i, &v) in s.delay_ms.iter().enumerate() {
                        self.step(ri, &rule, i as u32, v, s, &mut out);
                    }
                }
                SloMetric::CpuUtilization => {
                    for (i, &v) in s.cpu_util.iter().enumerate() {
                        self.step(ri, &rule, i as u32, v, s, &mut out);
                    }
                }
                SloMetric::PoolWaiting => self.step(ri, &rule, 0, s.pool_waiting, s, &mut out),
                SloMetric::ThroughputOps => self.step(ri, &rule, 0, s.ops_per_s, s, &mut out),
                SloMetric::SlaViolationRate => {
                    self.step(ri, &rule, 0, s.sla_violation_rate, s, &mut out)
                }
            }
        }
        out
    }

    fn step(
        &mut self,
        ri: usize,
        rule: &SloRule,
        inst: u32,
        value: f64,
        s: &SloSample<'_>,
        out: &mut Vec<AlertEvent>,
    ) {
        let st = self.state.entry((ri, inst)).or_default();
        st.window.push_back(value);
        while st.window.len() > rule.window.max(1) {
            st.window.pop_front();
        }
        if st.window.len() < rule.window.max(1) {
            return;
        }
        let mean = st.window.iter().sum::<f64>() / st.window.len() as f64;
        let (fires, clears) = match rule.direction {
            Direction::Above => (mean >= rule.fire_at, mean < rule.clear_at),
            Direction::Below => {
                if !st.armed {
                    st.armed = mean > rule.arm_above.unwrap_or(rule.fire_at);
                }
                if !st.armed {
                    return;
                }
                (mean <= rule.fire_at, mean > rule.clear_at)
            }
        };
        let transition = if !st.firing && fires {
            st.firing = true;
            Some(AlertKind::Fire)
        } else if st.firing && clears {
            st.firing = false;
            Some(AlertKind::Clear)
        } else {
            None
        };
        let Some(kind) = transition else { return };
        let attribution = (kind == AlertKind::Fire && rule.metric == SloMetric::ReplicationDelayMs)
            .then(|| {
                attribute_surge(
                    s.rows,
                    self.saturation_threshold,
                    s.rtt_ms,
                    s.rtt_class,
                    mean,
                )
            });
        let ev = AlertEvent {
            rule: rule.name,
            metric: rule.metric,
            shard: self.shard,
            inst,
            kind,
            at: s.at,
            value: mean,
            attribution,
        };
        self.alerts.push(ev.clone());
        out.push(ev);
    }
}

/// Name the resource behind a delay surge from the attributor rows at the
/// fire instant.
///
/// Policy, in order: (1) a saturated row (≥ `threshold` utilization,
/// deterministically tie-broken) is the cause; (2) otherwise, when the
/// base network RTT is at least half the windowed delay, the network class
/// is the cause — distance, not queueing; (3) otherwise the busiest row.
pub fn attribute_surge(
    rows: &[ResourceUsage],
    threshold: f64,
    rtt_ms: f64,
    rtt_class: &str,
    windowed_delay_ms: f64,
) -> String {
    let mut rep = BottleneckReport::new(threshold);
    for r in rows {
        rep.push(r.clone());
    }
    if let Some(b) = rep.bottleneck() {
        return b.label.clone();
    }
    if rtt_ms >= 0.5 * windowed_delay_ms {
        return format!("network ({rtt_class})");
    }
    match rep.busiest() {
        Some(b) => b.label.clone(),
        None => "unattributed".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdb_obs::Component;

    fn delay_rule(fire: f64, clear: f64, window: usize) -> SloRule {
        SloRule {
            name: "delay_surge",
            metric: SloMetric::ReplicationDelayMs,
            direction: Direction::Above,
            fire_at: fire,
            clear_at: clear,
            window,
            arm_above: None,
        }
    }

    fn row(comp: Component, inst: u32, label: &str, util: f64) -> ResourceUsage {
        ResourceUsage {
            comp,
            inst,
            label: label.to_string(),
            utilization: util,
            peak_queue: 0,
        }
    }

    fn sample<'a>(at_ms: u64, delays: &'a [f64], rows: &'a [ResourceUsage]) -> SloSample<'a> {
        SloSample {
            at: SimTime::from_millis(at_ms),
            delay_ms: delays,
            cpu_util: &[],
            pool_waiting: 0.0,
            ops_per_s: 0.0,
            sla_violation_rate: 0.0,
            rows,
            rtt_ms: 16.0,
            rtt_class: "same zone",
        }
    }

    #[test]
    fn fires_once_and_clears_with_hysteresis() {
        let mut e = SloEngine::new(vec![delay_rule(100.0, 25.0, 2)], 0.9);
        let rows = [row(Component::Cpu, 1, "slave0 cpu", 1.2)];
        // Window not full: no transition whatever the value.
        assert!(e.observe(&sample(0, &[500.0], &rows)).is_empty());
        // Full window above fire_at: exactly one fire.
        let evs = e.observe(&sample(500, &[500.0], &rows));
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, AlertKind::Fire);
        assert_eq!(evs[0].attribution.as_deref(), Some("slave0 cpu"));
        // Still elevated: no duplicate fire.
        assert!(e.observe(&sample(1000, &[400.0], &rows)).is_empty());
        // Mean drops between clear_at and fire_at: hysteresis holds it.
        assert!(e.observe(&sample(1500, &[30.0], &rows)).is_empty());
        // Window mean finally below clear_at: one clear, no attribution.
        let evs = e.observe(&sample(2000, &[10.0], &rows));
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, AlertKind::Clear);
        assert_eq!(evs[0].attribution, None);
        assert_eq!(e.alerts().len(), 2);
    }

    #[test]
    fn shard_stamp_lands_on_every_alert() {
        let mut e = SloEngine::new(vec![delay_rule(100.0, 25.0, 1)], 0.9).with_shard(3);
        assert_eq!(e.shard(), 3);
        let rows = [row(Component::Cpu, 1, "slave0 cpu", 1.0)];
        let evs = e.observe(&sample(0, &[500.0], &rows));
        assert_eq!(evs[0].shard, 3);
        let mut plain = SloEngine::new(vec![delay_rule(100.0, 25.0, 1)], 0.9);
        assert_eq!(plain.observe(&sample(0, &[500.0], &rows))[0].shard, 0);
    }

    #[test]
    fn per_instance_state_is_independent() {
        let mut e = SloEngine::new(vec![delay_rule(100.0, 25.0, 1)], 0.9);
        let rows = [row(Component::Cpu, 1, "slave0 cpu", 1.0)];
        let evs = e.observe(&sample(0, &[500.0, 5.0], &rows));
        assert_eq!(evs.len(), 1, "only slave 0 fires");
        assert_eq!(evs[0].inst, 0);
        assert_eq!(e.firing(), vec![("delay_surge", 0)]);
    }

    #[test]
    fn below_rules_arm_before_firing() {
        let rule = SloRule {
            name: "throughput_collapse",
            metric: SloMetric::ThroughputOps,
            direction: Direction::Below,
            fire_at: 1.0,
            clear_at: 2.0,
            window: 1,
            arm_above: Some(5.0),
        };
        let mut e = SloEngine::new(vec![rule], 0.9);
        let tick = |e: &mut SloEngine, at: u64, ops: f64| {
            let s = SloSample {
                ops_per_s: ops,
                ..sample(at, &[], &[])
            };
            e.observe(&s)
        };
        // Ramp-up: throughput 0 but the rule is not armed yet.
        assert!(tick(&mut e, 0, 0.0).is_empty());
        // Healthy traffic arms it …
        assert!(tick(&mut e, 500, 8.0).is_empty());
        // … and the collapse now fires.
        let evs = tick(&mut e, 1000, 0.5);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, AlertKind::Fire);
        assert_eq!(evs[0].attribution, None, "only delay surges attribute");
    }

    #[test]
    fn attribution_policy_orders_saturation_network_busiest() {
        let saturated = [
            row(Component::Cpu, 0, "master cpu", 0.97),
            row(Component::Cpu, 1, "slave0 cpu", 0.5),
        ];
        assert_eq!(
            attribute_surge(&saturated, 0.9, 16.0, "same zone", 400.0),
            "master cpu"
        );
        // Nothing saturated, RTT dominates the windowed delay: network.
        let calm = [
            row(Component::Cpu, 0, "master cpu", 0.4),
            row(Component::Cpu, 1, "slave0 cpu", 0.5),
        ];
        assert_eq!(
            attribute_surge(&calm, 0.9, 173.0, "different region", 300.0),
            "network (different region)"
        );
        // Nothing saturated, RTT negligible: the busiest row.
        assert_eq!(
            attribute_surge(&calm, 0.9, 16.0, "same zone", 400.0),
            "slave0 cpu"
        );
        assert_eq!(attribute_surge(&[], 0.9, 1.0, "x", 1000.0), "unattributed");
    }

    #[test]
    fn saturation_ties_resolve_deterministically_for_attribution() {
        // Master and a slave both pinned: the (component, instance) key
        // tie-break names the master, matching the §IV migration readout.
        let rows = [
            row(Component::Cpu, 3, "slave2 cpu", 1.0),
            row(Component::Cpu, 0, "master cpu", 1.0),
        ];
        assert_eq!(
            attribute_surge(&rows, 0.9, 16.0, "same zone", 500.0),
            "master cpu"
        );
    }

    #[test]
    fn paper_rules_cover_all_metrics() {
        let rules = paper_rules();
        for m in [
            SloMetric::ReplicationDelayMs,
            SloMetric::CpuUtilization,
            SloMetric::PoolWaiting,
            SloMetric::ThroughputOps,
            SloMetric::SlaViolationRate,
        ] {
            assert!(
                rules.iter().any(|r| r.metric == m),
                "missing rule for {}",
                m.as_str()
            );
        }
        for r in &rules {
            match r.direction {
                Direction::Above => assert!(r.clear_at <= r.fire_at, "{}", r.name),
                Direction::Below => assert!(r.clear_at >= r.fire_at, "{}", r.name),
            }
        }
    }
}
