//! The staleness waterfall: causal per-write tracing through the
//! replication pipeline.
//!
//! Every traced write gets a trace id at dispatch and is then followed
//! through the stages the paper's §II pipeline implies:
//!
//! ```text
//! client issue → proxy route → master commit (binlog ship)
//!                                   └─ per slave: deliver → apply start →
//!                                      applied → first stale read served
//! ```
//!
//! The link between the client half and the per-slave half is the binlog
//! sequence: a committed write owns the LSNs its statements appended, and
//! every downstream hop (I/O-thread delivery, relay-queue pop, SQL-thread
//! apply, first read that observes the row) is keyed by LSN. From the stage
//! timestamps the waterfall decomposes each slave's end-to-end delay into
//! **network** (commit→deliver), **queueing** (deliver→apply start), and
//! **apply** (apply start→applied) legs, folding each leg into a bounded
//! [`QuantileSketch`] instead of keeping per-write samples.
//!
//! State is bounded: completed writes are pruned, and a FIFO cap evicts
//! stragglers (e.g. a slave that stops reading) so memory cannot grow with
//! run length.

use amdb_metrics::{QuantileSketch, Table};
use amdb_sim::SimTime;
use std::collections::BTreeMap;

/// Default cap on in-flight write traces; oldest evict first beyond this.
/// Sized for one replication tree — a sharded front multiplies outstanding
/// traces by the fan-out, so `Telemetry::new` scales the per-instance cap
/// with the shard count via [`StalenessWaterfall::with_inflight_cap`].
pub const DEFAULT_MAX_INFLIGHT: usize = 8192;

/// A write that has been dispatched but not yet committed.
#[derive(Debug, Clone)]
struct PendingWrite {
    issued: SimTime,
    routed: SimTime,
    service_start: Option<SimTime>,
    /// Binlog LSNs appended by this write: `(from_exclusive, to_inclusive]`.
    lsns: (u64, u64),
}

/// Per-slave stage timestamps for one committed write.
#[derive(Debug, Clone, Copy, Default)]
struct SlaveStage {
    delivered: Option<SimTime>,
    apply_start: Option<SimTime>,
    applied: Option<SimTime>,
    first_read: Option<SimTime>,
}

impl SlaveStage {
    fn done(&self) -> bool {
        self.applied.is_some() && self.first_read.is_some()
    }
}

/// One committed write in flight through the pipeline, keyed by LSN.
#[derive(Debug, Clone)]
struct WriteTrace {
    trace: u64,
    committed: SimTime,
    stages: Vec<SlaveStage>,
}

impl WriteTrace {
    fn done(&self) -> bool {
        self.stages.iter().all(SlaveStage::done)
    }
}

/// Leg sketches for one slave.
#[derive(Debug, Clone)]
pub struct SlaveLeg {
    /// Commit → relay delivery (the shipping network leg).
    pub network_ms: QuantileSketch,
    /// Relay delivery → SQL-thread pickup (relay-queue wait).
    pub queue_ms: QuantileSketch,
    /// SQL-thread pickup → applied (apply service time + CPU queueing).
    pub apply_ms: QuantileSketch,
    /// Commit → applied (the end-to-end replication delay for this write).
    pub e2e_ms: QuantileSketch,
    /// Commit → first read on this slave that observes the write.
    pub first_read_ms: QuantileSketch,
    /// Writes fully applied on this slave.
    pub applied: u64,
}

impl SlaveLeg {
    fn new() -> Self {
        Self {
            network_ms: QuantileSketch::latency(),
            queue_ms: QuantileSketch::latency(),
            apply_ms: QuantileSketch::latency(),
            e2e_ms: QuantileSketch::latency(),
            first_read_ms: QuantileSketch::latency(),
            applied: 0,
        }
    }
}

/// Client-half sketches (shared across slaves).
#[derive(Debug, Clone)]
pub struct ClientLeg {
    /// Issue → proxy route decision (dispatch wait).
    pub route_ms: QuantileSketch,
    /// Route → master commit (master CPU queue + write service).
    pub commit_ms: QuantileSketch,
}

/// The waterfall store: pending and in-flight writes plus leg sketches.
#[derive(Debug, Clone)]
pub struct StalenessWaterfall {
    next_trace: u64,
    pending: BTreeMap<u64, PendingWrite>,
    inflight: BTreeMap<u64, WriteTrace>,
    /// Per slave: LSNs `<= cursor` have had their first read assigned.
    read_cursor: Vec<u64>,
    legs: Vec<SlaveLeg>,
    client: ClientLeg,
    /// Writes that reached commit (traced end of the client half).
    pub committed: u64,
    /// Writes evicted by the FIFO cap before completing all stages.
    pub evicted: u64,
    /// FIFO cap applied to both the pending and in-flight maps.
    max_inflight: usize,
}

impl StalenessWaterfall {
    /// Empty waterfall for `n_slaves` slaves with the default cap.
    pub fn new(n_slaves: usize) -> Self {
        Self::with_inflight_cap(n_slaves, DEFAULT_MAX_INFLIGHT)
    }

    /// Empty waterfall with an explicit FIFO eviction cap (≥ 1).
    pub fn with_inflight_cap(n_slaves: usize, cap: usize) -> Self {
        Self {
            next_trace: 0,
            pending: BTreeMap::new(),
            inflight: BTreeMap::new(),
            read_cursor: vec![0; n_slaves],
            legs: (0..n_slaves).map(|_| SlaveLeg::new()).collect(),
            client: ClientLeg {
                route_ms: QuantileSketch::latency(),
                commit_ms: QuantileSketch::latency(),
            },
            committed: 0,
            evicted: 0,
            max_inflight: cap.max(1),
        }
    }

    /// The FIFO eviction cap in force.
    pub fn inflight_cap(&self) -> usize {
        self.max_inflight
    }

    /// Number of slaves currently tracked.
    pub fn n_slaves(&self) -> usize {
        self.legs.len()
    }

    /// Per-slave leg sketches.
    pub fn legs(&self) -> &[SlaveLeg] {
        &self.legs
    }

    /// Client-half sketches.
    pub fn client(&self) -> &ClientLeg {
        &self.client
    }

    /// Writes currently tracked between commit and completion.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Grow to `n` slaves (elastic scale-out). Existing in-flight writes
    /// gain an untracked stage row for the new slave — its legs only count
    /// writes committed after the join.
    pub fn ensure_slaves(&mut self, n: usize) {
        while self.legs.len() < n {
            self.legs.push(SlaveLeg::new());
            self.read_cursor.push(0);
        }
        // Pre-join writes are not the new slave's debt: mark their stage
        // rows complete so they neither feed its sketches nor block pruning.
        for w in self.inflight.values_mut() {
            while w.stages.len() < n {
                w.stages.push(SlaveStage {
                    delivered: None,
                    apply_start: None,
                    applied: Some(w.committed),
                    first_read: Some(w.committed),
                });
            }
        }
    }

    /// Topology change that voids the LSN space (master failover): drop all
    /// in-flight state and restart cursors. Leg sketches survive — they
    /// describe the run, not the epoch.
    pub fn on_epoch_reset(&mut self, n_slaves: usize) {
        self.pending.clear();
        self.inflight.clear();
        self.read_cursor = vec![0; n_slaves];
        while self.legs.len() < n_slaves {
            self.legs.push(SlaveLeg::new());
        }
        self.legs.truncate(n_slaves);
    }

    /// Assign a trace id to a dispatched write. `issued` is the client
    /// issue time, `routed` the proxy route decision (now).
    pub fn begin_write(&mut self, issued: SimTime, routed: SimTime) -> u64 {
        self.next_trace += 1;
        let trace = self.next_trace;
        self.pending.insert(
            trace,
            PendingWrite {
                issued,
                routed,
                service_start: None,
                lsns: (0, 0),
            },
        );
        // Writes orphaned before commit (failover drains) never call
        // `on_commit`; cap the map so they cannot accumulate.
        while self.pending.len() > self.max_inflight {
            self.pending.pop_first();
            self.evicted += 1;
        }
        trace
    }

    /// The write started service on the master; `(before, after]` is the
    /// binlog head range its statements appended.
    pub fn on_service_start(&mut self, trace: u64, now: SimTime, lsn_before: u64, lsn_after: u64) {
        if let Some(p) = self.pending.get_mut(&trace) {
            p.service_start = Some(now);
            p.lsns = (lsn_before, lsn_after);
        }
    }

    /// The master committed the write. Registers one in-flight entry per
    /// appended LSN and returns the LSN range for flow emission (`None` if
    /// the trace is unknown or appended nothing).
    pub fn on_commit(&mut self, trace: u64, now: SimTime) -> Option<(u64, u64)> {
        let p = self.pending.remove(&trace)?;
        self.committed += 1;
        self.client.route_ms.record(ms_between(p.issued, p.routed));
        self.client.commit_ms.record(ms_between(p.routed, now));
        let (from, to) = p.lsns;
        if to <= from {
            return None;
        }
        for lsn in (from + 1)..=to {
            self.inflight.insert(
                lsn,
                WriteTrace {
                    trace,
                    committed: now,
                    stages: vec![SlaveStage::default(); self.legs.len()],
                },
            );
        }
        while self.inflight.len() > self.max_inflight {
            self.inflight.pop_first();
            self.evicted += 1;
        }
        Some((from, to))
    }

    /// Slave `slave`'s I/O thread received `lsn`. Returns the trace id on
    /// the first delivery (for flow-step emission).
    pub fn on_deliver(&mut self, slave: usize, lsn: u64, now: SimTime) -> Option<u64> {
        let w = self.inflight.get_mut(&lsn)?;
        let st = w.stages.get_mut(slave)?;
        if st.delivered.is_some() {
            return None;
        }
        st.delivered = Some(now);
        self.legs[slave]
            .network_ms
            .record(ms_between(w.committed, now));
        Some(w.trace)
    }

    /// Slave `slave`'s SQL thread popped `lsn` from the relay queue.
    pub fn on_apply_start(&mut self, slave: usize, lsn: u64, now: SimTime) {
        let Some(w) = self.inflight.get_mut(&lsn) else {
            return;
        };
        let Some(st) = w.stages.get_mut(slave) else {
            return;
        };
        if st.apply_start.is_none() {
            st.apply_start = Some(now);
            if let Some(d) = st.delivered {
                self.legs[slave].queue_ms.record(ms_between(d, now));
            }
        }
    }

    /// Slave `slave` finished applying `lsn`. Returns the trace id on first
    /// completion (for flow-end emission).
    pub fn on_applied(&mut self, slave: usize, lsn: u64, now: SimTime) -> Option<u64> {
        let w = self.inflight.get_mut(&lsn)?;
        let st = w.stages.get_mut(slave)?;
        if st.applied.is_some() {
            return None;
        }
        st.applied = Some(now);
        let leg = &mut self.legs[slave];
        leg.applied += 1;
        if let Some(s) = st.apply_start {
            leg.apply_ms.record(ms_between(s, now));
        }
        let trace = w.trace;
        leg.e2e_ms.record(ms_between(w.committed, now));
        self.prune();
        Some(trace)
    }

    /// Slave `slave` served a read at `now` with its SQL thread applied up
    /// to `applied_upto`: that read is the first to observe every write in
    /// `(cursor, applied_upto]`.
    pub fn on_slave_read(&mut self, slave: usize, applied_upto: u64, now: SimTime) {
        let Some(cursor) = self.read_cursor.get_mut(slave) else {
            return;
        };
        if applied_upto <= *cursor {
            return;
        }
        let from = *cursor;
        *cursor = applied_upto;
        // Only LSNs with live entries matter; range over the map, not the
        // (potentially huge) numeric interval.
        let mut touched = false;
        for (_, w) in self.inflight.range_mut((from + 1)..=applied_upto) {
            let Some(st) = w.stages.get_mut(slave) else {
                continue;
            };
            if st.first_read.is_none() {
                st.first_read = Some(now);
                self.legs[slave]
                    .first_read_ms
                    .record(ms_between(w.committed, now));
                touched = true;
            }
        }
        if touched {
            self.prune();
        }
    }

    /// Drop fully-completed writes (every slave applied + first read).
    fn prune(&mut self) {
        self.inflight.retain(|_, w| !w.done());
    }

    /// Render the per-leg decomposition: one row per slave plus the client
    /// half, p50/p95 per leg.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "staleness waterfall (per-slave delay decomposition, ms)",
            vec![
                "leg".into(),
                "writes".into(),
                "network p50/p95".into(),
                "queue p50/p95".into(),
                "apply p50/p95".into(),
                "e2e p50/p95".into(),
                "first-read p50".into(),
            ],
        );
        let pair = |s: &QuantileSketch| match (s.quantile(0.5), s.quantile(0.95)) {
            (Some(a), Some(b)) => format!("{a:.2}/{b:.2}"),
            _ => "-".into(),
        };
        let one = |s: &QuantileSketch| match s.quantile(0.5) {
            Some(a) => format!("{a:.2}"),
            None => "-".into(),
        };
        t.push_row(vec![
            "client (route/commit)".into(),
            self.committed.to_string(),
            pair(&self.client.route_ms),
            "-".into(),
            pair(&self.client.commit_ms),
            "-".into(),
            "-".into(),
        ]);
        for (i, leg) in self.legs.iter().enumerate() {
            t.push_row(vec![
                format!("slave{i}"),
                leg.applied.to_string(),
                pair(&leg.network_ms),
                pair(&leg.queue_ms),
                pair(&leg.apply_ms),
                pair(&leg.e2e_ms),
                one(&leg.first_read_ms),
            ]);
        }
        t
    }
}

fn ms_between(from: SimTime, to: SimTime) -> f64 {
    if to > from {
        (to - from).as_micros() as f64 / 1e3
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Drive one write through every stage on two slaves and check the leg
    /// decomposition lands in the right sketches.
    #[test]
    fn decomposes_delay_into_legs() {
        let mut w = StalenessWaterfall::new(2);
        let tr = w.begin_write(t(0), t(1));
        w.on_service_start(tr, t(2), 10, 11);
        assert_eq!(w.on_commit(tr, t(4)), Some((10, 11)));
        assert_eq!(w.committed, 1);

        assert_eq!(w.on_deliver(0, 11, t(20)), Some(tr));
        w.on_apply_start(0, 11, t(29));
        assert_eq!(w.on_applied(0, 11, t(37)), Some(tr));
        w.on_slave_read(0, 11, t(50));

        let leg = &w.legs()[0];
        let within = |s: &QuantileSketch, v: f64| {
            (s.quantile(0.5).unwrap() - v).abs() <= s.config().bucket_width(v)
        };
        assert!(within(&leg.network_ms, 16.0), "commit(4) → deliver(20)");
        assert!(within(&leg.queue_ms, 9.0), "deliver(20) → start(29)");
        assert!(within(&leg.apply_ms, 8.0), "start(29) → applied(37)");
        assert!(within(&leg.e2e_ms, 33.0), "commit(4) → applied(37)");
        assert!(within(&leg.first_read_ms, 46.0), "commit(4) → read(50)");
        assert!(within(&w.client().route_ms, 1.0));
        assert!(within(&w.client().commit_ms, 3.0));

        // Slave 1 has not applied: the write is still in flight.
        assert_eq!(w.inflight(), 1);
        w.on_deliver(1, 11, t(21));
        w.on_apply_start(1, 11, t(22));
        w.on_applied(1, 11, t(23));
        w.on_slave_read(1, 11, t(30));
        assert_eq!(w.inflight(), 0, "fully observed writes are pruned");
    }

    #[test]
    fn duplicate_stage_events_count_once() {
        let mut w = StalenessWaterfall::new(1);
        let tr = w.begin_write(t(0), t(0));
        w.on_service_start(tr, t(1), 0, 1);
        w.on_commit(tr, t(2));
        assert_eq!(w.on_deliver(0, 1, t(5)), Some(tr));
        assert_eq!(w.on_deliver(0, 1, t(9)), None, "second delivery ignored");
        assert_eq!(w.legs()[0].network_ms.count(), 1);
    }

    #[test]
    fn unknown_lsns_are_ignored() {
        // Heartbeat LSNs (and pre-template LSNs) never enter the map.
        let mut w = StalenessWaterfall::new(1);
        assert_eq!(w.on_deliver(0, 999, t(5)), None);
        w.on_apply_start(0, 999, t(6));
        assert_eq!(w.on_applied(0, 999, t(7)), None);
        w.on_slave_read(0, 999, t(8));
        assert_eq!(w.legs()[0].e2e_ms.count(), 0);
    }

    #[test]
    fn read_cursor_assigns_first_read_only_once() {
        let mut w = StalenessWaterfall::new(1);
        for i in 0..3u64 {
            let tr = w.begin_write(t(i), t(i));
            w.on_service_start(tr, t(i), i, i + 1);
            w.on_commit(tr, t(i));
            w.on_deliver(0, i + 1, t(10 + i));
            w.on_apply_start(0, i + 1, t(10 + i));
            w.on_applied(0, i + 1, t(10 + i));
        }
        // One read observes all three; a later read observes nothing new.
        w.on_slave_read(0, 3, t(40));
        assert_eq!(w.legs()[0].first_read_ms.count(), 3);
        w.on_slave_read(0, 3, t(90));
        assert_eq!(w.legs()[0].first_read_ms.count(), 3);
    }

    #[test]
    fn writes_with_no_binlog_events_produce_no_inflight_entries() {
        let mut w = StalenessWaterfall::new(1);
        let tr = w.begin_write(t(0), t(0));
        w.on_service_start(tr, t(1), 7, 7); // appended nothing
        assert_eq!(w.on_commit(tr, t(2)), None);
        assert_eq!(w.inflight(), 0);
        assert_eq!(w.committed, 1, "still counts as a committed write");
    }

    #[test]
    fn fifo_cap_bounds_inflight_memory() {
        let mut w = StalenessWaterfall::new(1);
        for i in 0..(DEFAULT_MAX_INFLIGHT as u64 + 100) {
            let tr = w.begin_write(t(0), t(0));
            w.on_service_start(tr, t(0), i, i + 1);
            w.on_commit(tr, t(0));
        }
        assert_eq!(w.inflight(), DEFAULT_MAX_INFLIGHT);
        assert_eq!(w.evicted, 100);
    }

    #[test]
    fn inflight_cap_scales_with_constructor() {
        let mut w = StalenessWaterfall::with_inflight_cap(1, 16);
        assert_eq!(w.inflight_cap(), 16);
        for i in 0..40u64 {
            let tr = w.begin_write(t(0), t(0));
            w.on_service_start(tr, t(0), i, i + 1);
            w.on_commit(tr, t(0));
        }
        assert_eq!(w.inflight(), 16);
        assert_eq!(w.evicted, 24);
        assert_eq!(
            StalenessWaterfall::with_inflight_cap(1, 0).inflight_cap(),
            1
        );
    }

    #[test]
    fn epoch_reset_clears_inflight_but_keeps_sketches() {
        let mut w = StalenessWaterfall::new(1);
        let tr = w.begin_write(t(0), t(0));
        w.on_service_start(tr, t(0), 0, 1);
        w.on_commit(tr, t(1));
        w.on_deliver(0, 1, t(2));
        w.on_apply_start(0, 1, t(2));
        w.on_applied(0, 1, t(3));
        w.on_epoch_reset(1);
        assert_eq!(w.inflight(), 0);
        assert_eq!(w.legs()[0].e2e_ms.count(), 1, "history survives");
        // Old-epoch LSNs re-used by the new epoch start clean.
        assert_eq!(w.on_deliver(0, 1, t(9)), None);
    }

    #[test]
    fn scale_out_adds_a_leg_without_blocking_pruning() {
        let mut w = StalenessWaterfall::new(1);
        let tr = w.begin_write(t(0), t(0));
        w.on_service_start(tr, t(0), 0, 1);
        w.on_commit(tr, t(1));
        w.ensure_slaves(2);
        assert_eq!(w.n_slaves(), 2);
        w.on_deliver(0, 1, t(2));
        w.on_apply_start(0, 1, t(2));
        w.on_applied(0, 1, t(3));
        w.on_slave_read(0, 1, t(4));
        assert_eq!(w.inflight(), 0, "new slave owes nothing for old writes");
        assert_eq!(w.legs()[1].e2e_ms.count(), 0);
    }

    #[test]
    fn table_renders_one_row_per_leg() {
        let w = StalenessWaterfall::new(3);
        let r = w.table().render();
        assert!(r.contains("client"));
        assert!(r.contains("slave0") && r.contains("slave2"));
    }
}
