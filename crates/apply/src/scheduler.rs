//! Deterministic group-commit batch planner for parallel slave apply.
//!
//! The scheduler looks at the head of a slave's relay queue and carves off
//! the longest *contiguous* prefix of at most `workers` events whose
//! writesets are pairwise disjoint. That batch is handed to the apply
//! workers together and **commits together, in LSN order** — later events
//! never become visible before earlier ones, so watermarks, session
//! guarantees, and read-your-writes checks built on "applied up to LSN x"
//! stay correct without knowing parallel apply exists.
//!
//! Three properties make this safe and deterministic:
//!
//! 1. **Contiguity.** Only a prefix is batched; the planner never skips over
//!    a conflicting event to reach a later compatible one. Out-of-order
//!    pickup would require tracking gaps in the applied-LSN watermark — the
//!    complexity MySQL's `slave_preserve_commit_order` exists to hide.
//! 2. **Barriers.** Statement/DDL events and keyless-table changes conflict
//!    with everything: they close the current batch and run alone.
//! 3. **Purity.** Planning reads only the event sequence and the schema's
//!    primary keys. No clocks, no randomness, no worker state — replaying
//!    the same binlog always yields the same batch boundaries.
//!
//! With `workers = 1` every batch has exactly one event, reproducing the
//! classic single-threaded SQL apply thread byte-for-byte.

use amdb_sql::{BinlogEvent, Lsn};

use crate::writeset::{writeset_of, TableInterner, Writeset};

/// Why the planner closed a batch where it did — the per-batch
/// attribution the apply tracing pipeline records, separating "the queue
/// ran dry" from the two real parallelism limits (writeset conflicts and
/// worker capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchBound {
    /// The relay queue ran out before any limit was hit.
    Drained,
    /// A writeset conflict with the next queued event closed the batch.
    Conflict,
    /// The batch filled every worker while more events were waiting.
    Capacity,
    /// The batch is a lone serial barrier event (statement/DDL or a
    /// keyless-table change).
    Barrier,
}

impl BatchBound {
    /// Stable lowercase label for metrics and traces.
    pub fn as_str(self) -> &'static str {
        match self {
            BatchBound::Drained => "drained",
            BatchBound::Conflict => "conflict",
            BatchBound::Capacity => "capacity",
            BatchBound::Barrier => "barrier",
        }
    }
}

/// One planned apply batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyPlan {
    /// Number of events in the batch (0 only when the queue was empty).
    pub len: usize,
    /// True when the batch is a lone barrier event (statement/DDL or a
    /// keyless-table change) that must apply serially.
    pub barrier: bool,
    /// What closed the batch.
    pub bound: BatchBound,
}

/// Cumulative planning counters, for reports and benches.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Batches planned.
    pub batches: u64,
    /// Events across all batches.
    pub events: u64,
    /// Batches that were a lone barrier event.
    pub barrier_batches: u64,
    /// Batches closed early by a writeset conflict with the next event.
    pub conflict_bounded: u64,
    /// Batches closed because they reached the worker count.
    pub capacity_bounded: u64,
    /// Largest batch planned so far.
    pub largest_batch: u64,
}

impl SchedulerStats {
    /// Mean events per batch — the group-commit amortization factor.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.events as f64 / self.batches as f64
        }
    }
}

/// Writeset-dependency batch planner for one slave.
///
/// Holds only the table-name interner and cumulative counters; batch
/// boundaries are a pure function of the queue contents, so the scheduler
/// needs no reset on failover or epoch change.
#[derive(Debug)]
pub struct ApplyScheduler {
    workers: usize,
    interner: TableInterner,
    stats: SchedulerStats,
}

impl ApplyScheduler {
    /// Planner dispatching to `workers` simulated apply workers.
    ///
    /// # Panics
    /// Panics when `workers == 0` — a slave always has at least the classic
    /// serial apply thread.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "apply requires at least one worker");
        Self {
            workers,
            interner: TableInterner::new(),
            stats: SchedulerStats::default(),
        }
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cumulative planning counters.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// Plan the next batch from the head of the relay queue.
    ///
    /// `pending` iterates queued events oldest-first; `pk_of` maps a table
    /// name to its primary-key column index in the slave's current catalog.
    /// Returns how many events from the head form the batch — the caller
    /// pops exactly that many. An empty queue yields `len == 0` and counts
    /// toward no statistic.
    pub fn plan_batch<'a>(
        &mut self,
        pending: impl IntoIterator<Item = &'a BinlogEvent>,
        pk_of: impl Fn(&str) -> Option<usize>,
    ) -> ApplyPlan {
        let mut iter = pending.into_iter();
        let Some(first) = iter.next() else {
            return ApplyPlan {
                len: 0,
                barrier: false,
                bound: BatchBound::Drained,
            };
        };
        let first_ws = writeset_of(first, &mut self.interner, &pk_of);
        if first_ws.is_barrier() {
            self.stats.batches += 1;
            self.stats.events += 1;
            self.stats.barrier_batches += 1;
            self.stats.largest_batch = self.stats.largest_batch.max(1);
            return ApplyPlan {
                len: 1,
                barrier: true,
                bound: BatchBound::Barrier,
            };
        }

        let mut batch: Vec<Writeset> = vec![first_ws];
        let mut bounded_by_conflict = false;
        let mut saw_more = false;
        for event in iter {
            if batch.len() >= self.workers {
                saw_more = true;
                break;
            }
            let ws = writeset_of(event, &mut self.interner, &pk_of);
            // A barrier ahead conflicts with every in-flight event; it also
            // closes the batch, but is charged as its own batch next round.
            if batch.iter().any(|b| b.conflicts_with(&ws)) {
                bounded_by_conflict = true;
                break;
            }
            batch.push(ws);
        }

        let len = batch.len();
        self.stats.batches += 1;
        self.stats.events += len as u64;
        self.stats.largest_batch = self.stats.largest_batch.max(len as u64);
        let bound = if bounded_by_conflict {
            self.stats.conflict_bounded += 1;
            BatchBound::Conflict
        } else if len >= self.workers && saw_more {
            self.stats.capacity_bounded += 1;
            BatchBound::Capacity
        } else {
            BatchBound::Drained
        };
        ApplyPlan {
            len,
            barrier: false,
            bound,
        }
    }
}

/// Drive a full event sequence through a fresh [`ApplyScheduler`] and
/// return the planned batches as LSN groups in commit order, plus the
/// planner's counters.
///
/// The flattened group sequence is always the input LSN order — the
/// in-order-commit invariant — which tests and the `micro_apply` bench
/// assert rather than assume.
pub fn simulate(
    events: &[BinlogEvent],
    workers: usize,
    pk_of: impl Fn(&str) -> Option<usize>,
) -> (Vec<Vec<Lsn>>, SchedulerStats) {
    let mut sched = ApplyScheduler::new(workers);
    let mut batches = Vec::new();
    let mut head = 0usize;
    while head < events.len() {
        let plan = sched.plan_batch(events[head..].iter(), &pk_of);
        debug_assert!(plan.len >= 1, "non-empty queue must yield a batch");
        let group: Vec<Lsn> = events[head..head + plan.len]
            .iter()
            .map(|e| e.lsn)
            .collect();
        head += plan.len;
        batches.push(group);
    }
    (batches, *sched.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdb_sql::exec::{RowChange, RowChangeKind};
    use amdb_sql::{EventPayload, Value};

    fn row_event(lsn: u64, table: &str, pk: i64) -> BinlogEvent {
        BinlogEvent {
            lsn: Lsn(lsn),
            commit_ts_micros: 0,
            payload: EventPayload::Rows {
                changes: vec![RowChange {
                    table: table.to_string(),
                    kind: RowChangeKind::Insert {
                        row: vec![Value::Int(pk), Value::Text("x".into())],
                    },
                }],
            },
        }
    }

    fn stmt_event(lsn: u64, sql: &str) -> BinlogEvent {
        BinlogEvent {
            lsn: Lsn(lsn),
            commit_ts_micros: 0,
            payload: EventPayload::Statement {
                sql: sql.to_string(),
                params: vec![],
            },
        }
    }

    fn pk0(_: &str) -> Option<usize> {
        Some(0)
    }

    #[test]
    fn empty_queue_plans_nothing() {
        let mut s = ApplyScheduler::new(4);
        let plan = s.plan_batch(std::iter::empty(), pk0);
        assert_eq!(
            plan,
            ApplyPlan {
                len: 0,
                barrier: false,
                bound: BatchBound::Drained,
            }
        );
        assert_eq!(s.stats().batches, 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        ApplyScheduler::new(0);
    }

    #[test]
    fn workers_one_always_singleton() {
        let events: Vec<_> = (0..20).map(|i| row_event(i, "t", i as i64)).collect();
        let (batches, stats) = simulate(&events, 1, pk0);
        assert_eq!(batches.len(), 20);
        assert!(batches.iter().all(|b| b.len() == 1));
        assert_eq!(stats.largest_batch, 1);
        assert_eq!(stats.conflict_bounded, 0);
    }

    #[test]
    fn disjoint_events_fill_to_worker_count() {
        let events: Vec<_> = (0..8).map(|i| row_event(i, "t", i as i64)).collect();
        let (batches, stats) = simulate(&events, 4, pk0);
        assert_eq!(
            batches.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![4, 4],
            "capacity-bounded batches of exactly `workers` events"
        );
        assert_eq!(
            stats.capacity_bounded, 1,
            "only the first batch saw a successor"
        );
        assert_eq!(stats.mean_batch(), 4.0);
    }

    #[test]
    fn conflict_closes_batch() {
        let events = vec![
            row_event(0, "t", 1),
            row_event(1, "t", 2),
            row_event(2, "t", 1), // conflicts with lsn 0
            row_event(3, "t", 3),
        ];
        let (batches, stats) = simulate(&events, 4, pk0);
        assert_eq!(
            batches,
            vec![vec![Lsn(0), Lsn(1)], vec![Lsn(2), Lsn(3)]],
            "planner never skips a conflicting event to batch a later one"
        );
        assert_eq!(stats.conflict_bounded, 1);
    }

    #[test]
    fn ddl_is_a_full_barrier() {
        let events = vec![
            row_event(0, "t", 1),
            row_event(1, "t", 2),
            stmt_event(2, "CREATE INDEX i ON t (v)"),
            row_event(3, "t", 3),
            row_event(4, "t", 4),
        ];
        let (batches, stats) = simulate(&events, 8, pk0);
        assert_eq!(
            batches,
            vec![vec![Lsn(0), Lsn(1)], vec![Lsn(2)], vec![Lsn(3), Lsn(4)],],
            "DDL runs alone: drains the batch before it, blocks the one after"
        );
        assert_eq!(stats.barrier_batches, 1);
    }

    #[test]
    fn statement_format_stream_degenerates_to_serial() {
        let events: Vec<_> = (0..6)
            .map(|i| stmt_event(i, "UPDATE t SET v = 1 WHERE id = 2"))
            .collect();
        let (batches, stats) = simulate(&events, 8, pk0);
        assert!(batches.iter().all(|b| b.len() == 1));
        assert_eq!(stats.barrier_batches, 6);
    }

    #[test]
    fn commit_order_is_lsn_order() {
        // Adversarial mix: conflicts, barriers, keyless tables.
        let mut events = Vec::new();
        for i in 0..40u64 {
            events.push(match i % 7 {
                3 => stmt_event(i, "UPDATE t SET v = 0"),
                5 => row_event(i, "heap", i as i64),
                _ => row_event(i, "t", (i % 5) as i64),
            });
        }
        let pk = |t: &str| if t == "heap" { None } else { Some(0) };
        for workers in [1usize, 2, 4, 8] {
            let (batches, stats) = simulate(&events, workers, pk);
            let flat: Vec<Lsn> = batches.iter().flatten().copied().collect();
            assert_eq!(
                flat,
                (0..40).map(Lsn).collect::<Vec<_>>(),
                "workers={workers}: flattened batches must be the LSN sequence"
            );
            assert_eq!(stats.events, 40);
            assert!(stats.largest_batch as usize <= workers);
        }
    }

    #[test]
    fn plans_name_what_closed_the_batch() {
        let mut s = ApplyScheduler::new(2);
        let events = [
            row_event(0, "t", 1),
            row_event(1, "t", 2),
            row_event(2, "t", 1),
        ];
        // Filled both workers with lsn 2 still waiting: capacity.
        assert_eq!(s.plan_batch(events.iter(), pk0).bound, BatchBound::Capacity);
        // Conflict with the in-flight pk closes the next batch.
        let conflicted = [row_event(0, "t", 5), row_event(1, "t", 5)];
        assert_eq!(
            s.plan_batch(conflicted.iter(), pk0).bound,
            BatchBound::Conflict
        );
        // Queue shorter than the worker count: drained.
        assert_eq!(
            s.plan_batch(events[..1].iter(), pk0).bound,
            BatchBound::Drained
        );
        // Lone barrier event.
        let ddl = [stmt_event(0, "CREATE INDEX i ON t (v)")];
        assert_eq!(s.plan_batch(ddl.iter(), pk0).bound, BatchBound::Barrier);
        assert_eq!(BatchBound::Conflict.as_str(), "conflict");
    }

    #[test]
    fn planning_is_deterministic() {
        let events: Vec<_> = (0..64).map(|i| row_event(i, "t", (i % 9) as i64)).collect();
        let (a, sa) = simulate(&events, 4, pk0);
        let (b, sb) = simulate(&events, 4, pk0);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }
}
