//! # amdb-apply — row writesets and deterministic parallel slave apply
//!
//! The paper's replication-delay surge (Figs 5–6) is queueing at the *single*
//! slave SQL thread: once offered apply demand exceeds one core's capacity,
//! the relay backlog — and with it staleness — grows without bound (§IV-A).
//! Production MySQL attacked exactly this with row-based logging plus
//! multi-threaded, dependency-aware apply (`replica_parallel_workers` with
//! `WRITESET` tracking); log-replicated cloud databases such as Taurus push
//! the same idea further. This crate is that mechanism for amdb:
//!
//! * [`writeset`] — extracts the *conflict footprint* of a binlog event:
//!   interned table ids plus primary-key-keyed before/after row images
//!   ([`RowEvent`]). Statement events (including all DDL) have no computable
//!   footprint and act as full barriers.
//! * [`scheduler`] — the deterministic group-commit planner:
//!   [`ApplyScheduler`] forms batches of up to N pairwise-non-conflicting
//!   transactions from the head of the relay queue, dispatches them to N
//!   simulated workers, and commits **in LSN order** so externally visible
//!   state and replication watermarks stay sequential. With `workers = 1`
//!   every batch has size 1 and the pipeline is byte-identical to the classic
//!   serial apply thread.
//!
//! Determinism contract: planning consumes no randomness and no host state —
//! the batch boundaries are a pure function of the event sequence and the
//! schema's primary keys, so a simulation replaying the same binlog always
//! applies in the same groups, regardless of `--jobs` or wall-clock.

pub mod scheduler;
pub mod writeset;

pub use scheduler::{simulate, ApplyPlan, ApplyScheduler, BatchBound, SchedulerStats};
pub use writeset::{writeset_of, RowEvent, RowKey, TableId, TableInterner, Writeset};
