//! Conflict-footprint extraction for binlog events.
//!
//! Two transactions can apply concurrently on a slave exactly when their
//! writesets are disjoint — the rule MySQL's `WRITESET` dependency tracking
//! and Taurus's page-keyed log dispatch both implement. The footprint of a
//! row-format event is the set of `(table, primary key)` pairs it touches;
//! an update that moves a row's primary key contributes *both* the before
//! and after keys (another worker touching either would race). Statement
//! events — including all DDL, which amdb-sql always logs as statements —
//! have no computable footprint and degrade to a full barrier: they must
//! run alone, after every prior event committed and before any later one
//! starts. A row change on a table with no primary key is likewise a
//! barrier (no key to conflict-check on).

use std::collections::BTreeMap;
use std::fmt;

use amdb_sql::exec::{RowChange, RowChangeKind};
use amdb_sql::{BinlogEvent, EventPayload, Value};

/// Dense id for a table name, assigned by a [`TableInterner`].
///
/// Conflict keys are compared millions of times per sweep; interning turns
/// the table component into a `u32` compare instead of a string compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

/// Assigns stable dense [`TableId`]s to table names.
///
/// Ids are allocated in first-seen order, which is deterministic because the
/// binlog is consumed in LSN order.
#[derive(Debug, Default, Clone)]
pub struct TableInterner {
    by_name: BTreeMap<String, TableId>,
    names: Vec<String>,
}

impl TableInterner {
    /// New empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id for `name`, allocating one on first sight.
    pub fn intern(&mut self, name: &str) -> TableId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = TableId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Name for a previously interned id.
    pub fn name(&self, id: TableId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of distinct tables seen.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no table has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Canonical byte encoding of a primary-key value.
///
/// A plain `Vec<u8>` gives `Ord + Hash` without pulling `Value`'s float
/// semantics into key comparison: `Double` keys encode via `to_bits`, so two
/// keys conflict iff their bit patterns match — exactly the identity the
/// storage layer's B-tree uses for primary-key lookups.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowKey(Vec<u8>);

impl RowKey {
    /// Encode a primary-key value.
    pub fn encode(v: &Value) -> RowKey {
        let mut buf = Vec::with_capacity(9);
        match v {
            Value::Null => buf.push(0),
            Value::Int(i) => {
                buf.push(1);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Double(d) => {
                buf.push(2);
                buf.extend_from_slice(&d.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                buf.push(3);
                buf.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                buf.push(4);
                buf.push(*b as u8);
            }
            Value::Timestamp(t) => {
                // Timestamps and ints unify: statement-format logging already
                // normalizes Timestamp params to Int, so a key must hash the
                // same whichever representation reached the binlog.
                buf.push(1);
                buf.extend_from_slice(&t.to_le_bytes());
            }
        }
        RowKey(buf)
    }

    /// Raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Display for RowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// One row mutation in conflict-key form: table id plus before/after images
/// keyed by primary key. This is the scheduler's view of a
/// [`RowChange`] — images are kept so tests and tooling can reconstruct the
/// mutation, keys are what planning compares.
#[derive(Debug, Clone, PartialEq)]
pub struct RowEvent {
    /// Interned table the change applies to.
    pub table: TableId,
    /// Primary key of the pre-image (updates and deletes).
    pub before_key: Option<RowKey>,
    /// Primary key of the post-image (inserts and updates).
    pub after_key: Option<RowKey>,
    /// Full pre-image row, when the change has one.
    pub before: Option<Vec<Value>>,
    /// Full post-image row, when the change has one.
    pub after: Option<Vec<Value>>,
}

impl RowEvent {
    /// Build from a [`RowChange`], given the table's primary-key column
    /// index. Returns `None` when the table has no primary key — the caller
    /// must treat the containing event as a barrier.
    pub fn from_change(
        change: &RowChange,
        table: TableId,
        pk_idx: Option<usize>,
    ) -> Option<RowEvent> {
        let pk = pk_idx?;
        let key_of = |row: &[Value]| row.get(pk).map(RowKey::encode);
        match &change.kind {
            RowChangeKind::Insert { row } => Some(RowEvent {
                table,
                before_key: None,
                after_key: key_of(row),
                before: None,
                after: Some(row.clone()),
            }),
            RowChangeKind::Update { before, after } => Some(RowEvent {
                table,
                before_key: key_of(before),
                after_key: key_of(after),
                before: Some(before.clone()),
                after: Some(after.clone()),
            }),
            RowChangeKind::Delete { row } => Some(RowEvent {
                table,
                before_key: key_of(row),
                after_key: None,
                before: Some(row.clone()),
                after: None,
            }),
        }
    }

    /// Conflict keys this mutation contributes (1 for insert/delete, up to 2
    /// for an update that moves the primary key).
    pub fn keys(&self) -> impl Iterator<Item = (TableId, &RowKey)> {
        let table = self.table;
        self.before_key
            .iter()
            .chain(
                self.after_key
                    .iter()
                    .filter(|a| Some(*a) != self.before_key.as_ref()),
            )
            .map(move |k| (table, k))
    }
}

/// Conflict footprint of one binlog event.
#[derive(Debug, Clone, PartialEq)]
pub enum Writeset {
    /// Row-format event touching exactly these `(table, key)` pairs; two
    /// `Keys` writesets conflict iff the pair sets intersect.
    Keys(Vec<(TableId, RowKey)>),
    /// Statement/DDL event or a keyless-table change: conflicts with
    /// everything and must apply alone.
    Barrier,
}

impl Writeset {
    /// True when this footprint forces serial application.
    pub fn is_barrier(&self) -> bool {
        matches!(self, Writeset::Barrier)
    }

    /// True when the two footprints cannot apply concurrently.
    pub fn conflicts_with(&self, other: &Writeset) -> bool {
        match (self, other) {
            (Writeset::Barrier, _) | (_, Writeset::Barrier) => true,
            (Writeset::Keys(a), Writeset::Keys(b)) => {
                // Writesets are tiny (autocommit transactions touch a few
                // rows); the quadratic scan beats building hash sets.
                a.iter().any(|ka| b.iter().any(|kb| ka == kb))
            }
        }
    }
}

/// Compute the conflict footprint of a binlog event.
///
/// `pk_of` maps a table name to the primary-key column index in the slave's
/// current catalog (`None` = no primary key). Statement payloads — and thus
/// every DDL event, which amdb-sql only logs in statement form — return
/// [`Writeset::Barrier`].
pub fn writeset_of(
    event: &BinlogEvent,
    interner: &mut TableInterner,
    pk_of: impl Fn(&str) -> Option<usize>,
) -> Writeset {
    match &event.payload {
        EventPayload::Statement { .. } => Writeset::Barrier,
        EventPayload::Rows { changes } => {
            let mut keys: Vec<(TableId, RowKey)> = Vec::with_capacity(changes.len());
            for change in changes {
                let table = interner.intern(&change.table);
                let Some(ev) = RowEvent::from_change(change, table, pk_of(&change.table)) else {
                    return Writeset::Barrier;
                };
                for (t, k) in ev.keys() {
                    let pair = (t, k.clone());
                    if !keys.contains(&pair) {
                        keys.push(pair);
                    }
                }
            }
            Writeset::Keys(keys)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdb_sql::Lsn;

    fn ins(table: &str, pk: i64) -> RowChange {
        RowChange {
            table: table.to_string(),
            kind: RowChangeKind::Insert {
                row: vec![Value::Int(pk), Value::Text("x".into())],
            },
        }
    }

    fn rows_event(lsn: u64, changes: Vec<RowChange>) -> BinlogEvent {
        BinlogEvent {
            lsn: Lsn(lsn),
            commit_ts_micros: 0,
            payload: EventPayload::Rows { changes },
        }
    }

    fn stmt_event(lsn: u64, sql: &str) -> BinlogEvent {
        BinlogEvent {
            lsn: Lsn(lsn),
            commit_ts_micros: 0,
            payload: EventPayload::Statement {
                sql: sql.to_string(),
                params: vec![],
            },
        }
    }

    #[test]
    fn interner_assigns_stable_dense_ids() {
        let mut it = TableInterner::new();
        let a = it.intern("users");
        let b = it.intern("posts");
        assert_eq!(it.intern("users"), a);
        assert_eq!((a, b), (TableId(0), TableId(1)));
        assert_eq!(it.name(b), "posts");
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn row_key_distinguishes_types_and_unifies_int_timestamp() {
        assert_ne!(
            RowKey::encode(&Value::Int(1)),
            RowKey::encode(&Value::Bool(true))
        );
        assert_ne!(RowKey::encode(&Value::Int(0)), RowKey::encode(&Value::Null));
        assert_eq!(
            RowKey::encode(&Value::Int(7)),
            RowKey::encode(&Value::Timestamp(7))
        );
        assert_eq!(
            RowKey::encode(&Value::Double(1.5)),
            RowKey::encode(&Value::Double(1.5))
        );
        assert_ne!(
            RowKey::encode(&Value::Double(0.0)),
            RowKey::encode(&Value::Double(-0.0)),
            "bit-pattern identity, matching index_cmp's total order"
        );
    }

    #[test]
    fn statement_events_are_barriers() {
        let ev = stmt_event(1, "DROP TABLE users");
        let mut it = TableInterner::new();
        assert!(writeset_of(&ev, &mut it, |_| Some(0)).is_barrier());
    }

    #[test]
    fn keyless_table_changes_are_barriers() {
        let ev = rows_event(1, vec![ins("heap", 1)]);
        let mut it = TableInterner::new();
        assert!(writeset_of(&ev, &mut it, |_| None).is_barrier());
    }

    #[test]
    fn disjoint_keys_do_not_conflict() {
        let mut it = TableInterner::new();
        let a = writeset_of(&rows_event(1, vec![ins("users", 1)]), &mut it, |_| Some(0));
        let b = writeset_of(&rows_event(2, vec![ins("users", 2)]), &mut it, |_| Some(0));
        let c = writeset_of(&rows_event(3, vec![ins("posts", 1)]), &mut it, |_| Some(0));
        assert!(!a.conflicts_with(&b));
        assert!(!a.conflicts_with(&c), "same pk value, different table");
        assert!(a.conflicts_with(&a.clone()));
    }

    #[test]
    fn pk_moving_update_contributes_both_keys() {
        let change = RowChange {
            table: "users".to_string(),
            kind: RowChangeKind::Update {
                before: vec![Value::Int(1), Value::Text("a".into())],
                after: vec![Value::Int(9), Value::Text("a".into())],
            },
        };
        let mut it = TableInterner::new();
        let ws = writeset_of(&rows_event(1, vec![change]), &mut it, |_| Some(0));
        let Writeset::Keys(keys) = &ws else {
            panic!("expected keys")
        };
        assert_eq!(keys.len(), 2);
        let touch_old = writeset_of(&rows_event(2, vec![ins("users", 1)]), &mut it, |_| Some(0));
        let touch_new = writeset_of(&rows_event(3, vec![ins("users", 9)]), &mut it, |_| Some(0));
        assert!(ws.conflicts_with(&touch_old));
        assert!(ws.conflicts_with(&touch_new));
    }

    #[test]
    fn in_place_update_contributes_one_key() {
        let change = RowChange {
            table: "users".to_string(),
            kind: RowChangeKind::Update {
                before: vec![Value::Int(1), Value::Text("a".into())],
                after: vec![Value::Int(1), Value::Text("b".into())],
            },
        };
        let mut it = TableInterner::new();
        let ws = writeset_of(&rows_event(1, vec![change]), &mut it, |_| Some(0));
        let Writeset::Keys(keys) = ws else {
            panic!("expected keys")
        };
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn multi_change_event_dedups_keys() {
        let ev = rows_event(1, vec![ins("users", 5), ins("users", 5), ins("users", 6)]);
        let mut it = TableInterner::new();
        let Writeset::Keys(keys) = writeset_of(&ev, &mut it, |_| Some(0)) else {
            panic!("expected keys")
        };
        assert_eq!(keys.len(), 2);
    }
}
