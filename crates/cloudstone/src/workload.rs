//! Closed-loop workload configuration and run phases.

use amdb_sim::{SimDuration, SimTime};

/// Run phases. The paper: "Every run lasts 35 minutes, including 10-minute
/// ramp-up, 20-minute steady stage and 5-minute ramp down" (§III-B). We
/// prepend an idle stage during which only heartbeats flow — it supplies the
/// no-load baseline for *relative* replication delay (§IV-B.1) — and append
/// a drain stage so saturated apply backlogs finish applying and their
/// delays become measurable.
#[derive(Debug, Clone, Copy)]
pub struct Phases {
    pub idle: SimDuration,
    pub ramp_up: SimDuration,
    pub steady: SimDuration,
    pub ramp_down: SimDuration,
    /// Maximum extra time to let relays drain after ramp-down.
    pub drain_cap: SimDuration,
}

impl Phases {
    /// The paper's 35-minute run (plus idle baseline and drain cap).
    pub fn paper() -> Self {
        Self {
            idle: SimDuration::from_secs(120),
            ramp_up: SimDuration::from_secs(600),
            steady: SimDuration::from_secs(1200),
            ramp_down: SimDuration::from_secs(300),
            drain_cap: SimDuration::from_secs(1800),
        }
    }

    /// A proportionally shrunk run for fast tests and Criterion benches
    /// (shapes survive; absolute counts shrink).
    pub fn quick() -> Self {
        Self {
            idle: SimDuration::from_secs(40),
            ramp_up: SimDuration::from_secs(60),
            steady: SimDuration::from_secs(240),
            ramp_down: SimDuration::from_secs(30),
            drain_cap: SimDuration::from_secs(600),
        }
    }

    /// When user ramp-up starts (idle ends).
    pub fn load_start(&self) -> SimTime {
        SimTime::ZERO + self.idle
    }

    /// When the measured steady stage starts.
    pub fn steady_start(&self) -> SimTime {
        self.load_start() + self.ramp_up
    }

    /// When the measured steady stage ends.
    pub fn steady_end(&self) -> SimTime {
        self.steady_start() + self.steady
    }

    /// When users stop issuing new operations.
    pub fn load_end(&self) -> SimTime {
        self.steady_end() + self.ramp_down
    }

    /// Hard stop for the whole simulation (drain cap included).
    pub fn hard_end(&self) -> SimTime {
        self.load_end() + self.drain_cap
    }

    /// Is `t` within the measured steady window?
    pub fn in_steady(&self, t: SimTime) -> bool {
        t >= self.steady_start() && t < self.steady_end()
    }

    /// Is `t` within the idle (no-load baseline) window?
    pub fn in_idle(&self, t: SimTime) -> bool {
        t < self.load_start()
    }
}

/// Closed-loop workload configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of emulated concurrent users (the x-axis of Figs 2/3/5/6).
    pub concurrent_users: u32,
    /// Mean think time between a response and the next request. Calibrated
    /// at 6 s so the closed-loop low-load throughput matches the figures'
    /// starting points (≈8 ops/s at 50 users); see EXPERIMENTS.md.
    pub think_time: SimDuration,
    /// Run phases.
    pub phases: Phases,
}

impl WorkloadConfig {
    /// Paper-shaped workload with `users` concurrent users.
    pub fn paper(users: u32) -> Self {
        Self {
            concurrent_users: users,
            think_time: SimDuration::from_secs(6),
            phases: Phases::paper(),
        }
    }

    /// Quick variant for tests/benches.
    pub fn quick(users: u32) -> Self {
        Self {
            concurrent_users: users,
            think_time: SimDuration::from_secs(6),
            phases: Phases::quick(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_phases_sum_to_35_minutes_plus_extras() {
        let p = Phases::paper();
        let load = (p.load_end() - p.load_start()).as_secs_f64();
        assert_eq!(load, 35.0 * 60.0, "10 + 20 + 5 minutes of load");
    }

    #[test]
    fn boundaries_are_ordered() {
        for p in [Phases::paper(), Phases::quick()] {
            assert!(p.load_start() < p.steady_start());
            assert!(p.steady_start() < p.steady_end());
            assert!(p.steady_end() < p.load_end());
            assert!(p.load_end() < p.hard_end());
        }
    }

    #[test]
    fn window_classification() {
        let p = Phases::paper();
        assert!(p.in_idle(SimTime::from_secs(10)));
        assert!(!p.in_idle(p.load_start()));
        assert!(p.in_steady(p.steady_start()));
        assert!(!p.in_steady(p.steady_end()));
        let mid_ramp = p.load_start() + SimDuration::from_secs(60);
        assert!(!p.in_steady(mid_ramp) && !p.in_idle(mid_ramp));
    }
}
