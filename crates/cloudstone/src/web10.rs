//! A Web 1.0 contrast workload (TPC-W-flavoured bookstore).
//!
//! §III-A argues Cloudstone fits the study because Web 2.0 applications
//! write more ("contents ... depend on user contributions") than the
//! Web 1.0 applications TPC-W and RUBiS represent. This module provides the
//! contrast case: a read-mostly online bookstore — catalog browsing,
//! searching, product pages, and an occasional purchase — so experiments can
//! show how far master-slave scale-out goes when the write fraction is
//! small (much further: the master ceiling moves out by roughly the ratio
//! of the write fractions).

use crate::load::DataCounters;
use crate::ops::{OpClass, Operation};
use amdb_sim::Rng;
use amdb_sql::{Engine, Session, SqlError, Value};

/// DDL for the bookstore schema (alongside, not replacing, the events
/// calendar — the two workloads can target the same replicated tier).
pub const WEB10_SCHEMA: &str = "
CREATE TABLE items (
    id INT PRIMARY KEY,
    title VARCHAR(128) NOT NULL,
    author VARCHAR(64) NOT NULL,
    subject INT NOT NULL,
    price DOUBLE NOT NULL,
    stock INT NOT NULL
);
CREATE INDEX idx_items_subject ON items (subject);

CREATE TABLE orders (
    id INT PRIMARY KEY,
    customer_id INT NOT NULL,
    item_id INT NOT NULL,
    quantity INT NOT NULL,
    created_at TIMESTAMP NOT NULL
);
CREATE INDEX idx_orders_customer ON orders (customer_id);
CREATE INDEX idx_orders_item ON orders (item_id)
";

/// Number of subjects (categories) in the catalog.
pub const SUBJECTS: i64 = 24;

/// Load the bookstore catalog into an engine: `n_items` items plus one
/// seed order per 10 items.
pub fn load_web10(
    engine: &mut Engine,
    session: &mut Session,
    n_items: u32,
    rng: &mut Rng,
) -> Result<(), SqlError> {
    engine.execute_batch(session, WEB10_SCHEMA)?;
    let mut rows = Vec::with_capacity(500);
    for id in 1..=n_items as i64 {
        let subject = rng.int_range(0, SUBJECTS - 1);
        let price = rng.int_range(5, 80) as f64 + 0.99;
        let stock = rng.int_range(0, 500);
        rows.push(format!(
            "({id}, 'book {id}', 'author {}', {subject}, {price}, {stock})",
            rng.int_range(1, 500)
        ));
        if rows.len() == 500 {
            let sql = format!(
                "INSERT INTO items (id, title, author, subject, price, stock) VALUES {}",
                rows.join(", ")
            );
            engine.execute(session, &sql, &[])?;
            rows.clear();
        }
    }
    if !rows.is_empty() {
        let sql = format!(
            "INSERT INTO items (id, title, author, subject, price, stock) VALUES {}",
            rows.join(", ")
        );
        engine.execute(session, &sql, &[])?;
    }
    let mut orders = Vec::new();
    for oid in 1..=(n_items as i64 / 10).max(1) {
        let item = rng.int_range(1, n_items as i64);
        let cust = rng.int_range(1, 10_000);
        orders.push(format!("({oid}, {cust}, {item}, 1, 0)"));
        if orders.len() == 500 {
            let sql = format!(
                "INSERT INTO orders (id, customer_id, item_id, quantity, created_at) VALUES {}",
                orders.join(", ")
            );
            engine.execute(session, &sql, &[])?;
            orders.clear();
        }
    }
    if !orders.is_empty() {
        let sql = format!(
            "INSERT INTO orders (id, customer_id, item_id, quantity, created_at) VALUES {}",
            orders.join(", ")
        );
        engine.execute(session, &sql, &[])?;
    }
    Ok(())
}

/// Generates the Web 1.0 mix: 95 % reads (browse / search / product page /
/// order status), 5 % writes (buy).
#[derive(Debug, Clone)]
pub struct Web10Generator {
    n_items: i64,
    next_order: i64,
    rng: Rng,
}

impl Web10Generator {
    /// Generator over a catalog of `n_items` items; order ids continue after
    /// the seeded ones.
    pub fn new(n_items: u32, rng: Rng) -> Self {
        Self {
            n_items: n_items as i64,
            next_order: (n_items as i64 / 10).max(1) + 1,
            rng,
        }
    }

    /// The write fraction of this mix.
    pub const WRITE_FRACTION: f64 = 0.05;

    /// Draw one operation.
    pub fn generate(&mut self) -> Operation {
        if self.rng.chance(Self::WRITE_FRACTION) {
            self.op_buy()
        } else {
            match self.rng.pick_weighted(&[0.35, 0.30, 0.25, 0.10]) {
                0 => self.op_browse_subject(),
                1 => self.op_product_page(),
                2 => self.op_best_sellers(),
                _ => self.op_order_status(),
            }
        }
    }

    fn op_browse_subject(&mut self) -> Operation {
        let subject = self.rng.int_range(0, SUBJECTS - 1);
        Operation {
            name: "browse_subject",
            class: OpClass::Read,
            statements: vec![(
                "SELECT id, title, price FROM items WHERE subject = ? \
                 ORDER BY title LIMIT 20"
                    .into(),
                vec![Value::Int(subject)],
            )],
        }
    }

    fn op_product_page(&mut self) -> Operation {
        let item = self.rng.int_range(1, self.n_items);
        Operation {
            name: "product_page",
            class: OpClass::Read,
            statements: vec![
                (
                    "SELECT title, author, price, stock FROM items WHERE id = ?".into(),
                    vec![Value::Int(item)],
                ),
                (
                    "SELECT COUNT(*) FROM orders WHERE item_id = ?".into(),
                    vec![Value::Int(item)],
                ),
            ],
        }
    }

    fn op_best_sellers(&mut self) -> Operation {
        let subject = self.rng.int_range(0, SUBJECTS - 1);
        Operation {
            name: "best_sellers",
            class: OpClass::Read,
            statements: vec![(
                "SELECT i.id, i.title, COUNT(*) AS sold FROM orders o \
                 INNER JOIN items i ON o.item_id = i.id \
                 WHERE i.subject = ? GROUP BY o.item_id ORDER BY sold DESC LIMIT 10"
                    .into(),
                vec![Value::Int(subject)],
            )],
        }
    }

    fn op_order_status(&mut self) -> Operation {
        let cust = self.rng.int_range(1, 10_000);
        Operation {
            name: "order_status",
            class: OpClass::Read,
            statements: vec![(
                "SELECT o.id, i.title, o.quantity FROM orders o \
                 INNER JOIN items i ON o.item_id = i.id \
                 WHERE o.customer_id = ? ORDER BY o.id DESC LIMIT 5"
                    .into(),
                vec![Value::Int(cust)],
            )],
        }
    }

    fn op_buy(&mut self) -> Operation {
        let oid = self.next_order;
        self.next_order += 1;
        let item = self.rng.int_range(1, self.n_items);
        let cust = self.rng.int_range(1, 10_000);
        let qty = self.rng.int_range(1, 3);
        Operation {
            name: "buy",
            class: OpClass::Write,
            statements: vec![
                (
                    "INSERT INTO orders (id, customer_id, item_id, quantity, created_at) \
                     VALUES (?, ?, ?, ?, NOW_MICROS())"
                        .into(),
                    vec![
                        Value::Int(oid),
                        Value::Int(cust),
                        Value::Int(item),
                        Value::Int(qty),
                    ],
                ),
                (
                    "UPDATE items SET stock = stock - ? WHERE id = ?".into(),
                    vec![Value::Int(qty), Value::Int(item)],
                ),
            ],
        }
    }
}

/// Convenience: derive an items count from the calendar's [`DataCounters`]
/// scale so both workloads see comparable data volumes.
pub fn items_for(counters: &DataCounters) -> u32 {
    ((counters.next_event - 1) as u32).max(100)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdb_sql::BinlogFormat;

    fn setup() -> (Engine, Session, Web10Generator) {
        let mut engine = Engine::new_master(BinlogFormat::Statement);
        let mut session = Session::new();
        let mut rng = Rng::new(3);
        load_web10(&mut engine, &mut session, 500, &mut rng).expect("load");
        (engine, session, Web10Generator::new(500, rng.derive("ops")))
    }

    #[test]
    fn catalog_loads() {
        let (engine, _, _) = setup();
        assert_eq!(engine.table_rows("items"), Some(500));
        assert_eq!(engine.table_rows("orders"), Some(50));
    }

    #[test]
    fn all_ops_execute() {
        let (mut engine, mut session, mut gen) = setup();
        for i in 0..400 {
            let op = gen.generate();
            for (sql, params) in &op.statements {
                engine
                    .execute(&mut session, sql, params)
                    .unwrap_or_else(|e| panic!("op {i} ({}) failed: {e}\n{sql}", op.name));
            }
        }
    }

    #[test]
    fn mix_is_read_mostly() {
        let (_, _, mut gen) = setup();
        let n = 8_000;
        let writes = (0..n)
            .filter(|_| gen.generate().class == OpClass::Write)
            .count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.01, "write fraction {frac}");
    }

    #[test]
    fn buys_change_stock_and_orders() {
        let (mut engine, mut session, mut gen) = setup();
        let orders_before = engine.table_rows("orders").unwrap();
        let mut bought = 0;
        while bought < 5 {
            let op = gen.generate();
            if op.class == OpClass::Write {
                bought += 1;
            }
            for (sql, params) in &op.statements {
                engine.execute(&mut session, sql, params).unwrap();
            }
        }
        assert_eq!(engine.table_rows("orders").unwrap(), orders_before + 5);
    }
}
