//! Shard-key extraction for the Cloudstone operation mix.
//!
//! The sharded front proxy (amdb-shard / amdb-core::sharded) partitions the
//! events-calendar schema by *entity*: an operation's shard is derived from
//! the primary entity it touches. Each operation type declares which
//! parameter carries that entity id, so extraction is a table lookup over
//! `Operation::name` — no SQL parsing on the hot path.
//!
//! Keyspaces are disjoint (`User(7)` and `Event(7)` may map to different
//! shards): every entity id is mixed with a keyspace tag before hashing.
//! Cross-entity references inside a write (e.g. `join_event` names both an
//! event and a user) shard by the row the write *inserts into* — the event —
//! so each event's comment/attendee rows colocate with the event row and
//! event-detail reads stay single-shard.

use crate::ops::Operation;
use amdb_sql::Value;

/// The entity keyspace + id an operation shards by.
///
/// Distinct variants are distinct keyspaces: the shard map mixes the
/// variant's tag into the hash so equal ids in different keyspaces are
/// uncorrelated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardKey {
    /// users.id — person detail, registration.
    User(i64),
    /// events.id — event detail and all event-anchored writes.
    Event(i64),
    /// tags.id — tag search.
    Tag(i64),
    /// events.zip — the upcoming-by-zip browse.
    Zip(i64),
}

impl ShardKey {
    /// Keyspace tag mixed into the shard hash (stable across versions —
    /// changing a tag remaps every key in that keyspace).
    pub fn space_tag(&self) -> u64 {
        match self {
            ShardKey::User(_) => 1,
            ShardKey::Event(_) => 2,
            ShardKey::Tag(_) => 3,
            ShardKey::Zip(_) => 4,
        }
    }

    /// The raw entity id.
    pub fn id(&self) -> i64 {
        match *self {
            ShardKey::User(v) | ShardKey::Event(v) | ShardKey::Tag(v) | ShardKey::Zip(v) => v,
        }
    }
}

fn int_param(op: &Operation, stmt: usize, param: usize) -> i64 {
    match op.statements[stmt].1[param] {
        Value::Int(v) => v,
        ref other => panic!(
            "op '{}' statement {stmt} param {param}: expected Int shard key, got {other:?}",
            op.name
        ),
    }
}

/// Extract the shard key of a Cloudstone (or web10) operation.
///
/// Returns `None` for operations with no meaningful entity key (the web10
/// read-mostly contrast mix); the front pins those to shard 0.
///
/// Parameter positions are tied to the constructors in [`crate::ops`]:
/// `add_comment`'s statement params are `(cid, eid, uid, rating)` — the
/// *second* param is the event id, not the first.
pub fn shard_key_of(op: &Operation) -> Option<ShardKey> {
    let key = match op.name {
        "upcoming_by_zip" => ShardKey::Zip(int_param(op, 0, 0)),
        "tag_search" => ShardKey::Tag(int_param(op, 0, 0)),
        "event_detail" | "add_event" | "join_event" => ShardKey::Event(int_param(op, 0, 0)),
        "add_comment" => ShardKey::Event(int_param(op, 0, 1)),
        "person_detail" | "add_person" => ShardKey::User(int_param(op, 0, 0)),
        _ => return None,
    };
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::build_template;
    use crate::ops::{MixConfig, OpGenerator};
    use crate::schema::DataSize;
    use amdb_sim::Rng;

    #[test]
    fn every_cloudstone_op_has_a_key() {
        let mut rng = Rng::new(3);
        let (_, counters) = build_template(DataSize { scale: 10 }, &mut rng);
        let mut g = OpGenerator::new(counters, rng.derive("ops"));
        for _ in 0..2_000 {
            let op = g.generate(MixConfig::RW_50_50);
            let key = shard_key_of(&op)
                .unwrap_or_else(|| panic!("op '{}' produced no shard key", op.name));
            assert!(key.id() >= 0, "op '{}' key {key:?}", op.name);
        }
    }

    #[test]
    fn add_comment_keys_on_the_event_not_the_comment_id() {
        let mut rng = Rng::new(3);
        let (_, counters) = build_template(DataSize { scale: 10 }, &mut rng);
        let mut g = OpGenerator::new(counters, rng.derive("ops"));
        let mut seen = 0;
        while seen < 50 {
            let op = g.generate_write();
            if op.name != "add_comment" {
                continue;
            }
            seen += 1;
            let eid = match op.statements[0].1[1] {
                Value::Int(v) => v,
                _ => unreachable!(),
            };
            assert_eq!(shard_key_of(&op), Some(ShardKey::Event(eid)));
        }
    }

    #[test]
    fn web10_ops_have_no_key() {
        let op = Operation {
            name: "w10_product_detail",
            class: crate::ops::OpClass::Read,
            statements: vec![],
        };
        assert_eq!(shard_key_of(&op), None);
    }
}
