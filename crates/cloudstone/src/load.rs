//! Deterministic database pre-loading.
//!
//! The paper requires every run to "start with a pre-loaded,
//! fully-synchronized database" (§III-B). [`build_template`] loads one
//! template engine for a given [`DataSize`]; the experiment harness then
//! forks it (`Engine::fork`) into the master and each slave of every run —
//! loaded once, forked many times.

use crate::schema::{DataSize, SCHEMA_SQL};
use amdb_sim::Rng;
use amdb_sql::{BinlogFormat, Engine, Session};

/// Client-side id counters for every entity the generator can create.
/// Seed data occupies `1..=n`; operation-generated rows continue above.
#[derive(Debug, Clone)]
pub struct DataCounters {
    pub next_user: i64,
    pub next_event: i64,
    pub next_tag: i64,
    pub next_event_tag: i64,
    pub next_attendee: i64,
    pub next_comment: i64,
    pub zips: u32,
}

impl DataCounters {
    /// Counters immediately after seeding `size`.
    pub fn after_load(size: DataSize) -> Self {
        let e = size.events() as i64;
        let u = size.users() as i64;
        Self {
            next_user: u + 1,
            next_event: e + 1,
            next_tag: size.tags() as i64 + 1,
            next_event_tag: e * size.tags_per_event() as i64 + 1,
            next_attendee: u * size.attendances_per_user() as i64 + 1,
            next_comment: e * size.comments_per_event() as i64 + 1,
            zips: size.zips(),
        }
    }
}

/// Insert batch size (rows per multi-row INSERT during loading).
const BATCH: usize = 500;

/// Build a fully-loaded template engine for `size`. Deterministic in the
/// RNG seed. Returns the engine and the post-load id counters.
pub fn build_template(size: DataSize, rng: &mut Rng) -> (Engine, DataCounters) {
    let mut engine = Engine::new_master(BinlogFormat::Statement);
    let mut session = Session::new();
    engine
        .execute_batch(&mut session, SCHEMA_SQL)
        .expect("schema loads");

    let now_us: i64 = 0; // seed rows predate the run; exact value irrelevant

    // users
    let mut rows: Vec<String> = Vec::with_capacity(BATCH);
    let flush = |engine: &mut Engine,
                 session: &mut Session,
                 table: &str,
                 cols: &str,
                 rows: &mut Vec<String>| {
        if rows.is_empty() {
            return;
        }
        let sql = format!("INSERT INTO {table} ({cols}) VALUES {}", rows.join(", "));
        engine.execute(session, &sql, &[]).expect("seed insert");
        rows.clear();
    };

    for uid in 1..=size.users() as i64 {
        rows.push(format!(
            "({uid}, 'user{uid}', 'user{uid}@example.com', {now_us})"
        ));
        if rows.len() == BATCH {
            flush(
                &mut engine,
                &mut session,
                "users",
                "id, username, email, created_at",
                &mut rows,
            );
        }
    }
    flush(
        &mut engine,
        &mut session,
        "users",
        "id, username, email, created_at",
        &mut rows,
    );

    // tags
    for tid in 1..=size.tags() as i64 {
        rows.push(format!("({tid}, 'tag{tid}')"));
        if rows.len() == BATCH {
            flush(&mut engine, &mut session, "tags", "id, name", &mut rows);
        }
    }
    flush(&mut engine, &mut session, "tags", "id, name", &mut rows);

    // events
    for eid in 1..=size.events() as i64 {
        let creator = rng.int_range(1, size.users() as i64);
        let zip = rng.int_range(0, size.zips() as i64 - 1);
        let ts = rng.int_range(0, 30 * 86_400) * 1_000_000;
        rows.push(format!(
            "({eid}, 'event {eid}', 'a social event', {creator}, {ts}, {zip}, {now_us})"
        ));
        if rows.len() == BATCH {
            flush(
                &mut engine,
                &mut session,
                "events",
                "id, title, description, created_by, event_ts, zip, created_at",
                &mut rows,
            );
        }
    }
    flush(
        &mut engine,
        &mut session,
        "events",
        "id, title, description, created_by, event_ts, zip, created_at",
        &mut rows,
    );

    // event_tags: tags_per_event random tags per event
    let mut etid: i64 = 1;
    for eid in 1..=size.events() as i64 {
        for _ in 0..size.tags_per_event() {
            let tid = rng.int_range(1, size.tags() as i64);
            rows.push(format!("({etid}, {eid}, {tid})"));
            etid += 1;
            if rows.len() == BATCH {
                flush(
                    &mut engine,
                    &mut session,
                    "event_tags",
                    "id, event_id, tag_id",
                    &mut rows,
                );
            }
        }
    }
    flush(
        &mut engine,
        &mut session,
        "event_tags",
        "id, event_id, tag_id",
        &mut rows,
    );

    // attendees: attendances_per_user per user
    let mut aid: i64 = 1;
    for uid in 1..=size.users() as i64 {
        for _ in 0..size.attendances_per_user() {
            let eid = rng.int_range(1, size.events() as i64);
            rows.push(format!("({aid}, {eid}, {uid}, {now_us})"));
            aid += 1;
            if rows.len() == BATCH {
                flush(
                    &mut engine,
                    &mut session,
                    "attendees",
                    "id, event_id, user_id, created_at",
                    &mut rows,
                );
            }
        }
    }
    flush(
        &mut engine,
        &mut session,
        "attendees",
        "id, event_id, user_id, created_at",
        &mut rows,
    );

    // comments
    let mut cid: i64 = 1;
    for eid in 1..=size.events() as i64 {
        for _ in 0..size.comments_per_event() {
            let uid = rng.int_range(1, size.users() as i64);
            let rating = rng.int_range(1, 5);
            rows.push(format!(
                "({cid}, {eid}, {uid}, {rating}, 'nice event', {now_us})"
            ));
            cid += 1;
            if rows.len() == BATCH {
                flush(
                    &mut engine,
                    &mut session,
                    "comments",
                    "id, event_id, user_id, rating, body, created_at",
                    &mut rows,
                );
            }
        }
    }
    flush(
        &mut engine,
        &mut session,
        "comments",
        "id, event_id, user_id, rating, body, created_at",
        &mut rows,
    );

    (engine, DataCounters::after_load(size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdb_sql::{ForkRole, Value};

    fn tiny() -> DataSize {
        DataSize { scale: 10 }
    }

    #[test]
    fn loads_expected_row_counts() {
        let mut rng = Rng::new(1);
        let (engine, counters) = build_template(tiny(), &mut rng);
        let s = tiny();
        assert_eq!(engine.table_rows("users"), Some(s.users() as usize));
        assert_eq!(engine.table_rows("events"), Some(s.events() as usize));
        assert_eq!(engine.table_rows("tags"), Some(s.tags() as usize));
        assert_eq!(
            engine.table_rows("event_tags"),
            Some((s.events() * s.tags_per_event()) as usize)
        );
        assert_eq!(
            engine.table_rows("attendees"),
            Some((s.users() * s.attendances_per_user()) as usize)
        );
        assert_eq!(
            engine.table_rows("comments"),
            Some((s.events() * s.comments_per_event()) as usize)
        );
        assert_eq!(engine.table_rows("heartbeat"), Some(0));
        assert_eq!(counters.next_user, s.users() as i64 + 1);
        assert_eq!(counters.next_event, s.events() as i64 + 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let (e1, _) = build_template(tiny(), &mut Rng::new(9));
        let (e2, _) = build_template(tiny(), &mut Rng::new(9));
        let mut s1 = Session::new();
        let mut s2 = Session::new();
        let mut e1 = e1;
        let mut e2 = e2;
        let q = "SELECT created_by, zip FROM events ORDER BY id LIMIT 20";
        let r1 = e1.execute(&mut s1, q, &[]).unwrap();
        let r2 = e2.execute(&mut s2, q, &[]).unwrap();
        assert_eq!(r1.rows, r2.rows);
    }

    #[test]
    fn fork_shares_data_but_not_future_writes() {
        let (template, _) = build_template(tiny(), &mut Rng::new(2));
        let mut master = template.fork(ForkRole::Master(BinlogFormat::Statement));
        let mut slave = template.fork(ForkRole::Slave);
        assert_eq!(master.table_rows("users"), slave.table_rows("users"));
        assert_eq!(master.binlog().len(), 0, "fork starts a fresh binlog");

        let mut ms = Session::new();
        master
            .execute(
                &mut ms,
                "INSERT INTO users (id, username, created_at) VALUES (900001, 'late', 0)",
                &[],
            )
            .unwrap();
        assert_eq!(master.binlog().len(), 1);
        assert_ne!(master.table_rows("users"), slave.table_rows("users"));
        let _ = &mut slave;
    }

    #[test]
    fn seed_referential_integrity() {
        let (mut engine, _) = build_template(tiny(), &mut Rng::new(3));
        let mut s = Session::new();
        // No event_tags row may reference a missing event or tag.
        let r = engine
            .execute(
                &mut s,
                "SELECT COUNT(*) FROM event_tags et \
                 LEFT JOIN events e ON et.event_id = e.id \
                 LEFT JOIN tags t ON et.tag_id = t.id \
                 WHERE e.id IS NULL OR t.id IS NULL",
                &[],
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
    }
}
