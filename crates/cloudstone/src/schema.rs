//! The events-calendar schema and data-size parameterization.

/// DDL for the Cloudstone social-events schema, plus the replication
/// heartbeat table (the paper keeps it in a separate "Heartbeats database";
//  here it lives alongside, which changes nothing observable).
pub const SCHEMA_SQL: &str = "
CREATE TABLE users (
    id INT PRIMARY KEY,
    username VARCHAR(64) NOT NULL,
    email VARCHAR(128),
    created_at TIMESTAMP NOT NULL
);
CREATE UNIQUE INDEX uq_username ON users (username);

CREATE TABLE events (
    id INT PRIMARY KEY,
    title VARCHAR(128) NOT NULL,
    description TEXT,
    created_by INT NOT NULL,
    event_ts TIMESTAMP NOT NULL,
    zip INT NOT NULL,
    created_at TIMESTAMP NOT NULL
);
CREATE INDEX idx_events_created_by ON events (created_by);
CREATE INDEX idx_events_zip ON events (zip);

CREATE TABLE tags (
    id INT PRIMARY KEY,
    name VARCHAR(32) NOT NULL
);
CREATE UNIQUE INDEX uq_tag_name ON tags (name);

CREATE TABLE event_tags (
    id INT PRIMARY KEY,
    event_id INT NOT NULL,
    tag_id INT NOT NULL
);
CREATE INDEX idx_et_event ON event_tags (event_id);
CREATE INDEX idx_et_tag ON event_tags (tag_id);

CREATE TABLE attendees (
    id INT PRIMARY KEY,
    event_id INT NOT NULL,
    user_id INT NOT NULL,
    created_at TIMESTAMP NOT NULL
);
CREATE INDEX idx_att_event ON attendees (event_id);
CREATE INDEX idx_att_user ON attendees (user_id);

CREATE TABLE comments (
    id INT PRIMARY KEY,
    event_id INT NOT NULL,
    user_id INT NOT NULL,
    rating INT,
    body TEXT,
    created_at TIMESTAMP NOT NULL
);
CREATE INDEX idx_com_event ON comments (event_id);

CREATE TABLE heartbeat (
    id INT PRIMARY KEY,
    ts TIMESTAMP NOT NULL
)
";

/// The paper's "initial data size" knob (300 for the 50/50 experiments, 600
/// for 80/20), expanded into per-table row counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataSize {
    /// The scale parameter as the paper quotes it.
    pub scale: u32,
}

impl DataSize {
    /// The 50/50-experiment size (Figs 2 and 5).
    pub const SMALL: DataSize = DataSize { scale: 300 };
    /// The 80/20-experiment size (Figs 3 and 6).
    pub const LARGE: DataSize = DataSize { scale: 600 };

    /// Registered users.
    pub fn users(self) -> u32 {
        self.scale * 10
    }

    /// Seed events.
    pub fn events(self) -> u32 {
        self.scale * 20
    }

    /// Distinct tags. Sub-linear in scale so that tag-search cost grows
    /// with data size but slower than event count (popular tags accrete
    /// more events on a bigger site).
    pub fn tags(self) -> u32 {
        100 + self.scale / 2
    }

    /// Tags attached per event.
    pub fn tags_per_event(self) -> u32 {
        2
    }

    /// Attendance records per user.
    pub fn attendances_per_user(self) -> u32 {
        3
    }

    /// Comments per event.
    pub fn comments_per_event(self) -> u32 {
        2
    }

    /// Distinct zip codes events are spread over.
    pub fn zips(self) -> u32 {
        100
    }

    /// Total seeded rows across all tables (for load verification).
    pub fn total_rows(self) -> u64 {
        let e = self.events() as u64;
        let u = self.users() as u64;
        u + e
            + self.tags() as u64
            + e * self.tags_per_event() as u64
            + u * self.attendances_per_user() as u64
            + e * self.comments_per_event() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_linearly() {
        assert_eq!(DataSize::SMALL.users() * 2, DataSize::LARGE.users());
        assert_eq!(DataSize::SMALL.events() * 2, DataSize::LARGE.events());
        assert!(DataSize::LARGE.total_rows() > DataSize::SMALL.total_rows());
    }

    #[test]
    fn schema_has_all_tables() {
        for t in [
            "users",
            "events",
            "tags",
            "event_tags",
            "attendees",
            "comments",
            "heartbeat",
        ] {
            assert!(
                SCHEMA_SQL.contains(&format!("CREATE TABLE {t}")),
                "missing {t}"
            );
        }
    }

    #[test]
    fn paper_scales() {
        assert_eq!(DataSize::SMALL.scale, 300);
        assert_eq!(DataSize::LARGE.scale, 600);
    }
}
