//! # amdb-cloudstone — the paper's modified Cloudstone benchmark
//!
//! Cloudstone models a Web 2.0 *social events calendar*: users browse,
//! search, and create events, join them, tag them and comment on them. The
//! paper's key modification (§III-A) removed the web/application tier — "we
//! re-implemented the business logic of the application in a way that a
//! user's operation can be processed directly at the database tier without
//! any intermediate interpretation at the web server tier" — so the load
//! generator speaks SQL straight at the replicated database. This crate
//! implements that modified benchmark:
//!
//! * [`schema`] — the events-calendar schema (users, events, tags,
//!   event_tags, attendees, comments) with the indexes the operations use;
//! * [`load`] — the deterministic pre-loader, parameterized by the paper's
//!   "initial data size" (300 for the 50/50 runs, 600 for 80/20);
//! * [`ops`] — the operation mix: read operations (event detail, tag search,
//!   upcoming-by-zip, person detail) and write operations (add event, join
//!   event, add comment, add person), each a short SQL transaction; the
//!   read/write ratio is a parameter (50/50 and 80/20 in the paper);
//! * [`web10`] — a TPC-W-flavoured read-mostly contrast workload (the
//!   Web 1.0 class of application §III-A distinguishes Cloudstone from);
//! * [`workload`] — closed-loop emulated users with exponential think times
//!   and the paper's run phases: "Every run lasts 35 minutes, including
//!   10-minute ramp-up, 20-minute steady stage and 5-minute ramp down"
//!   (§III-B), preceded here by an idle stage that provides the no-load
//!   baseline used for relative replication delay (§IV-B.1).

pub mod load;
pub mod ops;
pub mod schema;
pub mod sessions;
pub mod shardkey;
pub mod web10;
pub mod workload;

pub use load::{build_template, DataCounters};
pub use ops::{MixConfig, OpClass, OpGenerator, Operation};
pub use schema::{DataSize, SCHEMA_SQL};
pub use sessions::UserSessions;
pub use shardkey::{shard_key_of, ShardKey};
pub use web10::{load_web10, Web10Generator, WEB10_SCHEMA};
pub use workload::{Phases, WorkloadConfig};
