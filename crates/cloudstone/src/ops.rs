//! The operation mix: the Web 2.0 interactions Cloudstone models, expressed
//! directly as SQL (the paper removed the web tier, §III-A).

use crate::load::DataCounters;
use amdb_sim::Rng;
use amdb_sql::Value;

/// Read or write, for proxy routing and ratio accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    Read,
    Write,
}

/// One user operation: a named, classed, short sequence of SQL statements
/// executed on one connection. Write operations are wrapped in a transaction
/// by the driver (one commit per operation).
#[derive(Debug, Clone)]
pub struct Operation {
    pub name: &'static str,
    pub class: OpClass,
    pub statements: Vec<(String, Vec<Value>)>,
}

/// Read/write mix configuration. The paper studies 50/50 and 80/20.
#[derive(Debug, Clone, Copy)]
pub struct MixConfig {
    /// Fraction of operations that are reads (0.5 or 0.8 in the paper).
    pub read_fraction: f64,
}

impl MixConfig {
    /// The paper's 50/50 configuration.
    pub const RW_50_50: MixConfig = MixConfig { read_fraction: 0.5 };
    /// The paper's 80/20 configuration.
    pub const RW_80_20: MixConfig = MixConfig { read_fraction: 0.8 };

    /// Display label ("50/50").
    pub fn label(&self) -> String {
        format!(
            "{:.0}/{:.0}",
            self.read_fraction * 100.0,
            (1.0 - self.read_fraction) * 100.0
        )
    }
}

/// Generates operations against the current (growing) dataset. One generator
/// is shared by all emulated users of a run so id counters stay consistent.
#[derive(Debug, Clone)]
pub struct OpGenerator {
    counters: DataCounters,
    rng: Rng,
}

impl OpGenerator {
    /// Create a generator over post-load counters with its own RNG stream.
    pub fn new(counters: DataCounters, rng: Rng) -> Self {
        Self { counters, rng }
    }

    /// Current entity counters (tests / monitoring).
    pub fn counters(&self) -> &DataCounters {
        &self.counters
    }

    /// Draw one operation according to the mix.
    pub fn generate(&mut self, mix: MixConfig) -> Operation {
        if self.rng.chance(mix.read_fraction) {
            self.generate_read()
        } else {
            self.generate_write()
        }
    }

    /// Draw a read operation (browse/search interactions).
    pub fn generate_read(&mut self) -> Operation {
        // Weights sum to 1; tuned so the mean rows-examined matches the
        // calibration in EXPERIMENTS.md.
        match self.rng.pick_weighted(&[0.30, 0.30, 0.25, 0.15]) {
            0 => self.op_upcoming_by_zip(),
            1 => self.op_tag_search(),
            2 => self.op_event_detail(),
            _ => self.op_person_detail(),
        }
    }

    /// Draw a write operation (user-contribution interactions).
    pub fn generate_write(&mut self) -> Operation {
        match self.rng.pick_weighted(&[0.30, 0.30, 0.30, 0.10]) {
            0 => self.op_add_event(),
            1 => self.op_join_event(),
            2 => self.op_add_comment(),
            _ => self.op_add_person(),
        }
    }

    fn rand_user(&mut self) -> i64 {
        self.rng.int_range(1, self.counters.next_user - 1)
    }

    fn rand_event(&mut self) -> i64 {
        self.rng.int_range(1, self.counters.next_event - 1)
    }

    fn rand_tag(&mut self) -> i64 {
        self.rng.int_range(1, self.counters.next_tag - 1)
    }

    fn rand_zip(&mut self) -> i64 {
        self.rng.int_range(0, self.counters.zips as i64 - 1)
    }

    // ---------------- reads ----------------

    /// Home-page style browse: upcoming events in the visitor's zip code.
    fn op_upcoming_by_zip(&mut self) -> Operation {
        let zip = self.rand_zip();
        Operation {
            name: "upcoming_by_zip",
            class: OpClass::Read,
            statements: vec![(
                "SELECT id, title, event_ts FROM events WHERE zip = ? \
                 ORDER BY event_ts DESC LIMIT 10"
                    .into(),
                vec![Value::Int(zip)],
            )],
        }
    }

    /// Tag search: all events carrying a tag, with creator names.
    fn op_tag_search(&mut self) -> Operation {
        let tag = self.rand_tag();
        Operation {
            name: "tag_search",
            class: OpClass::Read,
            statements: vec![(
                "SELECT e.id, e.title, u.username FROM event_tags et \
                 INNER JOIN events e ON et.event_id = e.id \
                 INNER JOIN users u ON e.created_by = u.id \
                 WHERE et.tag_id = ? LIMIT 20"
                    .into(),
                vec![Value::Int(tag)],
            )],
        }
    }

    /// Event detail page: the event, its comments, attendee count and tags.
    fn op_event_detail(&mut self) -> Operation {
        let eid = self.rand_event();
        Operation {
            name: "event_detail",
            class: OpClass::Read,
            statements: vec![
                (
                    "SELECT id, title, description, created_by, event_ts FROM events \
                     WHERE id = ?"
                        .into(),
                    vec![Value::Int(eid)],
                ),
                (
                    "SELECT c.body, c.rating, u.username FROM comments c \
                     INNER JOIN users u ON c.user_id = u.id \
                     WHERE c.event_id = ? ORDER BY c.id DESC LIMIT 10"
                        .into(),
                    vec![Value::Int(eid)],
                ),
                (
                    "SELECT COUNT(*) FROM attendees WHERE event_id = ?".into(),
                    vec![Value::Int(eid)],
                ),
                (
                    "SELECT t.name FROM event_tags et INNER JOIN tags t ON et.tag_id = t.id \
                     WHERE et.event_id = ?"
                        .into(),
                    vec![Value::Int(eid)],
                ),
            ],
        }
    }

    /// Person detail: profile, created events, attendance history.
    fn op_person_detail(&mut self) -> Operation {
        let uid = self.rand_user();
        Operation {
            name: "person_detail",
            class: OpClass::Read,
            statements: vec![
                (
                    "SELECT id, username, email FROM users WHERE id = ?".into(),
                    vec![Value::Int(uid)],
                ),
                (
                    "SELECT id, title FROM events WHERE created_by = ? LIMIT 10".into(),
                    vec![Value::Int(uid)],
                ),
                (
                    "SELECT e.title FROM attendees a INNER JOIN events e ON a.event_id = e.id \
                     WHERE a.user_id = ? LIMIT 10"
                        .into(),
                    vec![Value::Int(uid)],
                ),
            ],
        }
    }

    // ---------------- writes ----------------

    /// Create an event with two tags.
    fn op_add_event(&mut self) -> Operation {
        let eid = self.counters.next_event;
        self.counters.next_event += 1;
        let creator = self.rand_user();
        let zip = self.rand_zip();
        let ts = self.rng.int_range(0, 30 * 86_400) * 1_000_000;
        let mut statements = vec![(
            "INSERT INTO events (id, title, description, created_by, event_ts, zip, created_at) \
             VALUES (?, ?, 'user created event', ?, ?, ?, NOW_MICROS())"
                .into(),
            vec![
                Value::Int(eid),
                Value::Text(format!("event {eid}")),
                Value::Int(creator),
                Value::Int(ts),
                Value::Int(zip),
            ],
        )];
        for _ in 0..2 {
            let etid = self.counters.next_event_tag;
            self.counters.next_event_tag += 1;
            let tag = self.rand_tag();
            statements.push((
                "INSERT INTO event_tags (id, event_id, tag_id) VALUES (?, ?, ?)".into(),
                vec![Value::Int(etid), Value::Int(eid), Value::Int(tag)],
            ));
        }
        Operation {
            name: "add_event",
            class: OpClass::Write,
            statements,
        }
    }

    /// Join (attend) an event: validate it exists, then insert attendance.
    fn op_join_event(&mut self) -> Operation {
        let aid = self.counters.next_attendee;
        self.counters.next_attendee += 1;
        let eid = self.rand_event();
        let uid = self.rand_user();
        Operation {
            name: "join_event",
            class: OpClass::Write,
            statements: vec![
                (
                    "SELECT id FROM events WHERE id = ?".into(),
                    vec![Value::Int(eid)],
                ),
                (
                    "INSERT INTO attendees (id, event_id, user_id, created_at) \
                     VALUES (?, ?, ?, NOW_MICROS())"
                        .into(),
                    vec![Value::Int(aid), Value::Int(eid), Value::Int(uid)],
                ),
            ],
        }
    }

    /// Comment on / rate an event.
    fn op_add_comment(&mut self) -> Operation {
        let cid = self.counters.next_comment;
        self.counters.next_comment += 1;
        let eid = self.rand_event();
        let uid = self.rand_user();
        let rating = self.rng.int_range(1, 5);
        Operation {
            name: "add_comment",
            class: OpClass::Write,
            statements: vec![(
                "INSERT INTO comments (id, event_id, user_id, rating, body, created_at) \
                 VALUES (?, ?, ?, ?, 'great event!', NOW_MICROS())"
                    .into(),
                vec![
                    Value::Int(cid),
                    Value::Int(eid),
                    Value::Int(uid),
                    Value::Int(rating),
                ],
            )],
        }
    }

    /// Register a new user.
    fn op_add_person(&mut self) -> Operation {
        let uid = self.counters.next_user;
        self.counters.next_user += 1;
        Operation {
            name: "add_person",
            class: OpClass::Write,
            statements: vec![(
                "INSERT INTO users (id, username, email, created_at) \
                 VALUES (?, ?, ?, NOW_MICROS())"
                    .into(),
                vec![
                    Value::Int(uid),
                    Value::Text(format!("user{uid}")),
                    Value::Text(format!("user{uid}@example.com")),
                ],
            )],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::build_template;
    use crate::schema::DataSize;
    use amdb_sql::{ForkRole, Session};

    fn generator() -> (OpGenerator, amdb_sql::Engine) {
        let mut rng = Rng::new(11);
        let (template, counters) = build_template(DataSize { scale: 10 }, &mut rng);
        let engine = template.fork(ForkRole::Master(amdb_sql::BinlogFormat::Statement));
        (OpGenerator::new(counters, rng.derive("ops")), engine)
    }

    #[test]
    fn mix_ratio_is_respected() {
        let (mut g, _) = generator();
        let mut reads = 0;
        let n = 10_000;
        for _ in 0..n {
            if g.generate(MixConfig::RW_80_20).class == OpClass::Read {
                reads += 1;
            }
        }
        let frac = reads as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn every_generated_op_executes() {
        let (mut g, mut engine) = generator();
        let mut session = Session::new();
        for i in 0..500 {
            let op = g.generate(MixConfig::RW_50_50);
            for (sql, params) in &op.statements {
                engine
                    .execute(&mut session, sql, params)
                    .unwrap_or_else(|e| panic!("op {i} ({}) failed: {e}\n{sql}", op.name));
            }
        }
    }

    #[test]
    fn writes_grow_counters_and_tables() {
        let (mut g, mut engine) = generator();
        let mut session = Session::new();
        let before_events = engine.table_rows("events").unwrap();
        let mut added_events = 0;
        for _ in 0..200 {
            let op = g.generate_write();
            if op.name == "add_event" {
                added_events += 1;
            }
            for (sql, params) in &op.statements {
                engine.execute(&mut session, sql, params).unwrap();
            }
        }
        assert!(added_events > 0);
        assert_eq!(
            engine.table_rows("events").unwrap(),
            before_events + added_events
        );
    }

    #[test]
    fn reads_do_not_mutate() {
        let (mut g, mut engine) = generator();
        let mut session = Session::new();
        let snapshot: Vec<Option<usize>> = ["users", "events", "comments", "attendees"]
            .iter()
            .map(|t| engine.table_rows(t))
            .collect();
        for _ in 0..100 {
            let op = g.generate_read();
            assert_eq!(op.class, OpClass::Read);
            for (sql, params) in &op.statements {
                engine.execute(&mut session, sql, params).unwrap();
            }
        }
        let after: Vec<Option<usize>> = ["users", "events", "comments", "attendees"]
            .iter()
            .map(|t| engine.table_rows(t))
            .collect();
        assert_eq!(snapshot, after);
    }

    #[test]
    fn generated_ids_never_collide() {
        let (mut g, mut engine) = generator();
        let mut session = Session::new();
        // Hammer writes; any id collision would surface as DuplicateKey.
        for _ in 0..500 {
            let op = g.generate_write();
            for (sql, params) in &op.statements {
                engine.execute(&mut session, sql, params).unwrap();
            }
        }
    }

    #[test]
    fn mix_labels() {
        assert_eq!(MixConfig::RW_50_50.label(), "50/50");
        assert_eq!(MixConfig::RW_80_20.label(), "80/20");
    }
}
