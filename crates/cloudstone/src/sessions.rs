//! Per-user session tokens for the emulated Cloudstone population.
//!
//! The paper's load generator speaks SQL straight at the database tier, so
//! the "application" that manages replication is also the natural place to
//! hold client-centric consistency state: one [`SessionToken`] per emulated
//! user, carried across that user's closed-loop request chain. The workload
//! driver records every committed write's sequence and every read's serving
//! watermark into the token; the routing layer then uses it to enforce
//! read-your-writes and monotonic reads.

use amdb_consistency::SessionToken;

/// Session tokens for a fixed population of emulated users.
#[derive(Debug, Clone)]
pub struct UserSessions {
    tokens: Vec<SessionToken>,
}

impl UserSessions {
    /// Fresh tokens for `n_users` users.
    pub fn new(n_users: usize) -> Self {
        Self {
            tokens: vec![SessionToken::new(); n_users],
        }
    }

    /// Number of users tracked.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no users are tracked.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The token of user `u`.
    pub fn token(&self, u: usize) -> &SessionToken {
        &self.tokens[u]
    }

    /// Mutable token of user `u`.
    pub fn token_mut(&mut self, u: usize) -> &mut SessionToken {
        &mut self.tokens[u]
    }

    /// Void every session's history (failover resets the sequence space).
    pub fn reset_all(&mut self) {
        for t in &mut self.tokens {
            t.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_independent() {
        let mut s = UserSessions::new(3);
        s.token_mut(1).observe_write(7);
        assert_eq!(s.token(0).last_write_seq(), 0);
        assert_eq!(s.token(1).last_write_seq(), 7);
        assert_eq!(s.token(2).last_write_seq(), 0);
    }

    #[test]
    fn reset_all_voids_every_session() {
        let mut s = UserSessions::new(2);
        s.token_mut(0).observe_write(3);
        s.token_mut(1).observe_read(9);
        s.reset_all();
        for u in 0..2 {
            assert_eq!(*s.token(u), SessionToken::new());
        }
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
