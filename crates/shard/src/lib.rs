//! # amdb-shard — deterministic shard map + scatter-gather merge
//!
//! The paper's fig2 curve flattens because a single master absorbs every
//! write. This crate holds the *pure* machinery for going past that ceiling
//! by partitioning the Cloudstone schema across N independent replication
//! trees (ROADMAP item 2):
//!
//! * [`ShardMap`] — consistent-hash placement (Lamping–Veach jump hash, so
//!   growing the shard count remaps only ~1/n of the keyspace) over
//!   [`ShardKey`]s, with an explicit first-match-wins [`RangeOverride`]
//!   table for pinning contiguous id ranges of one entity keyspace to a
//!   chosen shard (e.g. colocate a hot zip-code range);
//! * [`Gather`] — the scatter-gather merge buffer: one slot per shard,
//!   per-leg [`ConsistencyPolicy`] filtering (a `BoundedStaleness` bound
//!   drops legs that served too stale) and a deterministic ordered merge of
//!   the surviving partial results.
//!
//! Everything here is deterministic and side-effect free; the event-driven
//! front that drives these types lives in `amdb-core::sharded`.

pub mod gather;
pub mod map;

pub use amdb_cloudstone::{shard_key_of, ShardKey};
pub use amdb_consistency::ConsistencyPolicy;
pub use gather::Gather;
pub use map::{jump_hash, key_hash, RangeOverride, ShardMap};
