//! The deterministic shard map: jump consistent hash + range overrides.

use amdb_cloudstone::ShardKey;

/// Lamping–Veach jump consistent hash: maps `key` to a bucket in
/// `[0, buckets)` such that growing `buckets` by one moves only
/// ~`1/(buckets+1)` of the keyspace — and always *onto the new bucket*,
/// never between old ones. No state, no ring, no virtual nodes.
pub fn jump_hash(mut key: u64, buckets: u32) -> u32 {
    assert!(buckets > 0, "jump_hash over zero buckets");
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(buckets) {
        b = j;
        key = key.wrapping_mul(2862933555777941757).wrapping_add(1);
        // Top 33 bits of the LCG state as a uniform draw in [0, 2^31).
        let r = ((key >> 33) + 1) as f64;
        j = (((b + 1) as f64) * ((1u64 << 31) as f64 / r)) as i64;
    }
    b as u32
}

/// SplitMix64 finalizer: full-avalanche 64-bit mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a shard key into the jump-hash keyspace. The entity keyspace tag is
/// mixed in before finalizing, so `User(7)` and `Event(7)` are uncorrelated.
pub fn key_hash(key: ShardKey) -> u64 {
    mix64(
        key.space_tag()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.id() as u64),
    )
}

/// Pin a contiguous id range `[lo, hi]` of one entity keyspace to a shard,
/// bypassing the hash. First matching override wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeOverride {
    /// Keyspace tag ([`ShardKey::space_tag`]) the override applies to.
    pub space: u64,
    /// Inclusive lower id bound.
    pub lo: i64,
    /// Inclusive upper id bound.
    pub hi: i64,
    /// Target shard (must be `< shards`).
    pub shard: u32,
}

impl RangeOverride {
    fn matches(&self, key: ShardKey) -> bool {
        self.space == key.space_tag() && (self.lo..=self.hi).contains(&key.id())
    }
}

/// The deterministic shard map: every [`ShardKey`] maps to exactly one shard
/// in `[0, shards)`, via the override table first and the consistent hash
/// otherwise. Pure and `Clone`-cheap — the front and any test can evaluate
/// it independently and agree.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: u32,
    overrides: Vec<RangeOverride>,
}

impl ShardMap {
    /// A hash-only map over `shards` shards.
    pub fn new(shards: u32) -> Self {
        assert!(shards > 0, "a shard map needs at least one shard");
        Self {
            shards,
            overrides: Vec::new(),
        }
    }

    /// A map with an explicit override table (first match wins).
    pub fn with_overrides(shards: u32, overrides: Vec<RangeOverride>) -> Self {
        assert!(shards > 0, "a shard map needs at least one shard");
        for o in &overrides {
            assert!(
                o.shard < shards,
                "override {o:?} targets shard {} of {shards}",
                o.shard
            );
            assert!(o.lo <= o.hi, "override {o:?} has an empty range");
        }
        Self { shards, overrides }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The owning shard of `key`. Total: every key maps to exactly one
    /// shard, and the mapping changes only when the shard count (or the
    /// override table) changes.
    pub fn shard_of(&self, key: ShardKey) -> u32 {
        for o in &self.overrides {
            if o.matches(key) {
                return o.shard;
            }
        }
        jump_hash(key_hash(key), self.shards)
    }

    /// Shard of an optional key: keyless operations (web10) pin to shard 0.
    pub fn shard_of_opt(&self, key: Option<ShardKey>) -> u32 {
        key.map_or(0, |k| self.shard_of(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_maps_everything_to_zero() {
        let m = ShardMap::new(1);
        for id in -5..2_000 {
            assert_eq!(m.shard_of(ShardKey::User(id)), 0);
            assert_eq!(m.shard_of(ShardKey::Event(id)), 0);
        }
        assert_eq!(m.shard_of_opt(None), 0);
    }

    #[test]
    fn keyspaces_are_uncorrelated() {
        let m = ShardMap::new(8);
        let mut differs = 0;
        for id in 0..512 {
            if m.shard_of(ShardKey::User(id)) != m.shard_of(ShardKey::Event(id)) {
                differs += 1;
            }
        }
        // 8 shards: ~7/8 of equal ids should land on different shards.
        assert!(differs > 300, "only {differs}/512 ids differ across spaces");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let shards = 8u32;
        let m = ShardMap::new(shards);
        let n = 80_000;
        let mut counts = vec![0u32; shards as usize];
        for id in 0..n {
            counts[m.shard_of(ShardKey::Event(id)) as usize] += 1;
        }
        let expect = n as f64 / shards as f64;
        for (s, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "shard {s} holds {c} of {n} (dev {dev:.3})");
        }
    }

    #[test]
    fn override_wins_over_hash_and_first_match_rules() {
        let m = ShardMap::with_overrides(
            4,
            vec![
                RangeOverride {
                    space: ShardKey::Zip(0).space_tag(),
                    lo: 100,
                    hi: 199,
                    shard: 3,
                },
                RangeOverride {
                    space: ShardKey::Zip(0).space_tag(),
                    lo: 150,
                    hi: 400,
                    shard: 1,
                },
            ],
        );
        assert_eq!(m.shard_of(ShardKey::Zip(150)), 3, "first match wins");
        assert_eq!(m.shard_of(ShardKey::Zip(250)), 1);
        // Outside every range — and in other keyspaces — the hash decides.
        assert_eq!(
            m.shard_of(ShardKey::Zip(99)),
            jump_hash(key_hash(ShardKey::Zip(99)), 4)
        );
        assert_eq!(
            m.shard_of(ShardKey::User(150)),
            jump_hash(key_hash(ShardKey::User(150)), 4)
        );
    }

    #[test]
    #[should_panic(expected = "targets shard")]
    fn override_to_missing_shard_is_rejected() {
        let _ = ShardMap::with_overrides(
            2,
            vec![RangeOverride {
                space: 1,
                lo: 0,
                hi: 10,
                shard: 5,
            }],
        );
    }
}
