//! The scatter-gather merge buffer: per-leg consistency filtering and a
//! deterministic ordered merge of partial results.

use amdb_consistency::ConsistencyPolicy;

/// One shard's partial result for a scattered read.
#[derive(Debug, Clone)]
struct Leg<T> {
    staleness_ms: f64,
    rows: Vec<T>,
}

/// Collects the partial results of one scattered read, one leg per shard.
///
/// Legs arrive in any order (trees complete independently); each is judged
/// against the gather's [`ConsistencyPolicy`] — under
/// `BoundedStaleness { max_ms }`, a leg whose serving replica was more than
/// `max_ms` stale is *filtered*: its rows are dropped from the merge and it
/// counts toward [`Gather::filtered_legs`]. Filtering never blocks
/// completion — a scattered read finishes when every leg has reported,
/// fresh or not (the front has no per-leg retry protocol; see DESIGN.md
/// §14).
///
/// [`Gather::merge_by`] returns the surviving rows in deterministic order:
/// sorted by the caller's key, ties broken by (shard, arrival position
/// within the leg) — a stable k-way merge independent of leg arrival order.
#[derive(Debug)]
pub struct Gather<T> {
    policy: ConsistencyPolicy,
    legs: Vec<Option<Leg<T>>>,
    arrived: usize,
    filtered: u32,
}

impl<T> Gather<T> {
    /// A gather expecting one leg per shard in `[0, fanout)`.
    pub fn new(fanout: usize, policy: ConsistencyPolicy) -> Self {
        assert!(fanout > 0, "a gather needs at least one leg");
        Self {
            policy,
            legs: (0..fanout).map(|_| None).collect(),
            arrived: 0,
            filtered: 0,
        }
    }

    /// Record shard `shard`'s partial result, served at `staleness_ms`
    /// behind the master. Returns `true` when this was the last outstanding
    /// leg. Panics on a duplicate or out-of-range leg — each shard reports
    /// exactly once.
    pub fn offer(&mut self, shard: usize, staleness_ms: f64, rows: Vec<T>) -> bool {
        let slot = &mut self.legs[shard];
        assert!(slot.is_none(), "shard {shard} reported twice");
        let keep = match self.policy {
            ConsistencyPolicy::BoundedStaleness { max_ms } => staleness_ms <= max_ms,
            _ => true,
        };
        *slot = Some(Leg {
            staleness_ms,
            rows: if keep { rows } else { Vec::new() },
        });
        if !keep {
            self.filtered += 1;
        }
        self.arrived += 1;
        self.arrived == self.legs.len()
    }

    /// Whether every leg has reported.
    pub fn is_complete(&self) -> bool {
        self.arrived == self.legs.len()
    }

    /// Legs dropped by the consistency filter so far.
    pub fn filtered_legs(&self) -> u32 {
        self.filtered
    }

    /// The worst (largest) staleness among arrived legs, filtered or not.
    pub fn max_staleness_ms(&self) -> f64 {
        self.legs
            .iter()
            .flatten()
            .map(|l| l.staleness_ms)
            .fold(0.0, f64::max)
    }

    /// Consume the gather and return the surviving rows ordered by `key`,
    /// ties broken by (shard index, position within the leg). Requires
    /// completion — merging a partial gather is a protocol bug.
    pub fn merge_by<K: Ord>(self, key: impl Fn(&T) -> K) -> Vec<T> {
        assert!(self.is_complete(), "merge before all legs arrived");
        let mut tagged: Vec<(K, usize, usize, T)> = Vec::new();
        for (shard, leg) in self.legs.into_iter().enumerate() {
            let leg = leg.expect("complete gather has every leg");
            for (pos, row) in leg.rows.into_iter().enumerate() {
                tagged.push((key(&row), shard, pos, row));
            }
        }
        tagged.sort_by(|a, b| (&a.0, a.1, a.2).cmp(&(&b.0, b.1, b.2)));
        tagged.into_iter().map(|(_, _, _, row)| row).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_key_with_shard_tiebreak() {
        let mut g = Gather::new(3, ConsistencyPolicy::Eventual);
        // Legs arrive out of shard order; equal keys must still merge in
        // shard order, preserving within-leg positions.
        assert!(!g.offer(2, 0.0, vec![(5, "c0"), (9, "c1")]));
        assert!(!g.offer(0, 0.0, vec![(5, "a0"), (7, "a1")]));
        assert!(g.offer(1, 0.0, vec![(5, "b0")]));
        let merged = g.merge_by(|r| r.0);
        let tags: Vec<&str> = merged.iter().map(|r| r.1).collect();
        assert_eq!(tags, ["a0", "b0", "c0", "a1", "c1"]);
    }

    #[test]
    fn bounded_staleness_filters_stale_legs() {
        let mut g = Gather::new(2, ConsistencyPolicy::BoundedStaleness { max_ms: 100.0 });
        g.offer(0, 50.0, vec![1, 2]);
        assert!(g.offer(1, 250.0, vec![3, 4]));
        assert_eq!(g.filtered_legs(), 1);
        assert_eq!(g.max_staleness_ms(), 250.0);
        assert_eq!(g.merge_by(|&v| v), vec![1, 2]);
    }

    #[test]
    fn eventual_keeps_every_leg() {
        let mut g = Gather::new(2, ConsistencyPolicy::Eventual);
        g.offer(1, 1e6, vec![9]);
        g.offer(0, 0.0, vec![1]);
        assert_eq!(g.filtered_legs(), 0);
        assert_eq!(g.merge_by(|&v| v), vec![1, 9]);
    }

    #[test]
    #[should_panic(expected = "reported twice")]
    fn duplicate_leg_panics() {
        let mut g: Gather<u8> = Gather::new(2, ConsistencyPolicy::Eventual);
        g.offer(0, 0.0, vec![]);
        g.offer(0, 0.0, vec![]);
    }
}
