//! The scatter-gather merge buffer: per-leg consistency filtering and a
//! deterministic ordered merge of partial results.

use amdb_consistency::ConsistencyPolicy;

/// One shard's partial result for a scattered read.
#[derive(Debug, Clone)]
struct Leg<T> {
    staleness_ms: f64,
    rows: Vec<T>,
    /// Simulated arrival time (µs) recorded by [`Gather::offer_at`];
    /// 0 for untimed offers.
    arrival_us: u64,
}

/// Collects the partial results of one scattered read, one leg per shard.
///
/// Legs arrive in any order (trees complete independently); each is judged
/// against the gather's [`ConsistencyPolicy`] — under
/// `BoundedStaleness { max_ms }`, a leg whose serving replica was more than
/// `max_ms` stale is *filtered*: its rows are dropped from the merge and it
/// counts toward [`Gather::filtered_legs`]. Filtering never blocks
/// completion — a scattered read finishes when every leg has reported,
/// fresh or not (the front has no per-leg retry protocol; see DESIGN.md
/// §14).
///
/// [`Gather::merge_by`] returns the surviving rows in deterministic order:
/// sorted by the caller's key, ties broken by (shard, arrival position
/// within the leg) — a stable k-way merge independent of leg arrival order.
#[derive(Debug)]
pub struct Gather<T> {
    policy: ConsistencyPolicy,
    legs: Vec<Option<Leg<T>>>,
    arrived: usize,
    filtered: u32,
}

impl<T> Gather<T> {
    /// A gather expecting one leg per shard in `[0, fanout)`.
    pub fn new(fanout: usize, policy: ConsistencyPolicy) -> Self {
        assert!(fanout > 0, "a gather needs at least one leg");
        Self {
            policy,
            legs: (0..fanout).map(|_| None).collect(),
            arrived: 0,
            filtered: 0,
        }
    }

    /// Record shard `shard`'s partial result, served at `staleness_ms`
    /// behind the master. Returns `true` when this was the last outstanding
    /// leg. Panics on a duplicate or out-of-range leg — each shard reports
    /// exactly once.
    pub fn offer(&mut self, shard: usize, staleness_ms: f64, rows: Vec<T>) -> bool {
        self.offer_at(shard, staleness_ms, rows, 0)
    }

    /// [`Self::offer`] with the leg's simulated arrival time (µs), so the
    /// completed gather can name its slowest and fastest legs — the
    /// scatter-gather tax decomposition.
    pub fn offer_at(&mut self, shard: usize, staleness_ms: f64, rows: Vec<T>, at_us: u64) -> bool {
        let slot = &mut self.legs[shard];
        assert!(slot.is_none(), "shard {shard} reported twice");
        let keep = match self.policy {
            ConsistencyPolicy::BoundedStaleness { max_ms } => staleness_ms <= max_ms,
            _ => true,
        };
        *slot = Some(Leg {
            staleness_ms,
            rows: if keep { rows } else { Vec::new() },
            arrival_us: at_us,
        });
        if !keep {
            self.filtered += 1;
        }
        self.arrived += 1;
        self.arrived == self.legs.len()
    }

    /// Whether every leg has reported.
    pub fn is_complete(&self) -> bool {
        self.arrived == self.legs.len()
    }

    /// Legs dropped by the consistency filter so far.
    pub fn filtered_legs(&self) -> u32 {
        self.filtered
    }

    /// Fan-out of this gather (legs expected).
    pub fn fanout(&self) -> usize {
        self.legs.len()
    }

    /// True when the gather is complete and the consistency filter dropped
    /// *every* leg — the read has no rows to merge, and completing it would
    /// silently violate the caller's staleness bound with an empty result.
    /// The front must treat this as a routing miss and deterministically
    /// fall back to a master-served read (see `ShardedWorld::op_done`);
    /// merging is still allowed (it yields the empty set) so existing
    /// callers without a fallback path keep their behaviour.
    pub fn all_legs_filtered(&self) -> bool {
        self.is_complete() && self.filtered as usize == self.legs.len()
    }

    /// The worst (largest) staleness among arrived legs, filtered or not.
    pub fn max_staleness_ms(&self) -> f64 {
        self.legs
            .iter()
            .flatten()
            .map(|l| l.staleness_ms)
            .fold(0.0, f64::max)
    }

    /// `(shard, arrival µs)` of the last-arriving leg so far — the leg the
    /// whole scattered read waited on. Ties break to the lowest shard
    /// index. `None` before any leg arrives (or when offers were untimed
    /// it degenerates to shard order).
    pub fn slowest_leg(&self) -> Option<(usize, u64)> {
        self.legs
            .iter()
            .enumerate()
            .filter_map(|(s, l)| l.as_ref().map(|l| (s, l.arrival_us)))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// `(shard, arrival µs)` of the first-arriving leg so far; ties break
    /// to the lowest shard index.
    pub fn fastest_leg(&self) -> Option<(usize, u64)> {
        self.legs
            .iter()
            .enumerate()
            .filter_map(|(s, l)| l.as_ref().map(|l| (s, l.arrival_us)))
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    /// Slowest-minus-fastest arrival (µs) — what scattering cost over a
    /// single-shard read that would have finished with the fastest leg.
    pub fn leg_spread_us(&self) -> u64 {
        match (self.slowest_leg(), self.fastest_leg()) {
            (Some((_, hi)), Some((_, lo))) => hi - lo,
            _ => 0,
        }
    }

    /// Consume the gather and return the surviving rows ordered by `key`,
    /// ties broken by (shard index, position within the leg). Requires
    /// completion — merging a partial gather is a protocol bug.
    pub fn merge_by<K: Ord>(self, key: impl Fn(&T) -> K) -> Vec<T> {
        assert!(self.is_complete(), "merge before all legs arrived");
        let mut tagged: Vec<(K, usize, usize, T)> = Vec::new();
        for (shard, leg) in self.legs.into_iter().enumerate() {
            let leg = leg.expect("complete gather has every leg");
            for (pos, row) in leg.rows.into_iter().enumerate() {
                tagged.push((key(&row), shard, pos, row));
            }
        }
        tagged.sort_by(|a, b| (&a.0, a.1, a.2).cmp(&(&b.0, b.1, b.2)));
        tagged.into_iter().map(|(_, _, _, row)| row).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_key_with_shard_tiebreak() {
        let mut g = Gather::new(3, ConsistencyPolicy::Eventual);
        // Legs arrive out of shard order; equal keys must still merge in
        // shard order, preserving within-leg positions.
        assert!(!g.offer(2, 0.0, vec![(5, "c0"), (9, "c1")]));
        assert!(!g.offer(0, 0.0, vec![(5, "a0"), (7, "a1")]));
        assert!(g.offer(1, 0.0, vec![(5, "b0")]));
        let merged = g.merge_by(|r| r.0);
        let tags: Vec<&str> = merged.iter().map(|r| r.1).collect();
        assert_eq!(tags, ["a0", "b0", "c0", "a1", "c1"]);
    }

    #[test]
    fn bounded_staleness_filters_stale_legs() {
        let mut g = Gather::new(2, ConsistencyPolicy::BoundedStaleness { max_ms: 100.0 });
        g.offer(0, 50.0, vec![1, 2]);
        assert!(g.offer(1, 250.0, vec![3, 4]));
        assert_eq!(g.filtered_legs(), 1);
        assert_eq!(g.max_staleness_ms(), 250.0);
        assert_eq!(g.merge_by(|&v| v), vec![1, 2]);
    }

    #[test]
    fn eventual_keeps_every_leg() {
        let mut g = Gather::new(2, ConsistencyPolicy::Eventual);
        g.offer(1, 1e6, vec![9]);
        g.offer(0, 0.0, vec![1]);
        assert_eq!(g.filtered_legs(), 0);
        assert_eq!(g.merge_by(|&v| v), vec![1, 9]);
    }

    #[test]
    fn timed_offers_name_slowest_and_fastest_legs() {
        let mut g = Gather::new(3, ConsistencyPolicy::Eventual);
        assert_eq!(g.slowest_leg(), None);
        g.offer_at(1, 0.0, vec![1], 500);
        g.offer_at(0, 0.0, vec![2], 2_000);
        assert!(g.offer_at(2, 0.0, vec![3], 500));
        assert_eq!(g.slowest_leg(), Some((0, 2_000)));
        assert_eq!(g.fastest_leg(), Some((1, 500)), "tie breaks low shard");
        assert_eq!(g.leg_spread_us(), 1_500);
    }

    #[test]
    fn all_legs_filtered_flags_the_empty_gather() {
        let mut g = Gather::new(2, ConsistencyPolicy::BoundedStaleness { max_ms: 10.0 });
        assert!(!g.all_legs_filtered(), "incomplete gather never flags");
        g.offer(0, 50.0, vec![1]);
        assert!(!g.all_legs_filtered(), "still one leg outstanding");
        assert!(g.offer(1, 99.0, vec![2]));
        assert!(g.all_legs_filtered());
        assert_eq!(g.filtered_legs(), 2);
        assert_eq!(g.fanout(), 2);
        assert_eq!(g.merge_by(|&v| v), Vec::<i32>::new(), "merge still legal");
    }

    #[test]
    fn one_fresh_leg_defuses_the_fallback() {
        let mut g = Gather::new(3, ConsistencyPolicy::BoundedStaleness { max_ms: 10.0 });
        g.offer(0, 50.0, vec![1]);
        g.offer(1, 5.0, vec![2]);
        assert!(g.offer(2, 60.0, vec![3]));
        assert!(!g.all_legs_filtered(), "one surviving leg is an answer");
        assert_eq!(g.filtered_legs(), 2);
        assert_eq!(g.merge_by(|&v| v), vec![2]);
    }

    #[test]
    #[should_panic(expected = "reported twice")]
    fn duplicate_leg_panics() {
        let mut g: Gather<u8> = Gather::new(2, ConsistencyPolicy::Eventual);
        g.offer(0, 0.0, vec![]);
        g.offer(0, 0.0, vec![]);
    }
}
