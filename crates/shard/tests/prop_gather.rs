//! Property tests for the scatter-gather merge buffer, pinning the
//! all-legs-filtered fallback signal and the filtered-leg counters against
//! arbitrary leg orders, staleness profiles, and bounds.

use amdb_consistency::ConsistencyPolicy;
use amdb_shard::Gather;
use proptest::prelude::*;

/// One scattered read: a staleness bound and per-shard (staleness, rows).
#[derive(Debug, Clone)]
struct Scenario {
    max_ms: f64,
    legs: Vec<(f64, Vec<u32>)>,
    /// Permutation deciding leg arrival order.
    order: Vec<usize>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        0.0..500.0f64,
        prop::collection::vec((0.0..1000.0f64, 0usize..4), 1..8),
        any::<u64>(),
    )
        .prop_map(|(max_ms, raw, order_seed)| {
            let legs: Vec<(f64, Vec<u32>)> = raw
                .iter()
                .enumerate()
                .map(|(i, &(st, n))| (st, (0..n as u32).map(|j| (i as u32) * 10 + j).collect()))
                .collect();
            // Arrival order: a seed-driven Fisher–Yates shuffle (the shim
            // has no prop_shuffle).
            let mut order: Vec<usize> = (0..legs.len()).collect();
            let mut s = order_seed | 1;
            for i in (1..order.len()).rev() {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            Scenario {
                max_ms,
                legs,
                order,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The fallback signal fires iff every leg was filtered, exactly at
    /// completion, independent of arrival order — and the filtered-leg
    /// counter always equals the number of over-bound legs.
    #[test]
    fn all_legs_filtered_iff_every_leg_is_stale(s in arb_scenario()) {
        let mut g = Gather::new(
            s.legs.len(),
            ConsistencyPolicy::BoundedStaleness { max_ms: s.max_ms },
        );
        let expect_filtered =
            s.legs.iter().filter(|(st, _)| *st > s.max_ms).count();
        for (i, &shard) in s.order.iter().enumerate() {
            prop_assert!(!g.all_legs_filtered(), "never fires before completion");
            let (st, rows) = s.legs[shard].clone();
            let last = g.offer(shard, st, rows);
            prop_assert_eq!(last, i + 1 == s.legs.len());
        }
        prop_assert!(g.is_complete());
        prop_assert_eq!(g.filtered_legs() as usize, expect_filtered);
        prop_assert_eq!(
            g.all_legs_filtered(),
            expect_filtered == s.legs.len(),
            "fallback iff zero surviving legs"
        );
        // Merged rows come only from surviving legs.
        let survivors: usize = s
            .legs
            .iter()
            .filter(|(st, _)| *st <= s.max_ms)
            .map(|(_, r)| r.len())
            .sum();
        prop_assert_eq!(g.merge_by(|&v| v).len(), survivors);
    }

    /// Under `Eventual` nothing is ever filtered, so the fallback can never
    /// fire with at least one leg.
    #[test]
    fn eventual_never_triggers_fallback(s in arb_scenario()) {
        let mut g = Gather::new(s.legs.len(), ConsistencyPolicy::Eventual);
        for &shard in &s.order {
            let (st, rows) = s.legs[shard].clone();
            g.offer(shard, st, rows);
        }
        prop_assert_eq!(g.filtered_legs(), 0);
        prop_assert!(!g.all_legs_filtered());
    }
}
