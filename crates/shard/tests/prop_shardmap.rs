//! Property tests for the shard map: totality, stability, minimal
//! remapping, and override precedence — over both synthetic keys and the
//! actual Cloudstone operation stream.

use amdb_cloudstone::{build_template, shard_key_of, DataSize, MixConfig, OpGenerator, ShardKey};
use amdb_shard::{jump_hash, key_hash, RangeOverride, ShardMap};
use amdb_sim::Rng;
use proptest::prelude::*;

fn arb_key(space: usize, id: i64) -> ShardKey {
    match space % 4 {
        0 => ShardKey::User(id),
        1 => ShardKey::Event(id),
        2 => ShardKey::Tag(id),
        _ => ShardKey::Zip(id),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Totality + stability: every key maps to exactly one in-range shard,
    /// and re-evaluating the same key on the same map never disagrees.
    #[test]
    fn map_is_total_and_stable(
        shards in 1..32u32,
        keys in prop::collection::vec((0..4usize, -1000..1_000_000i64), 1..200),
    ) {
        let m = ShardMap::new(shards);
        for (space, id) in keys {
            let k = arb_key(space, id);
            let s = m.shard_of(k);
            prop_assert!(s < shards);
            prop_assert_eq!(s, m.shard_of(k), "unstable for {:?}", k);
            prop_assert_eq!(s, ShardMap::new(shards).shard_of(k), "map-instance dependent");
        }
    }

    /// Minimal remapping: growing the shard count by one either keeps a key
    /// in place or moves it onto the *new* shard — never between old ones.
    /// This is the jump-hash contract that makes resharding cheap.
    #[test]
    fn growing_by_one_only_moves_keys_onto_the_new_shard(
        shards in 1..24u32,
        keys in prop::collection::vec((0..4usize, 0..1_000_000i64), 1..200),
    ) {
        let before = ShardMap::new(shards);
        let after = ShardMap::new(shards + 1);
        for (space, id) in keys {
            let k = arb_key(space, id);
            let (b, a) = (before.shard_of(k), after.shard_of(k));
            prop_assert!(a == b || a == shards, "{:?} moved {} -> {} of {}", k, b, a, shards + 1);
        }
    }

    /// Overrides win inside their range and keyspace, and never leak
    /// outside either; first match rules among overlapping entries.
    #[test]
    fn overrides_apply_exactly_within_range(
        shards in 2..16u32,
        lo in 0..5_000i64,
        len in 0..2_000i64,
        target in 0..16u32,
        probes in prop::collection::vec(-100..8_000i64, 1..100),
    ) {
        let target = target % shards;
        let hi = lo + len;
        let m = ShardMap::with_overrides(
            shards,
            vec![RangeOverride { space: ShardKey::Event(0).space_tag(), lo, hi, shard: target }],
        );
        let plain = ShardMap::new(shards);
        for id in probes {
            let inside = (lo..=hi).contains(&id);
            let got = m.shard_of(ShardKey::Event(id));
            if inside {
                prop_assert_eq!(got, target);
            } else {
                prop_assert_eq!(got, plain.shard_of(ShardKey::Event(id)));
            }
            // Other keyspaces never see the override.
            prop_assert_eq!(m.shard_of(ShardKey::User(id)), plain.shard_of(ShardKey::User(id)));
        }
    }

    /// The hash itself is stable and in range for any key/bucket pair.
    #[test]
    fn jump_hash_is_total(key in any::<u64>(), buckets in 1..1024u32) {
        let b = jump_hash(key, buckets);
        prop_assert!(b < buckets);
        prop_assert_eq!(b, jump_hash(key, buckets));
    }
}

/// Every operation the Cloudstone generator can produce yields a key that
/// maps to exactly one shard, at every sweep shard count — the front never
/// faces an unroutable op.
#[test]
fn every_cloudstone_op_routes_to_one_shard() {
    let mut rng = Rng::new(42);
    let (_, counters) = build_template(DataSize { scale: 30 }, &mut rng);
    let mut g = OpGenerator::new(counters, rng.derive("ops"));
    let maps: Vec<ShardMap> = [1u32, 2, 4, 8].iter().map(|&n| ShardMap::new(n)).collect();
    for _ in 0..5_000 {
        let op = g.generate(MixConfig::RW_50_50);
        let key = shard_key_of(&op);
        assert!(
            key.is_some(),
            "cloudstone op '{}' has no shard key",
            op.name
        );
        for m in &maps {
            let s = m.shard_of_opt(key);
            assert!(s < m.shards());
            assert_eq!(s, m.shard_of_opt(key));
        }
    }
}

/// Keyspace separation: the tag is part of the hash input.
#[test]
fn space_tags_separate_equal_ids() {
    assert_ne!(
        key_hash(ShardKey::User(123)),
        key_hash(ShardKey::Event(123))
    );
}
