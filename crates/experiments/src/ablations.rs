//! Ablations beyond the paper's measured figures.
//!
//! * **A1 — sync vs semi-sync vs async** (§II discusses the trade-off
//!   qualitatively; we measure it): replication mode × workload at 3 slaves.
//! * **A2 — balancer policies** (§IV-B.2 suggests a "smart load balancer
//!   ... based on estimated processing time"): policies over a cluster whose
//!   slaves differ in speed, so naive balancing hurts.
//! * **A3 — statement- vs row-based binlog**: apply cost and delay under a
//!   write-heavy workload.

use crate::calib::paper_cost_model;
use crate::exec::{parallel_map, Progress};
use crate::Fidelity;

use amdb_cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb_core::{run_cluster, BalancerKind, ClusterConfig, Placement, RunReport};
use amdb_metrics::Table;
use amdb_repl::ReplMode;
use amdb_sql::binlog::BinlogFormat;

fn base_cfg(users: u32, slaves: usize, fidelity: Fidelity) -> ClusterConfig {
    let workload = match fidelity {
        Fidelity::Full => WorkloadConfig::paper(users),
        Fidelity::Quick => WorkloadConfig::quick(users),
    };
    ClusterConfig::builder()
        .slaves(slaves)
        .placement(Placement::SameZone)
        .mix(MixConfig::RW_50_50)
        .data_size(DataSize::SMALL)
        .workload(workload)
        .cost(paper_cost_model())
        .seed(23)
        .build()
}

/// A1: replication mode comparison. Returns `(mode, report)` triples.
/// Each mode is an independent run, so the three fan out across `jobs`
/// workers; results come back in mode order regardless.
pub fn sync_modes(fidelity: Fidelity, jobs: usize) -> Vec<(ReplMode, RunReport)> {
    let users = match fidelity {
        Fidelity::Full => 125,
        Fidelity::Quick => 40,
    };
    let modes = [ReplMode::Async, ReplMode::SemiSync, ReplMode::Sync];
    parallel_map(&modes, jobs, &Progress::Silent, |_, &mode, _| {
        let mut cfg = base_cfg(users, 3, fidelity);
        cfg.mode = mode;
        // Make the commit-latency effect visible: slaves in another
        // region, as geo-replication is where sync modes really hurt.
        cfg.placement = Placement::DifferentRegion(amdb_net::Region::EuWest1);
        (mode, run_cluster(cfg))
    })
}

/// Render A1.
pub fn sync_modes_table(results: &[(ReplMode, RunReport)]) -> Table {
    let mut t = Table::new(
        "A1 — replication mode (3 geo-replicated slaves, 50/50)",
        vec![
            "mode".into(),
            "throughput (ops/s)".into(),
            "p95 latency (ms)".into(),
            "avg relative delay (ms)".into(),
        ],
    );
    for (mode, r) in results {
        t.push_row(vec![
            mode.name().into(),
            format!("{:.1}", r.throughput_ops_s),
            r.latency_ms
                .as_ref()
                .map(|l| format!("{:.0}", l.p95))
                .unwrap_or_else(|| "-".into()),
            r.avg_relative_delay_ms()
                .map(|d| format!("{d:.1}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

/// A2: balancer comparison over heterogeneous slaves (fleet-sampled hosts,
/// so some slaves are markedly slower).
pub fn balancers(fidelity: Fidelity, jobs: usize) -> Vec<(BalancerKind, RunReport)> {
    let users = match fidelity {
        Fidelity::Full => 150,
        Fidelity::Quick => 50,
    };
    let kinds = [
        BalancerKind::RoundRobin,
        BalancerKind::Random,
        BalancerKind::LeastOutstanding,
        BalancerKind::LatencyAware,
    ];
    parallel_map(&kinds, jobs, &Progress::Silent, |_, &b, _| {
        let mut cfg = base_cfg(users, 4, fidelity);
        cfg.balancer = b;
        // Heterogeneous fleet: sample host models instead of pinning.
        cfg.pin_slave_host = None;
        (b, run_cluster(cfg))
    })
}

/// Render A2.
pub fn balancers_table(results: &[(BalancerKind, RunReport)]) -> Table {
    let mut t = Table::new(
        "A2 — balancing policy over heterogeneous slaves (4 slaves, 50/50)",
        vec![
            "policy".into(),
            "throughput (ops/s)".into(),
            "mean latency (ms)".into(),
            "p95 latency (ms)".into(),
        ],
    );
    for (b, r) in results {
        t.push_row(vec![
            format!("{b:?}"),
            format!("{:.1}", r.throughput_ops_s),
            r.latency_ms
                .as_ref()
                .map(|l| format!("{:.0}", l.mean))
                .unwrap_or_else(|| "-".into()),
            r.latency_ms
                .as_ref()
                .map(|l| format!("{:.0}", l.p95))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

/// A3: binlog format comparison under a write-heavy mix.
pub fn binlog_formats(fidelity: Fidelity, jobs: usize) -> Vec<(BinlogFormat, RunReport)> {
    let users = match fidelity {
        Fidelity::Full => 125,
        Fidelity::Quick => 40,
    };
    let formats = [BinlogFormat::Statement, BinlogFormat::Row];
    parallel_map(&formats, jobs, &Progress::Silent, |_, &format, _| {
        let mut cfg = base_cfg(users, 2, fidelity);
        cfg.format = format;
        cfg.mix = MixConfig {
            read_fraction: 0.2, // write-heavy: the apply path dominates
        };
        (format, run_cluster(cfg))
    })
}

/// Render A3.
pub fn binlog_formats_table(results: &[(BinlogFormat, RunReport)]) -> Table {
    let mut t = Table::new(
        "A3 — binlog format under a 20/80 write-heavy mix (2 slaves)",
        vec![
            "format".into(),
            "throughput (ops/s)".into(),
            "avg relative delay (ms)".into(),
            "peak relay backlog".into(),
        ],
    );
    for (f, r) in results {
        t.push_row(vec![
            format!("{f:?}"),
            format!("{:.1}", r.throughput_ops_s),
            r.avg_relative_delay_ms()
                .map(|d| format!("{d:.1}"))
                .unwrap_or_else(|| "-".into()),
            r.peak_relay_backlog.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_hurts_write_latency_on_geo_replicas() {
        let rs = sync_modes(Fidelity::Quick, 2);
        let lat = |m: ReplMode| {
            rs.iter()
                .find(|(mode, _)| *mode == m)
                .and_then(|(_, r)| r.latency_ms.as_ref())
                .map(|l| l.p95)
                .expect("latency present")
        };
        assert!(
            lat(ReplMode::Sync) > lat(ReplMode::Async),
            "sync p95 {} must exceed async p95 {}",
            lat(ReplMode::Sync),
            lat(ReplMode::Async)
        );
    }

    #[test]
    fn all_modes_complete_work() {
        for (_, r) in sync_modes(Fidelity::Quick, 2) {
            assert!(r.steady_ops > 0);
        }
    }

    #[test]
    fn balancer_ablation_produces_all_policies() {
        let rs = balancers(Fidelity::Quick, 2);
        assert_eq!(rs.len(), 4);
        for (_, r) in &rs {
            assert!(r.steady_ops > 0);
        }
    }

    #[test]
    fn binlog_formats_both_converge() {
        let rs = binlog_formats(Fidelity::Quick, 2);
        assert_eq!(rs.len(), 2);
        for (_, r) in &rs {
            assert!(r.steady_writes > 0);
        }
    }
}
