//! Observability demo: run one fig2-style cell with tracing enabled and
//! report where the steady-window bottleneck sits.
//!
//! The paper's §IV-A narrative — saturation starts on the slaves and
//! migrates to the master as slaves are added — becomes directly visible
//! here: at one slave the slave CPU saturates first (it serves every read),
//! while at three or more slaves the reads spread out and the master
//! (serving every write plus one binlog dump thread per slave) becomes the
//! hot spot.

use crate::calib::paper_cost_model;
use amdb_cloudstone::{DataSize, MixConfig, Phases, WorkloadConfig};
use amdb_core::sharded::FleetObsBundle;
use amdb_core::{
    run_cluster_observed, run_sharded_observed, ClusterConfig, RunReport, ShardedConfig,
    ShardedReport,
};
use amdb_obs::{BottleneckReport, Obs, ObsConfig};

/// Fig2-style cell (50/50 mix, data size 300, quick phases) with
/// observability enabled.
pub fn observed_cell_config(slaves: usize, users: u32, seed: u64) -> ClusterConfig {
    let mut workload = WorkloadConfig::paper(users);
    workload.phases = Phases::quick();
    ClusterConfig::builder()
        .slaves(slaves)
        .mix(MixConfig::RW_50_50)
        .data_size(DataSize::SMALL)
        .workload(workload)
        .cost(paper_cost_model())
        .observability(ObsConfig {
            enabled: true,
            sample_interval_ms: 500,
            tsdb: true,
        })
        .seed(seed)
        .build()
}

/// One observed run's full output.
pub struct ObservedCell {
    pub slaves: usize,
    pub users: u32,
    pub report: RunReport,
    pub bottleneck: BottleneckReport,
    pub obs: Obs,
}

/// Run one observed fig2-style cell.
pub fn run_observed_cell(slaves: usize, users: u32, seed: u64) -> ObservedCell {
    let (report, obs, bottleneck) = run_cluster_observed(observed_cell_config(slaves, users, seed));
    ObservedCell {
        slaves,
        users,
        report,
        bottleneck,
        obs,
    }
}

/// Run the same observed cell behind a `shards`-tree sharded front:
/// returns the sharded report plus the fleet bundle (per-tree recorders,
/// per-shard time-series stores, scatter-gather front trace). A fifth of
/// the reads scatter so the front's leg waterfalls have mass.
pub fn run_observed_sharded_cell(
    shards: u32,
    slaves: usize,
    users: u32,
    seed: u64,
) -> (ShardedReport, FleetObsBundle) {
    let cfg = ShardedConfig::new(shards, observed_cell_config(slaves, users, seed))
        .cross_shard_read_fraction(0.20);
    run_sharded_observed(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_cell_collects_everything() {
        let cell = run_observed_cell(1, 20, 42);
        assert!(cell.report.steady_ops > 0);
        assert!(cell.obs.is_enabled());
        assert_eq!(cell.bottleneck.rows().len(), 3, "master + slave + pool");
        let json = cell.obs.chrome_trace().expect("trace present");
        assert!(json.contains("\"traceEvents\""));
    }
}
