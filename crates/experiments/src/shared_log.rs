//! E-SL: the shared-log (Taurus-style) replication backend compared against
//! the paper's binlog fan-out, in three cuts:
//!
//! * **backends** — the fig2-style throughput/delay/latency grid run under
//!   each [`BackendKind`], quantifying what quorum-gated durability costs
//!   on the steady path;
//! * **failover** — the E-M master-failure scenario per backend: the binlog
//!   backends rebuild (promote + snapshot resync, losing the un-applied
//!   tail), the shared log *reattaches* at the durable-quorum LSN (losing
//!   only never-acked writes) — recovery time and data loss side by side;
//! * **faults** — the shared log under a sweep of per-replica MTBFs: quorum
//!   waits, retries and re-sends grow, but no acked write is ever lost.
//!
//! Every cell is a deterministic simulation; grids fan out across the
//! [`crate::exec`] pool and render byte-identically for any `--jobs`.

use crate::calib::paper_cost_model;
use crate::exec::{parallel_map, Progress};
use crate::Fidelity;
use amdb_cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb_core::{
    run_cluster, BackendKind, ClusterConfig, LogFaultPlan, MasterFaultPlan, Placement, RunReport,
};
use amdb_metrics::Table;
use amdb_sim::SimDuration;

/// The three backends, in presentation order.
pub const BACKENDS: [BackendKind; 3] = [
    BackendKind::Statement,
    BackendKind::Row,
    BackendKind::SharedLog,
];

fn workload(users: u32, fidelity: Fidelity) -> WorkloadConfig {
    match fidelity {
        Fidelity::Full => WorkloadConfig::paper(users),
        Fidelity::Quick => WorkloadConfig::quick(users),
    }
}

fn base(users: u32, slaves: usize, fidelity: Fidelity) -> amdb_core::ClusterBuilder {
    ClusterConfig::builder()
        .slaves(slaves)
        .placement(Placement::SameZone)
        .mix(MixConfig::RW_50_50)
        .data_size(DataSize::SMALL)
        .workload(workload(users, fidelity))
        .cost(paper_cost_model())
        .seed(71)
}

/// Backend-comparison grid: {backend} × {slave count} at a fixed user load.
pub fn backends(fidelity: Fidelity, jobs: usize) -> Vec<(BackendKind, usize, RunReport)> {
    let users = match fidelity {
        Fidelity::Full => 150,
        Fidelity::Quick => 60,
    };
    let slaves: &[usize] = match fidelity {
        Fidelity::Full => &[1, 2, 3, 4],
        Fidelity::Quick => &[1, 2, 4],
    };
    let mut cells: Vec<(BackendKind, usize)> = Vec::new();
    for &b in &BACKENDS {
        for &s in slaves {
            cells.push((b, s));
        }
    }
    parallel_map(&cells, jobs, &Progress::Silent, |_, &(b, slaves), _| {
        let r = run_cluster(base(users, slaves, fidelity).backend(b).build());
        (b, slaves, r)
    })
}

/// Render the backend grid.
pub fn backends_table(results: &[(BackendKind, usize, RunReport)]) -> Table {
    let mut t = Table::new(
        "E-SL — replication backends (50/50, size 300, same zone)",
        vec![
            "backend".into(),
            "slaves".into(),
            "throughput (ops/s)".into(),
            "p95 latency (ms)".into(),
            "avg rel delay (ms)".into(),
            "quorum wait mean (ms)".into(),
        ],
    );
    for (b, slaves, r) in results {
        t.push_row(vec![
            b.name().into(),
            slaves.to_string(),
            format!("{:.1}", r.throughput_ops_s),
            r.latency_ms
                .as_ref()
                .map(|s| format!("{:.1}", s.p95))
                .unwrap_or_else(|| "-".into()),
            r.avg_relative_delay_ms()
                .map(|d| format!("{d:.0}"))
                .unwrap_or_else(|| "-".into()),
            r.shared_log
                .as_ref()
                .and_then(|sl| sl.quorum_wait_mean_ms)
                .map(|w| format!("{w:.2}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

/// Failover comparison: the E-M master-failure scenario run once per
/// backend and per arm. The *healthy* arm (2 current slaves) isolates the
/// recovery mechanism; the *lagging* arm (1 saturated slave, the Fig-5
/// deep-delay regime) adds the data-loss dimension — the binlog backends
/// discard the promoted replica's un-applied backlog, the shared log
/// replays it from the durable prefix instead. All cells share the failure
/// instant, the detection delay and the resync window.
pub fn failover(fidelity: Fidelity, jobs: usize) -> Vec<(BackendKind, &'static str, RunReport)> {
    let users = 175;
    let arms: [(&'static str, usize); 2] = [("2 healthy slaves", 2), ("1 saturated slave", 1)];
    let mut cells: Vec<(BackendKind, &'static str, usize)> = Vec::new();
    for &b in &BACKENDS {
        for &(arm, slaves) in &arms {
            cells.push((b, arm, slaves));
        }
    }
    parallel_map(
        &cells,
        jobs,
        &Progress::Silent,
        |_, &(b, arm, slaves), _| {
            let w = workload(users, fidelity);
            // Mid-steady: the log's quorum-append stream is in full flight.
            let fail_at = w.phases.steady_start() - amdb_sim::SimTime::ZERO
                + (w.phases.steady_end() - w.phases.steady_start()) / 2;
            let r = run_cluster(
                base(users, slaves, fidelity)
                    .backend(b)
                    .master_fault(MasterFaultPlan {
                        fail_at,
                        detection_delay: SimDuration::from_secs(5),
                    })
                    .failover_resync(SimDuration::from_secs(60))
                    .build(),
            );
            (b, arm, r)
        },
    )
}

/// Render the failover comparison.
pub fn failover_table(results: &[(BackendKind, &'static str, RunReport)]) -> Table {
    let mut t = Table::new(
        "E-SL — master failover by backend (175 users, fail mid-steady, 60 s resync)",
        vec![
            "backend".into(),
            "arm".into(),
            "recovery (ms)".into(),
            "writes lost".into(),
            "throughput (ops/s)".into(),
            "mechanism".into(),
        ],
    );
    for (b, arm, r) in results {
        let mechanism = match (b, r.shared_log.as_ref().and_then(|sl| sl.recovery)) {
            (BackendKind::SharedLog, Some((lsn, replayed))) => {
                format!("reattach at lsn {lsn}, {replayed} replayed")
            }
            (BackendKind::SharedLog, None) => "reattach (no recovery recorded)".into(),
            _ => "promote + snapshot resync".into(),
        };
        t.push_row(vec![
            b.name().into(),
            (*arm).into(),
            r.recovery_ms
                .map(|ms| format!("{ms:.0}"))
                .unwrap_or_else(|| "-".into()),
            r.lost_writes.to_string(),
            format!("{:.1}", r.throughput_ops_s),
            mechanism,
        ]);
    }
    t
}

/// Log-replica fault grid: the shared-log backend under increasingly
/// hostile per-replica fault schedules (MTBF sweep, fixed 2 s MTTR plus a
/// slow-disk plane). Returns `(mtbf_label, report)` rows; `None` MTBF is
/// the healthy baseline.
pub fn fault_grid(fidelity: Fidelity, jobs: usize) -> Vec<(String, RunReport)> {
    let users = match fidelity {
        Fidelity::Full => 150,
        Fidelity::Quick => 60,
    };
    let mtbfs: Vec<Option<u64>> = vec![None, Some(120), Some(60), Some(30), Some(15)];
    parallel_map(&mtbfs, jobs, &Progress::Silent, |_, &mtbf, _| {
        let mut b = base(users, 2, fidelity).backend(BackendKind::SharedLog);
        if let Some(secs) = mtbf {
            b = b.log_faults(LogFaultPlan {
                mtbf: SimDuration::from_secs(secs),
                mttr: SimDuration::from_secs(2),
                slow_mtbf: Some(SimDuration::from_secs(secs)),
                slow_mttr: SimDuration::from_secs(3),
                slow_factor: 8.0,
            });
        }
        let label = match mtbf {
            None => "healthy".to_string(),
            Some(secs) => format!("mtbf {secs}s"),
        };
        (label, run_cluster(b.build()))
    })
}

/// Render the fault grid.
pub fn fault_grid_table(results: &[(String, RunReport)]) -> Table {
    let mut t = Table::new(
        "E-SL — shared log under per-replica faults (2 slaves, quorum 2/3)",
        vec![
            "log replicas".into(),
            "throughput (ops/s)".into(),
            "quorum wait mean/max (ms)".into(),
            "retries".into(),
            "re-sends".into(),
            "quorum failures".into(),
            "acked writes lost".into(),
        ],
    );
    for (label, r) in results {
        let sl = r.shared_log.as_ref().expect("fault grid runs shared-log");
        t.push_row(vec![
            label.clone(),
            format!("{:.1}", r.throughput_ops_s),
            format!(
                "{:.2} / {:.1}",
                sl.quorum_wait_mean_ms.unwrap_or(0.0),
                sl.quorum_wait_max_ms.unwrap_or(0.0)
            ),
            sl.ack_retries.to_string(),
            sl.ack_resends.to_string(),
            sl.quorum_failures.to_string(),
            r.lost_writes.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_grid_covers_all_backends_and_reports_quorum_waits() {
        let rs = backends(Fidelity::Quick, 2);
        assert_eq!(rs.len(), 9);
        for (b, _, r) in &rs {
            assert_eq!(r.shared_log.is_some(), *b == BackendKind::SharedLog);
            assert!(r.steady_ops > 0);
        }
    }

    #[test]
    fn shared_log_failover_beats_binlog_rebuild() {
        let rs = failover(Fidelity::Quick, 3);
        let by = |want: BackendKind, arm_frag: &str| {
            rs.iter()
                .find(|(b, arm, _)| *b == want && arm.contains(arm_frag))
                .map(|(_, _, r)| r)
                .expect("cell present")
        };
        // Healthy arm: same loss (none), but reattach skips the resync.
        let stmt = by(BackendKind::Statement, "healthy");
        let slog = by(BackendKind::SharedLog, "healthy");
        let (sr, lr) = (
            stmt.recovery_ms.expect("statement arm recovered"),
            slog.recovery_ms.expect("shared-log arm recovered"),
        );
        assert!(
            lr < sr,
            "log reattach ({lr:.0} ms) must beat snapshot rebuild ({sr:.0} ms)"
        );
        // Lagging arm: async fan-out discards the promoted replica's
        // backlog; the quorum log replays it and loses nothing.
        let stmt_lag = by(BackendKind::Statement, "saturated");
        let slog_lag = by(BackendKind::SharedLog, "saturated");
        assert!(
            stmt_lag.lost_writes > 0,
            "saturated-replica promotion must lose writes under async fan-out"
        );
        assert_eq!(slog_lag.lost_writes, 0, "quorum log loses nothing");
        let (_, replayed) = slog_lag
            .shared_log
            .as_ref()
            .and_then(|sl| sl.recovery)
            .expect("reattach recorded");
        assert!(replayed > 0, "the lagging replica replays its backlog");
    }

    #[test]
    fn no_fault_cell_loses_acked_writes() {
        let rs = fault_grid(Fidelity::Quick, 2);
        assert_eq!(rs.len(), 5);
        for (label, r) in &rs {
            assert_eq!(r.lost_writes, 0, "cell {label} lost acked writes");
            let sl = r.shared_log.as_ref().unwrap();
            assert_eq!(
                sl.durable_lsn, sl.published_lsn,
                "cell {label} left published writes non-durable"
            );
        }
        // Hostile cells actually exercise the retry machinery.
        let worst = &rs.last().unwrap().1;
        assert!(worst.shared_log.as_ref().unwrap().ack_retries > 0);
    }
}
