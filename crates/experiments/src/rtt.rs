//! §IV-B.2 in-text measurement: ½ round-trip time between the master's zone
//! and a slave in each placement, "by running ping command every second for
//! a 20-minute period". The paper reports averages of 16, 21, and 173 ms.

use amdb_core::Placement;
use amdb_metrics::{Summary, Table};
use amdb_net::{NetModel, Region, Zone};
use amdb_sim::Rng;

/// One placement's ping statistics.
#[derive(Debug, Clone)]
pub struct PingResult {
    pub placement: Placement,
    pub label: String,
    /// Half-RTT summary in ms.
    pub half_rtt_ms: Summary,
}

/// Run the ping experiment: one sample per second for `duration_s`.
pub fn run(duration_s: u32, seed: u64) -> Vec<PingResult> {
    let master = Zone::new(Region::UsWest1, 'a');
    let mut net = NetModel::with_defaults(Rng::new(seed).derive("rtt"));
    Placement::PAPER_SET
        .iter()
        .map(|&placement| {
            let slave = placement.slave_zone(master);
            let samples: Vec<f64> = (0..duration_s)
                .map(|_| net.rtt(master, slave).as_millis_f64() / 2.0)
                .collect();
            PingResult {
                placement,
                label: placement.label(master),
                half_rtt_ms: Summary::of(&samples).expect("non-empty"),
            }
        })
        .collect()
}

/// Render the paper-comparable table.
pub fn table(results: &[PingResult]) -> Table {
    let mut t = Table::new(
        "½ round-trip time by placement (ping every second, 20 minutes)",
        vec![
            "placement".into(),
            "mean (ms)".into(),
            "p5 (ms)".into(),
            "p95 (ms)".into(),
            "paper (ms)".into(),
        ],
    );
    let paper = [16.0, 21.0, 173.0];
    for (r, p) in results.iter().zip(paper) {
        t.push_row(vec![
            r.label.clone(),
            format!("{:.1}", r.half_rtt_ms.mean),
            format!("{:.1}", r.half_rtt_ms.p5),
            format!("{:.1}", r.half_rtt_ms.p95),
            format!("{p:.0}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_rtts_match_paper() {
        let rs = run(1200, 7);
        assert_eq!(rs.len(), 3);
        let means: Vec<f64> = rs.iter().map(|r| r.half_rtt_ms.mean).collect();
        assert!((means[0] - 16.3).abs() < 0.5, "same zone {:.1}", means[0]);
        assert!((means[1] - 21.3).abs() < 0.5, "diff zone {:.1}", means[1]);
        assert!(
            (means[2] - 173.3).abs() < 3.0,
            "diff region {:.1}",
            means[2]
        );
        assert!(means[0] < means[1] && means[1] < means[2]);
    }

    #[test]
    fn table_contains_all_placements() {
        let t = table(&run(60, 7));
        let r = t.render();
        assert!(r.contains("same zone"));
        assert!(r.contains("different zone"));
        assert!(r.contains("different region"));
    }
}
