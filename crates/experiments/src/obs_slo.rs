//! SLO/alert sweep (`obs_slo` binary): run fig2-style cells with telemetry
//! enabled and collect the deterministic alert timeline each produces.
//!
//! This is the paper's Fig 5/6 surge story told by an *online* monitor
//! instead of a post-run report: as user counts rise, the `delay_surge`
//! rule fires when the windowed true replication delay crosses its
//! threshold, and each fire is attributed to the resource saturated at
//! surge onset — the slave CPU when one slave serves every read, the
//! master CPU once three or four slaves spread the reads out and the
//! write/ship load dominates (§IV-A's saturation migration).
//!
//! Every cell is deterministic in its derived seed, cells gather in grid
//! order, and the rendered table (and `results/obs_slo_alerts.csv`) is
//! byte-identical for any `--jobs` count.

use crate::calib::paper_cost_model;
use crate::exec::parallel_map;
use crate::sweep::SweepOptions;
use crate::Fidelity;
use amdb_cloudstone::{build_template, DataCounters, DataSize, MixConfig, Phases, WorkloadConfig};
use amdb_core::{Cluster, ClusterConfig, ObsConfig, Placement, RunReport, Telemetry};
use amdb_sim::{Rng, Sim};
use amdb_sql::Engine;
use amdb_telemetry::{AlertEvent, AlertKind};
use std::sync::Arc;

/// Grid specification for the SLO sweep.
#[derive(Debug, Clone)]
pub struct ObsSloSpec {
    pub name: &'static str,
    pub slave_counts: Vec<usize>,
    pub user_counts: Vec<u32>,
    pub placements: Vec<Placement>,
    pub phases: Phases,
    /// Telemetry sampling period (ms); SLO windows are counted in samples.
    pub sample_interval_ms: u64,
    pub seed: u64,
}

impl ObsSloSpec {
    /// The sweep grids. Both fidelities use quick phases — the surge
    /// dynamics the alert engine watches appear within seconds of steady
    /// load — and differ only in grid breadth.
    pub fn paper_set(f: Fidelity) -> ObsSloSpec {
        match f {
            Fidelity::Full => ObsSloSpec {
                name: "obs_slo (50/50, size 300)",
                slave_counts: vec![1, 2, 3, 4],
                user_counts: vec![75, 175],
                placements: Placement::PAPER_SET.to_vec(),
                phases: Phases::quick(),
                sample_interval_ms: 250,
                seed: 42,
            },
            Fidelity::Quick => ObsSloSpec {
                name: "obs_slo quick (50/50, size 300)",
                slave_counts: vec![1, 3],
                user_counts: vec![175],
                placements: vec![Placement::SameZone, Placement::PAPER_SET[2]],
                phases: Phases::quick(),
                sample_interval_ms: 250,
                seed: 42,
            },
        }
    }

    /// Per-cell derived seed.
    pub fn cell_seed(&self, placement: Placement, slaves: usize, users: u32) -> u64 {
        let label = format!("obs_slo/{placement:?}/slaves={slaves}/users={users}");
        Rng::new(self.seed).derive(&label).next_u64()
    }

    /// The cluster config for one cell: fig2-style 50/50 cell with
    /// telemetry (and therefore observability) enabled.
    pub fn cell_config(&self, placement: Placement, slaves: usize, users: u32) -> ClusterConfig {
        let mut workload = WorkloadConfig::paper(users);
        workload.phases = self.phases;
        ClusterConfig::builder()
            .slaves(slaves)
            .placement(placement)
            .mix(MixConfig::RW_50_50)
            .data_size(DataSize::SMALL)
            .workload(workload)
            .cost(paper_cost_model())
            .observability(ObsConfig {
                enabled: true,
                sample_interval_ms: self.sample_interval_ms,
                tsdb: true,
            })
            .telemetry_on(true)
            .seed(self.cell_seed(placement, slaves, users))
            .build()
    }

    /// The shared template database for this sweep.
    pub fn template(&self) -> (Engine, DataCounters) {
        let mut load_rng = Rng::new(self.seed).derive("load");
        build_template(DataSize::SMALL, &mut load_rng)
    }
}

/// One cell's outcome: the run report plus the telemetry bundle.
pub struct ObsSloCell {
    pub placement: Placement,
    pub slaves: usize,
    pub users: u32,
    pub report: RunReport,
    pub telemetry: Telemetry,
}

impl ObsSloCell {
    /// The first `delay_surge` fire of the run, if any.
    pub fn first_delay_surge(&self) -> Option<&AlertEvent> {
        self.telemetry
            .slo
            .alerts()
            .iter()
            .find(|a| a.rule == "delay_surge" && a.kind == AlertKind::Fire)
    }
}

/// Run the sweep, fanning cells across `opts.jobs` workers. Cells gather
/// in (placement, slaves, users) grid order.
pub fn run(spec: &ObsSloSpec, opts: &SweepOptions) -> Vec<ObsSloCell> {
    let template = Arc::new(spec.template());
    let mut cells: Vec<(Placement, usize, u32)> = Vec::new();
    for &placement in &spec.placements {
        for &slaves in &spec.slave_counts {
            for &users in &spec.user_counts {
                cells.push((placement, slaves, users));
            }
        }
    }
    let template_ref = Arc::clone(&template);
    let results = parallel_map(
        &cells,
        opts.jobs,
        &opts.progress,
        move |_, &(placement, slaves, users), sink| {
            let (tpl, counters) = &*template_ref;
            let cfg = spec.cell_config(placement, slaves, users);
            let label = placement.label(cfg.master_zone);
            let mut sim = Sim::new();
            let mut world = Cluster::with_template(cfg, tpl, counters.clone());
            world.schedule_timeline(&mut sim);
            sim.run(&mut world);
            let events = sim.events_executed();
            let report = world.report(events);
            let telemetry = world.take_telemetry().expect("telemetry was enabled");
            let surges = telemetry
                .slo
                .alerts()
                .iter()
                .filter(|a| a.rule == "delay_surge" && a.kind == AlertKind::Fire)
                .count();
            sink.emit(format!(
                "{label} slaves={slaves} users={users}: {:.1} ops/s, {} alert transition(s), {} delay surge(s)",
                report.throughput_ops_s,
                telemetry.slo.alerts().len(),
                surges,
            ));
            (report, telemetry)
        },
    );
    cells
        .into_iter()
        .zip(results)
        .map(
            |((placement, slaves, users), (report, telemetry))| ObsSloCell {
                placement,
                slaves,
                users,
                report,
                telemetry,
            },
        )
        .collect()
}

/// One sharded cell's outcome: the sharded report plus the fleet alert
/// rollup (per-tree SLO engines merged into one shard-stamped timeline).
pub struct ObsSloShardedCell {
    pub placement: Placement,
    pub slaves: usize,
    pub users: u32,
    pub report: amdb_core::ShardedReport,
    pub fleet: amdb_telemetry::FleetTelemetry,
}

/// Run the sweep's grid with every cell wrapped in a `shards`-tree sharded
/// front (no scatter-gather: the story here is per-shard surge attribution,
/// `(shard, component, instance)` on every alert).
pub fn run_sharded(spec: &ObsSloSpec, shards: u32, opts: &SweepOptions) -> Vec<ObsSloShardedCell> {
    let mut cells: Vec<(Placement, usize, u32)> = Vec::new();
    for &placement in &spec.placements {
        for &slaves in &spec.slave_counts {
            for &users in &spec.user_counts {
                cells.push((placement, slaves, users));
            }
        }
    }
    let results = parallel_map(
        &cells,
        opts.jobs,
        &opts.progress,
        move |_, &(placement, slaves, users), sink| {
            let base = spec.cell_config(placement, slaves, users);
            let label = placement.label(base.master_zone);
            let (report, bundle) =
                amdb_core::run_sharded_telemetry(amdb_core::ShardedConfig::new(shards, base));
            sink.emit(format!(
                "{label} shards={shards} slaves={slaves} users={users}: {:.1} ops/s, \
                 {} fleet alert transition(s)",
                report.throughput_ops_s,
                bundle.telemetry.alerts().len(),
            ));
            (report, bundle.telemetry)
        },
    );
    cells
        .into_iter()
        .zip(results)
        .map(
            |((placement, slaves, users), (report, fleet))| ObsSloShardedCell {
                placement,
                slaves,
                users,
                report,
                fleet,
            },
        )
        .collect()
}

/// Render the sharded sweep as an alert table: the flat table's columns
/// plus a `shard` column, fires paired per `(shard, rule, inst)`.
pub fn sharded_table(
    spec: &ObsSloSpec,
    shards: u32,
    cells: &[ObsSloShardedCell],
) -> amdb_metrics::Table {
    let mut t = amdb_metrics::Table::new(
        format!("{} — fleet alert timeline ({shards} shards)", spec.name),
        vec![
            "placement".into(),
            "slaves".into(),
            "users".into(),
            "shard".into(),
            "rule".into(),
            "inst".into(),
            "t_fire (s)".into(),
            "t_clear (s)".into(),
            "value".into(),
            "attribution".into(),
        ],
    );
    let zone = amdb_core::ClusterConfig::builder().build().master_zone;
    for c in cells {
        let alerts = c.fleet.alerts();
        let mut open: std::collections::BTreeMap<(u32, &str, u32), usize> = Default::default();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for a in alerts {
            match a.kind {
                AlertKind::Fire => {
                    rows.push(vec![
                        c.placement.label(zone),
                        c.slaves.to_string(),
                        c.users.to_string(),
                        a.shard.to_string(),
                        a.rule.to_string(),
                        a.inst.to_string(),
                        format!("{:.2}", a.at.as_secs_f64()),
                        "-".into(),
                        format!("{:.1}", a.value),
                        a.attribution.clone().unwrap_or_else(|| "-".into()),
                    ]);
                    open.insert((a.shard, a.rule, a.inst), rows.len() - 1);
                }
                AlertKind::Clear => {
                    if let Some(i) = open.remove(&(a.shard, a.rule, a.inst)) {
                        rows[i][7] = format!("{:.2}", a.at.as_secs_f64());
                    }
                }
            }
        }
        if rows.is_empty() {
            rows.push(vec![
                c.placement.label(zone),
                c.slaves.to_string(),
                c.users.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "no alerts".into(),
            ]);
        }
        for row in rows {
            t.push_row(row);
        }
    }
    t
}

/// Render the sweep as an alert table: one row per fire, with the matching
/// clear time when the rule cleared before the run ended.
pub fn table(spec: &ObsSloSpec, cells: &[ObsSloCell]) -> amdb_metrics::Table {
    let mut t = amdb_metrics::Table::new(
        format!("{} — alert timeline per cell", spec.name),
        vec![
            "placement".into(),
            "slaves".into(),
            "users".into(),
            "rule".into(),
            "inst".into(),
            "t_fire (s)".into(),
            "t_clear (s)".into(),
            "value".into(),
            "attribution".into(),
        ],
    );
    let zone = amdb_core::ClusterConfig::builder().build().master_zone;
    for c in cells {
        // Pair each fire with the next clear of the same (rule, inst).
        let alerts = c.telemetry.slo.alerts();
        let mut open: std::collections::BTreeMap<(&str, u32), usize> = Default::default();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for a in alerts {
            match a.kind {
                AlertKind::Fire => {
                    rows.push(vec![
                        c.placement.label(zone),
                        c.slaves.to_string(),
                        c.users.to_string(),
                        a.rule.to_string(),
                        a.inst.to_string(),
                        format!("{:.2}", a.at.as_secs_f64()),
                        "-".into(),
                        format!("{:.1}", a.value),
                        a.attribution.clone().unwrap_or_else(|| "-".into()),
                    ]);
                    open.insert((a.rule, a.inst), rows.len() - 1);
                }
                AlertKind::Clear => {
                    if let Some(i) = open.remove(&(a.rule, a.inst)) {
                        rows[i][6] = format!("{:.2}", a.at.as_secs_f64());
                    }
                }
            }
        }
        if rows.is_empty() {
            rows.push(vec![
                c.placement.label(zone),
                c.slaves.to_string(),
                c.users.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "no alerts".into(),
            ]);
        }
        for row in rows {
            t.push_row(row);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Progress;

    fn quick_spec() -> ObsSloSpec {
        ObsSloSpec::paper_set(Fidelity::Quick)
    }

    #[test]
    fn surge_attribution_migrates_from_slave_to_master() {
        // The acceptance story: at the 50/50 mix with 175 users, the first
        // delay surge is the slave CPU's fault with one slave (it serves
        // every read *and* every apply), and the master CPU's fault by
        // three slaves (reads spread out; writes + per-slave dump threads
        // concentrate) — §IV-A's saturation migration, caught online.
        let spec = quick_spec();
        let cells = run(&spec, &SweepOptions::serial());
        let same_zone = |slaves: usize| {
            cells
                .iter()
                .find(|c| c.placement == Placement::SameZone && c.slaves == slaves)
                .expect("cell in grid")
        };
        let one = same_zone(1)
            .first_delay_surge()
            .expect("1-slave cell surges");
        assert_eq!(
            one.attribution.as_deref(),
            Some("slave0 cpu"),
            "one slave: the read+apply-loaded slave saturates first"
        );
        let three = same_zone(3)
            .first_delay_surge()
            .expect("3-slave cell surges");
        assert_eq!(
            three.attribution.as_deref(),
            Some("master cpu"),
            "three slaves: saturation has migrated to the master"
        );
    }

    #[test]
    fn sweep_is_byte_identical_for_any_jobs_count() {
        let spec = quick_spec();
        let serial = table(&spec, &run(&spec, &SweepOptions::serial()));
        let parallel = table(
            &spec,
            &run(
                &spec,
                &SweepOptions {
                    jobs: 3,
                    progress: Progress::Silent,
                },
            ),
        );
        assert_eq!(serial.render(), parallel.render());
        let mut a = Vec::new();
        let mut b = Vec::new();
        amdb_metrics::write_csv(&serial, &mut a).unwrap();
        amdb_metrics::write_csv(&parallel, &mut b).unwrap();
        assert_eq!(a, b, "CSV bytes identical across jobs counts");
    }
}
