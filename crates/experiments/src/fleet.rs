//! Fleet observability report (`fleet_report` binary): sharded runs with
//! telemetry, the time-series plane, and parallel apply all on, rendered as
//! a per-shard "top"-style table.
//!
//! Each cell is one sharded run (default 4 trees behind the scatter-gather
//! front, 4 apply workers per slave, row-format binlog, 20% of reads
//! scattered). The table answers, per shard, the questions an operator's
//! `top` would: which tree is the slowest scatter leg, how busy are its
//! apply workers, how often did writeset conflicts close an apply batch,
//! which resource saturated, and what the SLO engine thinks — §IV-A's
//! bottleneck migration (slave CPU at 1 slave, master CPU at 3+) appears
//! per shard in the `bottleneck`/`slo` columns.
//!
//! Everything is derived from gathered per-cell results in grid order, so
//! the rendered tables, the CSV, and the OpenMetrics dump are byte-identical
//! for any `--jobs` count.

use crate::calib::paper_cost_model;
use crate::exec::parallel_map;
use crate::sweep::SweepOptions;
use crate::Fidelity;
use amdb_cloudstone::{DataSize, MixConfig, Phases, WorkloadConfig};
use amdb_core::sharded::FleetObsBundle;
use amdb_core::{run_sharded_telemetry, ClusterConfig, ShardedConfig, ShardedReport};
use amdb_metrics::{QuantileSketch, Table};
use amdb_obs::{openmetrics_text_multi, Component, ObsConfig, Tsdb};
use amdb_sim::Rng;
use amdb_sql::binlog::BinlogFormat;

/// Grid specification for the fleet report.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    pub name: &'static str,
    /// Replication trees behind the front.
    pub shards: u32,
    /// Grid rows: slaves per tree (1 vs 3 reproduces §IV-A's migration).
    pub slave_counts: Vec<usize>,
    /// Grid columns: front user counts.
    pub user_counts: Vec<u32>,
    /// Apply workers per slave (row-format binlog, writeset scheduling).
    pub apply_workers: usize,
    /// Fraction of reads scatter-gathered across every tree.
    pub cross_fraction: f64,
    /// Observability sampling period (ms); also the tsdb slot width.
    pub sample_interval_ms: u64,
    pub phases: Phases,
    pub seed: u64,
}

impl FleetSpec {
    /// The report grids. Both fidelities run 4 shards × 4 apply workers
    /// (the acceptance shape); full widens the slave grid.
    pub fn paper_set(f: Fidelity) -> FleetSpec {
        match f {
            Fidelity::Full => FleetSpec {
                name: "fleet_report (4 shards, 4 apply workers, row binlog)",
                shards: 4,
                slave_counts: vec![1, 2, 3, 4],
                user_counts: vec![175],
                apply_workers: 4,
                cross_fraction: 0.20,
                sample_interval_ms: 250,
                phases: Phases::quick(),
                seed: 42,
            },
            Fidelity::Quick => FleetSpec {
                name: "fleet_report quick (4 shards, 4 apply workers, row binlog)",
                shards: 4,
                slave_counts: vec![1, 3],
                user_counts: vec![175],
                apply_workers: 4,
                cross_fraction: 0.20,
                sample_interval_ms: 250,
                phases: Phases::quick(),
                seed: 42,
            },
        }
    }

    /// Per-cell derived seed.
    pub fn cell_seed(&self, slaves: usize, users: u32) -> u64 {
        let label = format!("fleet/shards={}/slaves={slaves}/users={users}", self.shards);
        Rng::new(self.seed).derive(&label).next_u64()
    }

    /// The sharded config for one cell: fig2-style 50/50 trees with
    /// row-format binlog, parallel apply, telemetry, and the time-series
    /// store enabled.
    pub fn cell_config(&self, slaves: usize, users: u32) -> ShardedConfig {
        let mut workload = WorkloadConfig::paper(users);
        workload.phases = self.phases;
        let base = ClusterConfig::builder()
            .slaves(slaves)
            .mix(MixConfig::RW_50_50)
            .data_size(DataSize::SMALL)
            .workload(workload)
            .cost(paper_cost_model())
            .format(BinlogFormat::Row)
            .apply_workers(self.apply_workers)
            .observability(ObsConfig {
                enabled: true,
                sample_interval_ms: self.sample_interval_ms,
                tsdb: true,
            })
            .telemetry_on(true)
            .seed(self.cell_seed(slaves, users))
            .build();
        ShardedConfig::new(self.shards, base).cross_shard_read_fraction(self.cross_fraction)
    }
}

/// One cell's outcome: the sharded report plus the fleet obs bundle.
pub struct FleetCell {
    pub slaves: usize,
    pub users: u32,
    pub report: ShardedReport,
    pub bundle: FleetObsBundle,
}

/// Run the grid, fanning cells across `opts.jobs` workers. Cells gather in
/// (slaves, users) grid order.
pub fn run(spec: &FleetSpec, opts: &SweepOptions) -> Vec<FleetCell> {
    let mut cells: Vec<(usize, u32)> = Vec::new();
    for &slaves in &spec.slave_counts {
        for &users in &spec.user_counts {
            cells.push((slaves, users));
        }
    }
    let results = parallel_map(
        &cells,
        opts.jobs,
        &opts.progress,
        move |_, &(slaves, users), sink| {
            let cfg = spec.cell_config(slaves, users);
            let (report, bundle) = run_sharded_telemetry(cfg);
            sink.emit(format!(
                "shards={} slaves={slaves} users={users}: {:.1} ops/s, {} scatter reads, \
                 {} fleet alert transition(s)",
                spec.shards,
                report.throughput_ops_s,
                report.scatter_reads,
                bundle.telemetry.alerts().len(),
            ));
            (report, bundle)
        },
    );
    cells
        .into_iter()
        .zip(results)
        .map(|((slaves, users), (report, bundle))| FleetCell {
            slaves,
            users,
            report,
            bundle,
        })
        .collect()
}

/// Sum of a sketch-cell track's observations (count × mean per slot).
fn track_total(db: &Tsdb, inst_matches: impl Fn(u32) -> bool, name: &str) -> f64 {
    let mut total = 0.0;
    for (key, track) in db.tracks() {
        if key.name != name || !inst_matches(key.inst) {
            continue;
        }
        for (_, cell) in track.samples() {
            total += cell.count() as f64 * cell.mean();
        }
    }
    total
}

/// Sum a set of per-slave registry counters across every instance.
fn counter_sum(obs: &amdb_obs::Obs, name: &str) -> u64 {
    obs.recorder().map_or(0, |rec| {
        rec.registry()
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, m)| match m {
                amdb_obs::Metric::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    })
}

/// One "top" row per shard for one cell (shared by [`top_table`] and the
/// combined CSV of [`combined_table`]).
fn top_rows(spec: &FleetSpec, cell: &FleetCell) -> Vec<Vec<String>> {
    let mut rows = Vec::with_capacity(spec.shards as usize);
    let front_reg = cell.bundle.front.recorder().map(|r| r.registry());
    let span_us = spec.phases.hard_end().as_micros().max(1) as f64;
    for k in 0..spec.shards {
        let slowest = front_reg
            .map(|r| r.counter_value(Component::Proxy, k, "scatter_slowest"))
            .unwrap_or(0);
        let tree_obs = &cell.bundle.trees[k as usize];
        // Apply-worker occupancy: total worker-busy µs over the run span ×
        // worker slots. Worker instances are slave*100 + w.
        let occ = cell.bundle.shard_tsdb(k).map_or(0.0, |db| {
            let busy = track_total(db, |_| true, "apply_worker_busy_us");
            let slots = (cell.slaves * spec.apply_workers) as f64;
            100.0 * busy / (span_us * slots)
        });
        // What closed apply batches on this shard's slaves.
        let conflict = counter_sum(tree_obs, "apply_conflict_bounded");
        let closed = conflict
            + counter_sum(tree_obs, "apply_capacity_bounded")
            + counter_sum(tree_obs, "apply_barrier")
            + counter_sum(tree_obs, "apply_batch_drained");
        let conflict_rate = if closed > 0 {
            100.0 * conflict as f64 / closed as f64
        } else {
            0.0
        };
        let e2e = cell
            .bundle
            .telemetry
            .shards()
            .find(|(s, _)| *s == k)
            .map(|(_, tel)| QuantileSketch::merged(tel.waterfall.legs().iter().map(|l| &l.e2e_ms)));
        let e2e_p95 = e2e
            .as_ref()
            .and_then(|s| s.quantile(0.95))
            .map_or("-".to_string(), |v| format!("{v:.1}"));
        let slo: Vec<String> = cell
            .bundle
            .telemetry
            .firing()
            .into_iter()
            .filter(|(s, _, _)| *s == k)
            .map(|(_, rule, inst)| format!("{rule}@{inst}"))
            .collect();
        rows.push(vec![
            k.to_string(),
            slowest.to_string(),
            format!("{occ:.1}"),
            format!("{conflict_rate:.1}"),
            e2e_p95,
            cell.report.per_shard_bottleneck[k as usize].clone(),
            if slo.is_empty() {
                "ok".into()
            } else {
                slo.join("+")
            },
        ]);
    }
    rows
}

const TOP_COLUMNS: [&str; 7] = [
    "shard",
    "slowest_legs",
    "apply_occ (%)",
    "conflict_rate (%)",
    "e2e_p95 (ms)",
    "bottleneck",
    "slo",
];

/// The per-shard "top" table for one cell: one row per shard naming the
/// slowest-leg count, apply-worker occupancy, batch-close attribution,
/// staleness, the saturated resource, and the SLO state.
pub fn top_table(spec: &FleetSpec, cell: &FleetCell) -> Table {
    let mut t = Table::new(
        format!(
            "{} — per-shard top: slaves={} users={}",
            spec.name, cell.slaves, cell.users
        ),
        TOP_COLUMNS.iter().map(|c| c.to_string()).collect(),
    );
    for row in top_rows(spec, cell) {
        t.push_row(row);
    }
    t
}

/// Every cell's top rows in one table (leading `slaves`/`users` columns) —
/// the `results/fleet_report.csv` artifact.
pub fn combined_table(spec: &FleetSpec, cells: &[FleetCell]) -> Table {
    let mut header = vec!["slaves".to_string(), "users".to_string()];
    header.extend(TOP_COLUMNS.iter().map(|c| c.to_string()));
    let mut t = Table::new(format!("{} — per-shard top, all cells", spec.name), header);
    for cell in cells {
        for row in top_rows(spec, cell) {
            let mut full = vec![cell.slaves.to_string(), cell.users.to_string()];
            full.extend(row);
            t.push_row(full);
        }
    }
    t
}

/// The OpenMetrics exposition for one cell: the front's registry plus every
/// tree's, each part labeled with its shard tag.
pub fn openmetrics_dump(cell: &FleetCell) -> String {
    let mut parts: Vec<(String, &amdb_obs::MetricsRegistry)> = Vec::new();
    if let Some(rec) = cell.bundle.front.recorder() {
        parts.push(("front".to_string(), rec.registry()));
    }
    for (k, o) in cell.bundle.trees.iter().enumerate() {
        if let Some(rec) = o.recorder() {
            parts.push((k.to_string(), rec.registry()));
        }
    }
    let borrowed: Vec<(&str, &amdb_obs::MetricsRegistry)> =
        parts.iter().map(|(s, r)| (s.as_str(), *r)).collect();
    openmetrics_text_multi(&borrowed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Progress;

    fn tiny_spec() -> FleetSpec {
        let mut s = FleetSpec::paper_set(Fidelity::Quick);
        s.slave_counts = vec![1];
        s.user_counts = vec![40];
        s
    }

    #[test]
    fn fleet_cell_collects_per_shard_observability() {
        let spec = tiny_spec();
        let cells = run(&spec, &SweepOptions::serial());
        assert_eq!(cells.len(), 1);
        let cell = &cells[0];
        assert_eq!(cell.bundle.trees.len(), 4);
        assert_eq!(cell.bundle.telemetry.len(), 4, "telemetry per shard");
        assert_eq!(cell.bundle.tsdbs.len(), 4, "a tsdb per shard");
        assert!(cell.report.scatter_reads > 0, "20% of reads scatter");
        let top = top_table(&spec, cell);
        assert_eq!(top.rows().len(), 4);
        let dump = openmetrics_dump(cell);
        assert!(dump.ends_with("# EOF\n"));
        assert!(dump.contains("shard=\"front\""));
        assert!(dump.contains("shard=\"3\""));
        // The fleet rollup store folds every shard's series.
        let fleet = cell.bundle.fleet_tsdb().expect("stores attached");
        assert!(!fleet.is_empty());
    }

    #[test]
    fn fleet_report_is_byte_identical_across_jobs() {
        let spec = tiny_spec();
        let serial = run(&spec, &SweepOptions::serial());
        let parallel = run(
            &spec,
            &SweepOptions {
                jobs: 2,
                progress: Progress::Silent,
            },
        );
        let render = |cells: &[FleetCell]| {
            cells
                .iter()
                .map(|c| format!("{}\n{}", top_table(&spec, c).render(), openmetrics_dump(c)))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&serial), render(&parallel));
    }
}
