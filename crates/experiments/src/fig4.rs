//! Fig. 4: time difference between two instances with and without per-second
//! NTP synchronization, over a 20-minute window.
//!
//! The paper observed: synced once at the beginning, the difference "surges
//! linearly from 7 milliseconds up to 50 milliseconds" (median 28.23 ms,
//! σ 12.31); synced every second, samples "mostly rest in between of 1
//! millisecond and 8 milliseconds" (median 3.30 ms, σ 1.19).

use amdb_clock::{DriftingClock, NtpClient};
use amdb_metrics::{median, stddev, Table, TimeSeries};
use amdb_sim::{Rng, SimTime};

/// Parameters of the two-instance clock experiment.
#[derive(Debug, Clone)]
pub struct Fig4Spec {
    /// Observation length in seconds (paper: 20 minutes).
    pub duration_s: u32,
    /// Sampling/sync interval in seconds.
    pub interval_s: u32,
    pub seed: u64,
}

impl Default for Fig4Spec {
    fn default() -> Self {
        Self {
            duration_s: 1200,
            interval_s: 1,
            seed: 4,
        }
    }
}

/// Result of one arm of the experiment.
#[derive(Debug, Clone)]
pub struct ClockRun {
    /// (t seconds, measured difference in ms) samples.
    pub series: TimeSeries,
    pub median_ms: f64,
    pub stddev_ms: f64,
    /// Least-squares slope of the difference, ms per second.
    pub drift_slope_ms_per_s: f64,
}

/// Both arms of Fig. 4.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    pub sync_once: ClockRun,
    pub sync_every_second: ClockRun,
}

/// Build the two instances the paper measured: clock parameters chosen to
/// match its observed pair (initial difference ≈ 7 ms, relative drift
/// ≈ 36 ppm, per-second-NTP residuals of a few ms).
fn paper_pair(rng: &mut Rng) -> ((DriftingClock, NtpClient), (DriftingClock, NtpClient)) {
    let a = (
        DriftingClock::new(7_000.0, 21.0),
        NtpClient::with_bias(3_300.0, 700.0),
    );
    let b = (
        DriftingClock::new(0.0, -15.0),
        NtpClient::with_bias(0.0, 700.0),
    );
    let _ = rng; // jitter enters through per-sync noise below
    (a, b)
}

fn run_arm(spec: &Fig4Spec, sync_every_sample: bool) -> ClockRun {
    let mut rng = Rng::new(spec.seed).derive("fig4");
    let ((mut clock_a, mut ntp_a), (mut clock_b, mut ntp_b)) = paper_pair(&mut rng);
    let mut series = TimeSeries::new();

    // "Sync once at beginning": a single initial correction would *remove*
    // the initial offset, so (per the paper's description) the once arm
    // simply starts from the instances' existing 7 ms difference.
    for step in 0..=(spec.duration_s / spec.interval_s) {
        let t = SimTime::from_secs((step * spec.interval_s) as u64);
        if sync_every_sample {
            ntp_a.sync(&mut clock_a, t, &mut rng);
            ntp_b.sync(&mut clock_b, t, &mut rng);
        }
        // Measurement noise of reading two clocks "at the same time".
        let noise_ms = rng.normal(0.0, 0.05);
        let diff_ms = clock_a.read(t).delta_millis_f64(clock_b.read(t)) + noise_ms;
        series.push(t.as_secs_f64(), diff_ms);
    }

    let values = series.values();
    let (_, slope) = series.linear_fit().expect("enough samples");
    ClockRun {
        median_ms: median(&values).expect("non-empty"),
        stddev_ms: stddev(&values).expect("enough samples"),
        drift_slope_ms_per_s: slope,
        series,
    }
}

/// Run both arms.
pub fn run(spec: &Fig4Spec) -> Fig4Result {
    Fig4Result {
        sync_once: run_arm(spec, false),
        sync_every_second: run_arm(spec, true),
    }
}

/// Render the paper-comparable summary table.
pub fn summary_table(r: &Fig4Result) -> Table {
    let mut t = Table::new(
        "fig4 — time difference between two instances (20-minute window)",
        vec![
            "arm".into(),
            "start (ms)".into(),
            "end (ms)".into(),
            "median (ms)".into(),
            "stddev (ms)".into(),
            "slope (ms/min)".into(),
        ],
    );
    for (name, run) in [
        ("sync once at beginning", &r.sync_once),
        ("sync every second", &r.sync_every_second),
    ] {
        let pts = run.series.points();
        t.push_row(vec![
            name.into(),
            format!("{:.2}", pts.first().expect("non-empty").1),
            format!("{:.2}", pts.last().expect("non-empty").1),
            format!("{:.2}", run.median_ms),
            format!("{:.2}", run.stddev_ms),
            format!("{:.2}", run.drift_slope_ms_per_s * 60.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_once_drifts_linearly_7_to_50ms() {
        let r = run(&Fig4Spec::default());
        let pts = r.sync_once.series.points();
        let start = pts.first().unwrap().1;
        let end = pts.last().unwrap().1;
        assert!(
            (start - 7.0).abs() < 0.5,
            "starts near 7 ms, got {start:.2}"
        );
        assert!((end - 50.2).abs() < 1.5, "ends near 50 ms, got {end:.2}");
        // Paper: median 28.23, stddev 12.31.
        assert!((r.sync_once.median_ms - 28.6).abs() < 2.0);
        assert!((r.sync_once.stddev_ms - 12.5).abs() < 2.0);
        // Linear: slope ≈ 43 ms / 20 min ≈ 2.16 ms/min.
        assert!((r.sync_once.drift_slope_ms_per_s * 60.0 - 2.16).abs() < 0.1);
    }

    #[test]
    fn sync_every_second_stays_within_1_to_8ms() {
        let r = run(&Fig4Spec::default());
        let vals = r.sync_every_second.series.values();
        let in_band = vals.iter().filter(|v| (1.0..=8.0).contains(*v)).count();
        assert!(
            in_band as f64 / vals.len() as f64 > 0.95,
            "most samples in the 1–8 ms band ({in_band}/{})",
            vals.len()
        );
        // Paper: median 3.30, stddev 1.19.
        assert!((r.sync_every_second.median_ms - 3.3).abs() < 0.5);
        assert!((r.sync_every_second.stddev_ms - 1.19).abs() < 0.4);
        // No meaningful drift trend once disciplined.
        assert!(r.sync_every_second.drift_slope_ms_per_s.abs() < 0.001);
    }

    #[test]
    fn summary_table_renders() {
        let r = run(&Fig4Spec::default());
        let t = summary_table(&r);
        let rendered = t.render();
        assert!(rendered.contains("sync once"));
        assert!(rendered.contains("sync every second"));
    }
}
