//! §IV-A instance performance variation.
//!
//! Two measurements back the paper's claim that "the performance variation
//! of the dynamically allocated virtual machines is an inevitable issue":
//!
//! 1. The small-instance speed distribution across a launched fleet —
//!    Schad et al.'s CoV ≈ 21 %, which the provider model reproduces.
//! 2. The paper's concrete anecdote: the "1 slave, 50/50" curve measured in
//!    *different zone* underperformed the one in *same zone* not because of
//!    distance but because the same-zone slave landed on a Xeon E5430
//!    2.66 GHz host while the different-zone slave got a Xeon E5507
//!    2.27 GHz. We rerun one grid cell pinned to each host model.

use crate::calib::paper_cost_model;
use crate::exec::{parallel_map, Progress};
use crate::Fidelity;
use amdb_cloud::{CpuModel, InstanceType, Provider, ProviderConfig};
use amdb_cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb_core::{run_cluster, ClusterConfig, Placement, RunReport};
use amdb_metrics::{coefficient_of_variation, Table};
use amdb_net::{Region, Zone};
use amdb_sim::Rng;

/// Fleet speed statistics.
#[derive(Debug, Clone)]
pub struct FleetStats {
    pub samples: usize,
    pub mean_speed: f64,
    pub cov: f64,
}

/// Sample `n` small-instance launches and compute the speed CoV.
pub fn fleet_speed_cov(n: usize, seed: u64) -> FleetStats {
    let mut provider = Provider::new(ProviderConfig::default(), Rng::new(seed).derive("fleet"));
    let zone = Zone::new(Region::UsWest1, 'a');
    let speeds: Vec<f64> = (0..n)
        .map(|_| provider.launch(zone, InstanceType::Small).speed())
        .collect();
    FleetStats {
        samples: n,
        mean_speed: speeds.iter().sum::<f64>() / n as f64,
        cov: coefficient_of_variation(&speeds).expect("n >= 2"),
    }
}

/// Throughput of the 1-slave 50/50 cell with the slave pinned to a host.
pub fn pinned_host_run(host: CpuModel, fidelity: Fidelity) -> RunReport {
    let workload = match fidelity {
        Fidelity::Full => WorkloadConfig::paper(100),
        Fidelity::Quick => WorkloadConfig::quick(60),
    };
    let cfg = ClusterConfig::builder()
        .slaves(1)
        .placement(Placement::SameZone)
        .mix(MixConfig::RW_50_50)
        .data_size(DataSize::SMALL)
        .workload(workload)
        .cost(paper_cost_model())
        .pin_slave_host(Some(host))
        .seed(17)
        .build();
    run_cluster(cfg)
}

/// Render the experiment table. The two pinned-host runs are independent,
/// so they fan out across `jobs` workers.
pub fn table(fidelity: Fidelity, jobs: usize) -> Table {
    let fleet = fleet_speed_cov(2000, 5);
    let hosts = [CpuModel::XeonE5430, CpuModel::XeonE5507];
    let mut runs = parallel_map(&hosts, jobs, &Progress::Silent, |_, &host, _| {
        pinned_host_run(host, fidelity)
    })
    .into_iter();
    let fast = runs.next().expect("E5430 run");
    let slow = runs.next().expect("E5507 run");
    let mut t = Table::new(
        "instance performance variation (§IV-A)",
        vec!["measure".into(), "value".into(), "paper".into()],
    );
    t.push_row(vec![
        "small-instance CPU CoV".into(),
        format!("{:.1} %", fleet.cov * 100.0),
        "21 % (Schad et al.)".into(),
    ]);
    t.push_row(vec![
        "1-slave 50/50 throughput on E5430 host".into(),
        format!("{:.1} ops/s", fast.throughput_ops_s),
        "faster".into(),
    ]);
    t.push_row(vec![
        "1-slave 50/50 throughput on E5507 host".into(),
        format!("{:.1} ops/s", slow.throughput_ops_s),
        "slower (2.27 vs 2.66 GHz)".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_cov_near_21_percent() {
        let f = fleet_speed_cov(3000, 9);
        assert!((f.cov - 0.21).abs() < 0.04, "CoV {:.3}", f.cov);
        assert!(f.mean_speed > 0.5 && f.mean_speed < 1.2);
    }

    #[test]
    fn slow_host_yields_less_throughput() {
        let fast = pinned_host_run(CpuModel::XeonE5430, Fidelity::Quick);
        let slow = pinned_host_run(CpuModel::XeonE5507, Fidelity::Quick);
        assert!(
            slow.throughput_ops_s < fast.throughput_ops_s,
            "E5507 ({:.2}) must underperform E5430 ({:.2})",
            slow.throughput_ops_s,
            fast.throughput_ops_s
        );
    }
}
