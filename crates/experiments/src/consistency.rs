//! E-C: the consistency/performance trade-off sweep
//! (`extensions_consistency` binary).
//!
//! The paper measures the replication-delay window but routes reads
//! obliviously — every read risks the full window. The amdb-consistency
//! layer turns that window into a knob: `BoundedStaleness { max_ms }`
//! restricts reads to slaves estimated fresher than the bound, redirecting
//! the rest to the master. This sweep walks the knob from `0` (master-only
//! by construction) to `Eventual` (today's oblivious routing) across the
//! paper's three placements, measuring what each consistency guarantee
//! *costs*: the slave-served read share shrinks, the master absorbs the
//! redirected reads, and throughput degrades toward the master-only ceiling
//! — steeply in the cross-region placement where staleness is largest.
//!
//! Each cell seeds identically **per placement** (the bound is not part of
//! the cell key), so within a placement the arms differ only by policy and
//! the trade-off is attributable to the knob alone.

use crate::calib::paper_cost_model;
use crate::exec::parallel_map;
use crate::sweep::SweepOptions;
use crate::Fidelity;
use amdb_cloudstone::{build_template, DataCounters, DataSize, MixConfig, Phases, WorkloadConfig};
use amdb_core::{
    Cluster, ClusterConfig, ConsistencyConfig, ConsistencyPolicy, Placement, RunReport,
};
use amdb_metrics::Table;
use amdb_sim::{Rng, Sim};
use amdb_sql::Engine;
use std::sync::Arc;

/// The swept staleness bounds: `Some(ms)` = `BoundedStaleness`, `None` =
/// `Eventual` (the unbounded reference arm).
pub type Bound = Option<f64>;

/// Grid specification for the consistency sweep.
#[derive(Debug, Clone)]
pub struct ConsistencySpec {
    pub name: &'static str,
    pub users: u32,
    pub slaves: usize,
    pub mix: MixConfig,
    pub data_size: DataSize,
    /// Swept bounds, loosest-meaningful order is up to the caller; rendered
    /// in the order given.
    pub bounds: Vec<Bound>,
    pub placements: Vec<Placement>,
    pub phases: Phases,
    pub seed: u64,
}

impl ConsistencySpec {
    /// The full sweep: three placements × {0, 50, 250, 1000 ms, Eventual},
    /// paper phases. 15 cells.
    pub fn paper_set(f: Fidelity) -> ConsistencySpec {
        match f {
            Fidelity::Full => ConsistencySpec {
                name: "E-C (50/50, size 300, 150 users, 2 slaves)",
                users: 150,
                slaves: 2,
                mix: MixConfig::RW_50_50,
                data_size: DataSize::SMALL,
                bounds: vec![Some(0.0), Some(50.0), Some(250.0), Some(1000.0), None],
                placements: Placement::PAPER_SET.to_vec(),
                phases: Phases::paper(),
                seed: 71,
            },
            Fidelity::Quick => ConsistencySpec {
                name: "E-C quick (50/50, size 300)",
                users: 40,
                slaves: 2,
                mix: MixConfig::RW_50_50,
                data_size: DataSize::SMALL,
                bounds: vec![Some(0.0), Some(100.0), None],
                placements: vec![Placement::SameZone, Placement::PAPER_SET[2]],
                phases: Phases::quick(),
                seed: 71,
            },
        }
    }

    /// Per-placement seed. Deliberately *not* keyed on the bound: every arm
    /// of one placement replays the same workload, so the measured deltas
    /// are the policy's doing, not sampling noise.
    pub fn placement_seed(&self, placement: Placement) -> u64 {
        let label = format!("consistency/{placement:?}/users={}", self.users);
        Rng::new(self.seed).derive(&label).next_u64()
    }

    /// The cluster config for one cell.
    pub fn cell_config(&self, placement: Placement, bound: Bound) -> ClusterConfig {
        let mut workload = WorkloadConfig::paper(self.users);
        workload.phases = self.phases;
        let policy = match bound {
            Some(max_ms) => ConsistencyPolicy::BoundedStaleness { max_ms },
            None => ConsistencyPolicy::Eventual,
        };
        ClusterConfig::builder()
            .slaves(self.slaves)
            .placement(placement)
            .mix(self.mix)
            .data_size(self.data_size)
            .workload(workload)
            .cost(paper_cost_model())
            .consistency(ConsistencyConfig::new(policy))
            .seed(self.placement_seed(placement))
            .build()
    }

    /// The shared template database for this sweep.
    pub fn template(&self) -> (Engine, DataCounters) {
        let mut load_rng = Rng::new(self.seed).derive("load");
        build_template(self.data_size, &mut load_rng)
    }
}

/// One cell's outcome.
pub struct ConsistencyCell {
    pub placement: Placement,
    pub bound: Bound,
    pub report: RunReport,
}

/// Human/CSV label for a bound.
pub fn bound_label(bound: Bound) -> String {
    match bound {
        Some(ms) => format!("{ms:.0}"),
        None => "eventual".into(),
    }
}

/// Share of steady-window reads a slave served.
pub fn slave_read_share(r: &RunReport) -> f64 {
    if r.steady_reads == 0 {
        0.0
    } else {
        r.steady_slave_reads as f64 / r.steady_reads as f64
    }
}

/// Run the sweep, fanning cells across `opts.jobs` workers. Cells gather in
/// (placement, bound) grid order — output is byte-identical for any jobs
/// count.
pub fn run(spec: &ConsistencySpec, opts: &SweepOptions) -> Vec<ConsistencyCell> {
    let template = Arc::new(spec.template());
    let mut cells: Vec<(Placement, Bound)> =
        Vec::with_capacity(spec.placements.len() * spec.bounds.len());
    for &placement in &spec.placements {
        for &bound in &spec.bounds {
            cells.push((placement, bound));
        }
    }
    let template_ref = Arc::clone(&template);
    let reports = parallel_map(
        &cells,
        opts.jobs,
        &opts.progress,
        move |_, &(placement, bound), sink| {
            let (tpl, counters) = &*template_ref;
            let cfg = spec.cell_config(placement, bound);
            let label = placement.label(cfg.master_zone);
            let mut sim = Sim::new();
            let mut world = Cluster::with_template(cfg, tpl, counters.clone());
            world.schedule_timeline(&mut sim);
            sim.run(&mut world);
            let events = sim.events_executed();
            let report = world.report(events);
            sink.emit(format!(
                "{label} bound={}: {:.1} ops/s, slave share {:.2}",
                bound_label(bound),
                report.throughput_ops_s,
                slave_read_share(&report)
            ));
            report
        },
    );
    cells
        .into_iter()
        .zip(reports)
        .map(|((placement, bound), report)| ConsistencyCell {
            placement,
            bound,
            report,
        })
        .collect()
}

/// Render the sweep: one row per (placement, bound).
pub fn table(spec: &ConsistencySpec, cells: &[ConsistencyCell]) -> Table {
    let mut t = Table::new(
        format!(
            "{} — throughput & staleness-violation rate vs staleness bound",
            spec.name
        ),
        vec![
            "placement".into(),
            "bound (ms)".into(),
            "throughput (ops/s)".into(),
            "slave read share".into(),
            "redirects".into(),
            "violations (steady)".into(),
            "violation rate".into(),
            "served staleness mean (ms)".into(),
            "master util".into(),
        ],
    );
    let zone = spec.cell_config(spec.placements[0], None).master_zone;
    for c in cells {
        let r = &c.report;
        let cons = r.consistency.as_ref().expect("sweep always opts in");
        t.push_row(vec![
            c.placement.label(zone),
            bound_label(c.bound),
            format!("{:.1}", r.throughput_ops_s),
            format!("{:.3}", slave_read_share(r)),
            cons.redirects_master.to_string(),
            cons.sla_violations_steady.to_string(),
            format!("{:.4}", cons.violation_rate(r.steady_reads)),
            cons.served_staleness_mean_ms
                .map(|m| format!("{m:.1}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.2}", r.master_utilization),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thin_spec() -> ConsistencySpec {
        let mut spec = ConsistencySpec::paper_set(Fidelity::Quick);
        spec.users = 12;
        spec.placements = vec![Placement::SameZone];
        spec
    }

    #[test]
    fn tightening_the_bound_is_monotone_in_slave_share() {
        // The acceptance property, per placement: walking the bounds from
        // tightest to loosest (Eventual last) never *decreases* the
        // slave-served share, and the 0-bound arm is exactly master-only.
        let spec = {
            let mut s = thin_spec();
            s.placements = vec![Placement::SameZone, Placement::PAPER_SET[2]];
            s
        };
        let cells = run(&spec, &SweepOptions::serial());
        for &placement in &spec.placements {
            let shares: Vec<f64> = cells
                .iter()
                .filter(|c| c.placement == placement)
                .map(|c| slave_read_share(&c.report))
                .collect();
            assert_eq!(shares.len(), spec.bounds.len());
            assert_eq!(shares[0], 0.0, "{placement:?}: 0-bound is master-only");
            for w in shares.windows(2) {
                assert!(
                    w[0] <= w[1] + 1e-12,
                    "{placement:?}: share not monotone: {shares:?}"
                );
            }
        }
    }

    #[test]
    fn zero_bound_throughput_sits_at_the_master_ceiling() {
        let spec = thin_spec();
        let cells = run(&spec, &SweepOptions::serial());
        let at = |bound: Bound| {
            cells
                .iter()
                .find(|c| c.bound == bound)
                .map(|c| &c.report)
                .expect("cell exists")
        };
        // Master-only reads push master utilization above the eventual arm.
        assert!(
            at(Some(0.0)).master_utilization > at(None).master_utilization,
            "redirected reads must land on the master"
        );
        assert_eq!(at(Some(0.0)).steady_slave_reads, 0);
    }

    #[test]
    fn sweep_is_byte_identical_for_any_jobs_count() {
        let spec = thin_spec();
        let serial = table(&spec, &run(&spec, &SweepOptions::serial()));
        let parallel = table(&spec, &run(&spec, &SweepOptions::silent(3)));
        assert_eq!(serial.render(), parallel.render());
    }

    #[test]
    fn bound_labels() {
        assert_eq!(bound_label(Some(250.0)), "250");
        assert_eq!(bound_label(None), "eventual");
    }
}
