//! The main sweep: Figs 2/3 (end-to-end throughput) and 5/6 (average
//! relative replication delay).
//!
//! One sweep runs the full grid of {placement × slave count × concurrent
//! users} for a given read/write mix and data size. Every grid cell is one
//! complete benchmark run (idle → ramp-up → steady → ramp-down → drain);
//! throughput and replication delay come from the *same* run, as in the
//! paper, so Fig 2 pairs with Fig 5 and Fig 3 with Fig 6.

use crate::calib::paper_cost_model;
use crate::Fidelity;
use amdb_cloudstone::{build_template, DataSize, MixConfig, Phases, WorkloadConfig};
use amdb_core::{run_cluster, Cluster, ClusterConfig, Placement, RunReport};
use amdb_metrics::Table;
use amdb_sim::Sim;

/// Grid specification for one figure pair.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    pub name: &'static str,
    pub mix: MixConfig,
    pub data_size: DataSize,
    pub users: Vec<u32>,
    pub slaves: Vec<usize>,
    pub placements: Vec<Placement>,
    pub phases: Phases,
    pub seed: u64,
}

impl SweepSpec {
    /// Figs 2 & 5: 50/50 mix, data size 300, 50–200 users, 1–4 slaves,
    /// three placements.
    pub fn fig2_fig5(f: Fidelity) -> SweepSpec {
        match f {
            Fidelity::Full => SweepSpec {
                name: "fig2/fig5 (50/50, size 300)",
                mix: MixConfig::RW_50_50,
                data_size: DataSize::SMALL,
                users: (50..=200).step_by(25).collect(),
                slaves: (1..=4).collect(),
                placements: Placement::PAPER_SET.to_vec(),
                phases: Phases::paper(),
                seed: 42,
            },
            Fidelity::Quick => SweepSpec {
                name: "fig2/fig5 quick (50/50, size 300)",
                mix: MixConfig::RW_50_50,
                data_size: DataSize::SMALL,
                users: vec![50, 100, 175],
                slaves: vec![1, 2, 4],
                placements: vec![Placement::SameZone],
                phases: Phases::quick(),
                seed: 42,
            },
        }
    }

    /// Figs 3 & 6: 80/20 mix, data size 600, 50–450 users, 1–11 slaves.
    pub fn fig3_fig6(f: Fidelity) -> SweepSpec {
        match f {
            Fidelity::Full => SweepSpec {
                name: "fig3/fig6 (80/20, size 600)",
                mix: MixConfig::RW_80_20,
                data_size: DataSize::LARGE,
                users: (50..=450).step_by(50).collect(),
                slaves: (1..=11).collect(),
                placements: Placement::PAPER_SET.to_vec(),
                phases: Phases::paper(),
                seed: 43,
            },
            Fidelity::Quick => SweepSpec {
                name: "fig3/fig6 quick (80/20, size 600)",
                mix: MixConfig::RW_80_20,
                data_size: DataSize::LARGE,
                users: vec![50, 250, 450],
                slaves: vec![1, 5, 11],
                placements: vec![Placement::SameZone],
                phases: Phases::quick(),
                seed: 43,
            },
        }
    }

    /// The cluster config for one grid cell.
    pub fn cell_config(&self, placement: Placement, slaves: usize, users: u32) -> ClusterConfig {
        let mut workload = WorkloadConfig::paper(users);
        workload.phases = self.phases;
        ClusterConfig::builder()
            .slaves(slaves)
            .placement(placement)
            .mix(self.mix)
            .data_size(self.data_size)
            .workload(workload)
            .cost(paper_cost_model())
            .seed(self.seed)
            .build()
    }
}

/// Results for one placement: the two tables plus every raw report.
pub struct PlacementResult {
    pub placement: Placement,
    pub label: String,
    /// rows = users, cols = slave counts; cells = ops/s (Fig 2/3).
    pub throughput: Table,
    /// rows = users, cols = slave counts; cells = avg relative delay, ms
    /// (Fig 5/6).
    pub delay: Table,
    /// `reports[slave_idx][user_idx]`.
    pub reports: Vec<Vec<RunReport>>,
}

/// Run the full sweep. `progress` is called after each cell with a short
/// status line (use `|_| {}` to silence).
pub fn run_sweep(spec: &SweepSpec, mut progress: impl FnMut(&str)) -> Vec<PlacementResult> {
    // Load the template database once; fork it per run.
    let mut load_rng = amdb_sim::Rng::new(spec.seed).derive("load");
    let (template, counters) = build_template(spec.data_size, &mut load_rng);

    let mut out = Vec::with_capacity(spec.placements.len());
    for &placement in &spec.placements {
        let label = placement.label(spec.cell_config(placement, 1, 1).master_zone);
        let mut header = vec!["users".to_string()];
        for &s in &spec.slaves {
            header.push(format!("{s} slave{}", if s == 1 { "" } else { "s" }));
        }
        let mut throughput = Table::new(
            format!("{} — end-to-end throughput (ops/s) — {label}", spec.name),
            header.clone(),
        );
        let mut delay = Table::new(
            format!(
                "{} — avg relative replication delay (ms) — {label}",
                spec.name
            ),
            header,
        );

        let mut reports: Vec<Vec<RunReport>> = Vec::with_capacity(spec.slaves.len());
        for &slaves in &spec.slaves {
            let mut row = Vec::with_capacity(spec.users.len());
            for &users in &spec.users {
                let cfg = spec.cell_config(placement, slaves, users);
                let mut sim = Sim::new();
                let mut world = Cluster::with_template(cfg, &template, counters.clone());
                world.schedule_timeline(&mut sim);
                sim.run(&mut world);
                let events = sim.events_executed();
                let report = world.report(events);
                progress(&format!(
                    "{label} slaves={slaves} users={users}: {:.1} ops/s, delay {:?} ms",
                    report.throughput_ops_s,
                    report.avg_relative_delay_ms().map(|d| d.round())
                ));
                row.push(report);
            }
            reports.push(row);
        }

        for (ui, &users) in spec.users.iter().enumerate() {
            let t_cells: Vec<Option<f64>> = spec
                .slaves
                .iter()
                .enumerate()
                .map(|(si, _)| Some(reports[si][ui].throughput_ops_s))
                .collect();
            throughput.push_float_row(users.to_string(), &t_cells, 1);
            let d_cells: Vec<Option<f64>> = spec
                .slaves
                .iter()
                .enumerate()
                .map(|(si, _)| reports[si][ui].avg_relative_delay_ms())
                .collect();
            delay.push_float_row(users.to_string(), &d_cells, 1);
        }

        out.push(PlacementResult {
            placement,
            label,
            throughput,
            delay,
            reports,
        });
    }
    out
}

/// Convenience used by tests: run a single cell at quick fidelity.
pub fn run_cell(spec: &SweepSpec, placement: Placement, slaves: usize, users: u32) -> RunReport {
    run_cluster(spec.cell_config(placement, slaves, users))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_specs_are_thinned() {
        let q2 = SweepSpec::fig2_fig5(Fidelity::Quick);
        let f2 = SweepSpec::fig2_fig5(Fidelity::Full);
        assert!(q2.users.len() < f2.users.len());
        assert_eq!(f2.users, vec![50, 75, 100, 125, 150, 175, 200]);
        assert_eq!(f2.slaves, vec![1, 2, 3, 4]);
        let f3 = SweepSpec::fig3_fig6(Fidelity::Full);
        assert_eq!(f3.slaves.len(), 11);
        assert_eq!(f3.users.last(), Some(&450));
        assert_eq!(f3.placements.len(), 3);
    }

    #[test]
    fn cell_config_respects_spec() {
        let spec = SweepSpec::fig3_fig6(Fidelity::Quick);
        let cfg = spec.cell_config(Placement::SameZone, 5, 250);
        assert_eq!(cfg.n_slaves, 5);
        assert_eq!(cfg.workload.concurrent_users, 250);
        assert!((cfg.mix.read_fraction - 0.8).abs() < 1e-9);
        assert_eq!(cfg.data_size.scale, 600);
    }
}
