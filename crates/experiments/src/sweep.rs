//! The main sweep: Figs 2/3 (end-to-end throughput) and 5/6 (average
//! relative replication delay).
//!
//! One sweep runs the full grid of {placement × slave count × concurrent
//! users} for a given read/write mix and data size. Every grid cell is one
//! complete benchmark run (idle → ramp-up → steady → ramp-down → drain);
//! throughput and replication delay come from the *same* run, as in the
//! paper, so Fig 2 pairs with Fig 5 and Fig 3 with Fig 6.
//!
//! Grid cells are independent deterministic simulations, so the sweep fans
//! them out across the [`crate::exec`] worker pool: the template database is
//! loaded once and shared immutably ([`Arc`]), each cell's RNG streams
//! derive from the cell's own (seed, placement, slaves, users) key, and
//! results are gathered back in grid order — tables and CSVs are
//! byte-identical for every `--jobs` count.

use crate::calib::paper_cost_model;
use crate::exec::{parallel_map, Progress};
use crate::Fidelity;
use amdb_cloudstone::{build_template, DataCounters, DataSize, MixConfig, Phases, WorkloadConfig};
use amdb_core::{BackendKind, Cluster, ClusterConfig, Placement, RunReport};
use amdb_metrics::Table;
use amdb_sim::{Rng, Sim};
use amdb_sql::Engine;
use std::sync::Arc;

/// Grid specification for one figure pair.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    pub name: &'static str,
    pub mix: MixConfig,
    pub data_size: DataSize,
    pub users: Vec<u32>,
    pub slaves: Vec<usize>,
    pub placements: Vec<Placement>,
    pub phases: Phases,
    pub seed: u64,
    /// Replication backend for every cell. `Statement` replays the exact
    /// default pipeline, so `--backend statement` output is byte-identical
    /// to a flag-less run (cross-diffed by ci.sh).
    pub backend: BackendKind,
}

impl SweepSpec {
    /// Figs 2 & 5: 50/50 mix, data size 300, 50–200 users, 1–4 slaves,
    /// three placements.
    pub fn fig2_fig5(f: Fidelity) -> SweepSpec {
        match f {
            Fidelity::Full => SweepSpec {
                name: "fig2/fig5 (50/50, size 300)",
                mix: MixConfig::RW_50_50,
                data_size: DataSize::SMALL,
                users: (50..=200).step_by(25).collect(),
                slaves: (1..=4).collect(),
                placements: Placement::PAPER_SET.to_vec(),
                phases: Phases::paper(),
                seed: 42,
                backend: BackendKind::Statement,
            },
            Fidelity::Quick => SweepSpec {
                name: "fig2/fig5 quick (50/50, size 300)",
                mix: MixConfig::RW_50_50,
                data_size: DataSize::SMALL,
                users: vec![50, 100, 175],
                slaves: vec![1, 2, 4],
                placements: vec![Placement::SameZone],
                phases: Phases::quick(),
                seed: 42,
                backend: BackendKind::Statement,
            },
        }
    }

    /// Figs 3 & 6: 80/20 mix, data size 600, 50–450 users, 1–11 slaves.
    pub fn fig3_fig6(f: Fidelity) -> SweepSpec {
        match f {
            Fidelity::Full => SweepSpec {
                name: "fig3/fig6 (80/20, size 600)",
                mix: MixConfig::RW_80_20,
                data_size: DataSize::LARGE,
                users: (50..=450).step_by(50).collect(),
                slaves: (1..=11).collect(),
                placements: Placement::PAPER_SET.to_vec(),
                phases: Phases::paper(),
                seed: 43,
                backend: BackendKind::Statement,
            },
            Fidelity::Quick => SweepSpec {
                name: "fig3/fig6 quick (80/20, size 600)",
                mix: MixConfig::RW_80_20,
                data_size: DataSize::LARGE,
                users: vec![50, 250, 450],
                slaves: vec![1, 5, 11],
                placements: vec![Placement::SameZone],
                phases: Phases::quick(),
                seed: 43,
                backend: BackendKind::Statement,
            },
        }
    }

    /// Per-cell seed, derived from the sweep seed and the cell's own
    /// (placement, slaves, users) key. Every cell therefore owns its RNG
    /// streams outright: no cell's randomness depends on how many cells ran
    /// before it (or on which worker thread it lands on), which is what
    /// makes the parallel executor bit-compatible with the serial loop.
    pub fn cell_seed(&self, placement: Placement, slaves: usize, users: u32) -> u64 {
        let label = format!("cell/{placement:?}/slaves={slaves}/users={users}");
        Rng::new(self.seed).derive(&label).next_u64()
    }

    /// The cluster config for one grid cell.
    pub fn cell_config(&self, placement: Placement, slaves: usize, users: u32) -> ClusterConfig {
        let mut workload = WorkloadConfig::paper(users);
        workload.phases = self.phases;
        ClusterConfig::builder()
            .slaves(slaves)
            .placement(placement)
            .mix(self.mix)
            .data_size(self.data_size)
            .workload(workload)
            .cost(paper_cost_model())
            .backend(self.backend)
            .seed(self.cell_seed(placement, slaves, users))
            .build()
    }

    /// The shared template database for this sweep: loaded once from the
    /// sweep seed, then forked (copy-on-run) by every cell.
    pub fn template(&self) -> (Engine, DataCounters) {
        let mut load_rng = Rng::new(self.seed).derive("load");
        build_template(self.data_size, &mut load_rng)
    }
}

/// Results for one placement: the two tables plus every raw report.
pub struct PlacementResult {
    pub placement: Placement,
    pub label: String,
    /// rows = users, cols = slave counts; cells = ops/s (Fig 2/3).
    pub throughput: Table,
    /// rows = users, cols = slave counts; cells = avg relative delay, ms
    /// (Fig 5/6).
    pub delay: Table,
    /// `reports[slave_idx][user_idx]`.
    pub reports: Vec<Vec<RunReport>>,
}

/// How a sweep executes: worker count and progress reporting. The result is
/// identical for every `jobs` value — options only affect wall-clock and
/// stderr chatter.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    pub jobs: usize,
    pub progress: Progress,
}

impl SweepOptions {
    /// Single-threaded, silent — the baseline the determinism tests and
    /// benches compare against.
    pub fn serial() -> SweepOptions {
        SweepOptions {
            jobs: 1,
            progress: Progress::Silent,
        }
    }

    /// `jobs` workers, silent.
    pub fn silent(jobs: usize) -> SweepOptions {
        SweepOptions {
            jobs,
            progress: Progress::Silent,
        }
    }

    /// `jobs` workers, progress lines prefixed with `prefix` on stderr.
    pub fn with_progress(jobs: usize, prefix: &'static str) -> SweepOptions {
        SweepOptions {
            jobs,
            progress: Progress::Stderr(prefix),
        }
    }
}

/// Run one grid cell against a pre-built template.
fn run_cell_with_template(
    spec: &SweepSpec,
    template: &Engine,
    counters: &DataCounters,
    placement: Placement,
    slaves: usize,
    users: u32,
) -> RunReport {
    let cfg = spec.cell_config(placement, slaves, users);
    let mut sim = Sim::new();
    let mut world = Cluster::with_template(cfg, template, counters.clone());
    world.schedule_timeline(&mut sim);
    sim.run(&mut world);
    let events = sim.events_executed();
    world.report(events)
}

/// Run the full sweep, fanning the grid cells across `opts.jobs` worker
/// threads. The template database is loaded once and shared immutably;
/// every cell forks it. Results are gathered back in grid order, so the
/// returned tables are byte-identical for any jobs count.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> Vec<PlacementResult> {
    // Load the template database once; every cell forks it. `Engine` is
    // plain owned data (no interior mutability), so sharing `&template`
    // across the worker pool is sound by construction.
    let (template, counters) = spec.template();
    let template = Arc::new((template, counters));

    // Flatten the grid in (placement, slaves, users) order — the same order
    // the old serial loop used — and fan it out.
    let mut cells: Vec<(Placement, usize, u32)> =
        Vec::with_capacity(spec.placements.len() * spec.slaves.len() * spec.users.len());
    for &placement in &spec.placements {
        for &slaves in &spec.slaves {
            for &users in &spec.users {
                cells.push((placement, slaves, users));
            }
        }
    }

    let reports_flat: Vec<RunReport> = {
        let template = Arc::clone(&template);
        parallel_map(
            &cells,
            opts.jobs,
            &opts.progress,
            move |_, &(placement, slaves, users), sink| {
                let (tpl, counters) = &*template;
                let report = run_cell_with_template(spec, tpl, counters, placement, slaves, users);
                let label = placement.label(spec.cell_config(placement, 1, 1).master_zone);
                sink.emit(format!(
                    "{label} slaves={slaves} users={users}: {:.1} ops/s, delay {:?} ms",
                    report.throughput_ops_s,
                    report.avg_relative_delay_ms().map(|d| d.round())
                ));
                report
            },
        )
    };

    // Reassemble `reports[slave_idx][user_idx]` per placement and render the
    // two tables, exactly as the serial loop did.
    let per_placement = spec.slaves.len() * spec.users.len();
    let mut flat = reports_flat.into_iter();
    let mut out = Vec::with_capacity(spec.placements.len());
    for &placement in &spec.placements {
        let label = placement.label(spec.cell_config(placement, 1, 1).master_zone);
        let mut header = vec!["users".to_string()];
        for &s in &spec.slaves {
            header.push(format!("{s} slave{}", if s == 1 { "" } else { "s" }));
        }
        let mut throughput = Table::new(
            format!("{} — end-to-end throughput (ops/s) — {label}", spec.name),
            header.clone(),
        );
        let mut delay = Table::new(
            format!(
                "{} — avg relative replication delay (ms) — {label}",
                spec.name
            ),
            header,
        );

        let mut reports: Vec<Vec<RunReport>> = Vec::with_capacity(spec.slaves.len());
        for _ in &spec.slaves {
            let row: Vec<RunReport> = flat.by_ref().take(spec.users.len()).collect();
            debug_assert_eq!(row.len(), spec.users.len());
            reports.push(row);
        }
        debug_assert_eq!(reports.len() * spec.users.len(), per_placement);

        for (ui, &users) in spec.users.iter().enumerate() {
            let t_cells: Vec<Option<f64>> = spec
                .slaves
                .iter()
                .enumerate()
                .map(|(si, _)| Some(reports[si][ui].throughput_ops_s))
                .collect();
            throughput.push_float_row(users.to_string(), &t_cells, 1);
            let d_cells: Vec<Option<f64>> = spec
                .slaves
                .iter()
                .enumerate()
                .map(|(si, _)| reports[si][ui].avg_relative_delay_ms())
                .collect();
            delay.push_float_row(users.to_string(), &d_cells, 1);
        }

        out.push(PlacementResult {
            placement,
            label,
            throughput,
            delay,
            reports,
        });
    }
    out
}

/// Convenience used by tests and benches: run a single cell exactly as the
/// sweep would (shared-template fork + per-cell seed).
pub fn run_cell(spec: &SweepSpec, placement: Placement, slaves: usize, users: u32) -> RunReport {
    let (template, counters) = spec.template();
    run_cell_with_template(spec, &template, &counters, placement, slaves, users)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_specs_are_thinned() {
        let q2 = SweepSpec::fig2_fig5(Fidelity::Quick);
        let f2 = SweepSpec::fig2_fig5(Fidelity::Full);
        assert!(q2.users.len() < f2.users.len());
        assert_eq!(f2.users, vec![50, 75, 100, 125, 150, 175, 200]);
        assert_eq!(f2.slaves, vec![1, 2, 3, 4]);
        let f3 = SweepSpec::fig3_fig6(Fidelity::Full);
        assert_eq!(f3.slaves.len(), 11);
        assert_eq!(f3.users.last(), Some(&450));
        assert_eq!(f3.placements.len(), 3);
    }

    #[test]
    fn cell_seeds_are_distinct_per_cell_and_stable() {
        let spec = SweepSpec::fig2_fig5(Fidelity::Full);
        let mut seen = std::collections::HashSet::new();
        for &placement in &spec.placements {
            for &slaves in &spec.slaves {
                for &users in &spec.users {
                    let s = spec.cell_seed(placement, slaves, users);
                    assert!(
                        seen.insert(s),
                        "duplicate cell seed for {placement:?}/{slaves}/{users}"
                    );
                    // Stable: same key → same seed.
                    assert_eq!(s, spec.cell_seed(placement, slaves, users));
                }
            }
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep() {
        let mut spec = SweepSpec::fig2_fig5(Fidelity::Quick);
        // Thin the quick grid further: this is a unit test, not a bench.
        spec.users = vec![50, 100];
        spec.slaves = vec![1, 2];
        let serial = run_sweep(&spec, &SweepOptions::serial());
        let parallel = run_sweep(&spec, &SweepOptions::silent(4));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.throughput.render(), p.throughput.render());
            assert_eq!(s.delay.render(), p.delay.render());
            for (srow, prow) in s.reports.iter().zip(&p.reports) {
                for (sr, pr) in srow.iter().zip(prow) {
                    assert_eq!(sr.throughput_ops_s.to_bits(), pr.throughput_ops_s.to_bits());
                    assert_eq!(
                        sr.avg_relative_delay_ms().map(f64::to_bits),
                        pr.avg_relative_delay_ms().map(f64::to_bits)
                    );
                }
            }
        }
    }

    #[test]
    fn run_cell_reproduces_the_matching_sweep_cell() {
        let mut spec = SweepSpec::fig2_fig5(Fidelity::Quick);
        spec.users = vec![50, 100];
        spec.slaves = vec![1, 2];
        let swept = run_sweep(&spec, &SweepOptions::serial());
        let lone = run_cell(&spec, spec.placements[0], spec.slaves[1], spec.users[0]);
        let cell = &swept[0].reports[1][0];
        assert_eq!(
            lone.throughput_ops_s.to_bits(),
            cell.throughput_ops_s.to_bits()
        );
    }

    #[test]
    fn cell_config_respects_spec() {
        let spec = SweepSpec::fig3_fig6(Fidelity::Quick);
        let cfg = spec.cell_config(Placement::SameZone, 5, 250);
        assert_eq!(cfg.n_slaves, 5);
        assert_eq!(cfg.workload.concurrent_users, 250);
        assert!((cfg.mix.read_fraction - 0.8).abs() < 1e-9);
        assert_eq!(cfg.data_size.scale, 600);
    }
}
