//! Calibration: mapping the paper's observed operating points onto the cost
//! model.
//!
//! The paper does not publish service demands, so we derive them from its
//! *observed saturation points* (see EXPERIMENTS.md, "Calibration", for the
//! algebra). In summary, with think time Z ≈ 6 s:
//!
//! * 50/50, size 300: one slave saturates near 100 users (X ≈ 16 ops/s) and
//!   the master caps total throughput near 22–23 ops/s ⇒ read demand
//!   ≈ 105 ms, write demand ≈ 85 ms, apply demand ≈ 18 ms per op.
//! * 80/20, size 600: the master-cap transition lands at 9–10 slaves and
//!   total throughput tops out near 60 ops/s ⇒ read demand ≈ 170 ms with
//!   the same write/apply demands.
//!
//! Reads cost what their rows-examined say (≈65 rows at size 300, ≈95 at
//! size 600 across the mix) at ≈1.55 ms/row — a defensible blended cost of
//! random index probes on an EBS-backed m1.small. Writes are commit-
//! dominated (fsync ≈ 70 ms); slave applies skip client protocol and fsync
//! (relaxed durability on replicas) and are an order of magnitude cheaper,
//! which is what lets the slave fan-out scale until the master becomes the
//! bottleneck — the paper's central observation.

use amdb_sql::cost::CostModel;

/// The calibrated cost model used by every figure runner.
pub fn paper_cost_model() -> CostModel {
    // The calibrated constants are the crate-wide defaults; this alias keeps
    // the experiment code explicit about where its numbers come from.
    CostModel::default()
}

/// Mean think time (seconds) used by all workloads (Cloudstone-style).
pub const THINK_TIME_S: f64 = 6.0;

#[cfg(test)]
mod tests {
    use super::*;
    use amdb_cloudstone::{build_template, DataSize, MixConfig, OpGenerator};
    use amdb_sim::Rng;
    use amdb_sql::{ForkRole, Session};

    /// Measure the mean demand (ms) of reads / writes / applies for a mix
    /// and data size by executing a few hundred generated operations.
    fn measure(mix: MixConfig, size: DataSize) -> (f64, f64, f64) {
        let cost = paper_cost_model();
        let mut rng = Rng::new(99);
        let (template, counters) = build_template(size, &mut rng);
        let mut master = template.fork(ForkRole::Master(amdb_sql::BinlogFormat::Statement));
        let mut slave = template.fork(ForkRole::Slave);
        let mut gen = OpGenerator::new(counters, rng.derive("ops"));
        let mut session = Session::new();

        let (mut r_sum, mut r_n, mut w_sum, mut w_n, mut a_sum, mut a_n) =
            (0.0, 0u32, 0.0, 0u32, 0.0, 0u32);
        let mut shipped = amdb_sql::Lsn(0);
        for _ in 0..600 {
            let op = gen.generate(mix);
            let mut demand = 0.0;
            for (sql, params) in &op.statements {
                let res = master.execute(&mut session, sql, params).unwrap();
                demand += cost.statement_demand_us(&res, res.rows_affected > 0);
            }
            match op.class {
                amdb_cloudstone::OpClass::Read => {
                    r_sum += demand / 1e3;
                    r_n += 1;
                }
                amdb_cloudstone::OpClass::Write => {
                    demand += cost.commit_us;
                    w_sum += demand / 1e3;
                    w_n += 1;
                    // apply the new events on the slave and cost them
                    let events: Vec<_> = master.binlog_from(shipped).to_vec();
                    shipped = master.binlog().head();
                    let mut apply = 0.0;
                    for ev in &events {
                        let res = slave.apply_event(ev, 0).unwrap();
                        apply += cost.apply_demand_us(&res);
                    }
                    a_sum += apply / 1e3;
                    a_n += 1;
                }
            }
        }
        (r_sum / r_n as f64, w_sum / w_n as f64, a_sum / a_n as f64)
    }

    #[test]
    fn demands_match_derivation_small() {
        let (r, w, a) = measure(MixConfig::RW_50_50, DataSize::SMALL);
        assert!(
            (85.0..125.0).contains(&r),
            "read demand {r:.1} ms (target ~105)"
        );
        assert!(
            (65.0..110.0).contains(&w),
            "write demand {w:.1} ms (target ~85)"
        );
        assert!(
            (8.0..30.0).contains(&a),
            "apply demand {a:.1} ms (target ~18)"
        );
    }

    #[test]
    fn demands_match_derivation_large() {
        let (r, w, a) = measure(MixConfig::RW_80_20, DataSize::LARGE);
        assert!(
            (125.0..190.0).contains(&r),
            "read demand {r:.1} ms (target ~150-170)"
        );
        assert!((65.0..110.0).contains(&w), "write demand {w:.1} ms");
        assert!((8.0..30.0).contains(&a), "apply demand {a:.1} ms");
    }

    #[test]
    fn larger_data_means_costlier_reads() {
        let (r_small, _, _) = measure(MixConfig::RW_50_50, DataSize::SMALL);
        let (r_large, _, _) = measure(MixConfig::RW_50_50, DataSize::LARGE);
        assert!(
            r_large > r_small * 1.3,
            "size 600 reads ({r_large:.1}) cost more than size 300 ({r_small:.1})"
        );
    }
}
