//! # amdb-experiments — one runner per paper figure/table
//!
//! Each module regenerates one experiment from the paper's evaluation
//! (§IV); the binaries in `src/bin/` print the same rows/series the paper
//! plots. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`sweep`]   | Figs 2 & 3 (throughput) and 5 & 6 (relative delay) |
//! | [`fig4`]    | Fig 4 (clock sync / NTP) |
//! | [`rtt`]     | §IV-B.2 in-text ½-RTT table |
//! | [`perfvar`] | §IV-A instance performance variation |
//! | [`ablations`] | A1 sync modes, A2 balancers, A3 binlog formats |
//! | [`extensions`] | E-F failover, E-A staleness-SLO autoscaling |
//! | [`consistency`] | E-C throughput vs staleness bound (amdb-consistency) |
//! | [`parallel_apply`] | E-PA staleness vs apply workers (amdb-apply) |
//! | [`sharded`] | fig2_sharded scale-out past the single-master ceiling (amdb-shard) |
//! | [`shared_log`] | E-SL backend comparison + fault-injected quorum recovery (amdb-repl) |
//! | [`calib`]   | calibration constants + their derivation checks |
//! | [`obs_report`] | observed run + steady-window bottleneck attribution |
//! | [`obs_slo`] | online SLO/alert sweep with delay-surge attribution |
//! | [`fleet`] | fleet_report: per-shard top table + OpenMetrics dump |
//! | [`exec`]    | deterministic parallel executor behind the sweeps |

pub mod ablations;
pub mod calib;
pub mod consistency;
pub mod exec;
pub mod extensions;
pub mod fig4;
pub mod fleet;
pub mod obs_report;
pub mod obs_slo;
pub mod parallel_apply;
pub mod perfvar;
pub mod rtt;
pub mod sharded;
pub mod shared_log;
pub mod sweep;

/// Write a results table as CSV under `results/` (best-effort: failures to
/// create the directory or file are reported to stderr, not fatal — the
/// rendered table already went to stdout).
pub fn write_results_csv(figure: &str, label: &str, table: &amdb_metrics::Table) {
    let slug: String = label
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("results/: {e}");
        return;
    }
    let path = dir.join(format!("{figure}_{slug}.csv"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            if let Err(e) = amdb_metrics::write_csv(table, &mut f) {
                eprintln!("{}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("{}: {e}", path.display()),
    }
}

/// Fidelity of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// The paper's full 35-minute runs and full sweep grids. Minutes of host
    /// time per figure.
    Full,
    /// Shrunk phases and thinned grids; shapes survive, absolute sample
    /// counts shrink. Used by tests and Criterion benches.
    Quick,
}

impl Fidelity {
    /// Parse from a CLI flag (`--full` anywhere in args → Full).
    pub fn from_args() -> Fidelity {
        if std::env::args().any(|a| a == "--full") {
            Fidelity::Full
        } else {
            Fidelity::Quick
        }
    }
}
