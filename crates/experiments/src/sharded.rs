//! The sharded scale-out sweep (fig2_sharded): throughput vs users at
//! shard counts {1, 2, 4, 8}, plus the cross-shard read ablation.
//!
//! Every grid cell is one complete sharded benchmark run (N independent
//! replication trees behind one scatter-gather front, see
//! `amdb-core::sharded`). Cells are independent deterministic simulations
//! and fan out across the [`crate::exec`] worker pool exactly like the
//! fig2/fig3 sweeps: one shared template database, per-cell derived seeds,
//! results gathered in grid order — byte-identical for every `--jobs`
//! count.
//!
//! The `shards = 1` column is *byte-identical to the unsharded sweep
//! machinery* on the same (placement, slaves, users) cell: the cell seed
//! uses the same derivation label as [`SweepSpec::cell_seed`], and a
//! one-shard world replays the standalone cluster's event sequence
//! bit-for-bit (pinned by tests here and in `amdb-core`).

use crate::calib::paper_cost_model;
use crate::exec::parallel_map;
use crate::sweep::SweepOptions;
use crate::Fidelity;
use amdb_cloudstone::{build_template, DataCounters, DataSize, MixConfig, Phases, WorkloadConfig};
use amdb_core::sharded::run_sharded_with_template;
use amdb_core::{ClusterConfig, Placement, ShardedConfig, ShardedReport};
use amdb_metrics::Table;
use amdb_sim::Rng;
use amdb_sql::Engine;
use std::sync::Arc;

/// Grid specification for one sharded sweep.
#[derive(Debug, Clone)]
pub struct ShardedSweepSpec {
    pub name: &'static str,
    pub mix: MixConfig,
    pub data_size: DataSize,
    pub users: Vec<u32>,
    pub shards: Vec<u32>,
    pub slaves_per_shard: usize,
    /// Fraction of reads scatter-gathered across every shard.
    pub cross_fraction: f64,
    pub placement: Placement,
    pub phases: Phases,
    pub seed: u64,
}

impl ShardedSweepSpec {
    /// The scale-out grid: 50/50 mix, fig2's data size, shard counts
    /// {1, 2, 4, 8} over a user grid reaching well past the single-master
    /// ceiling (10⁵ users). No cross-shard reads: this measures the pure
    /// scale-out envelope.
    pub fn scaleout(f: Fidelity) -> ShardedSweepSpec {
        match f {
            Fidelity::Full => ShardedSweepSpec {
                name: "fig2_sharded (50/50, size 300, cross 0%)",
                mix: MixConfig::RW_50_50,
                data_size: DataSize::SMALL,
                users: vec![200, 1_000, 5_000, 25_000, 100_000],
                shards: vec![1, 2, 4, 8],
                slaves_per_shard: 2,
                cross_fraction: 0.0,
                placement: Placement::SameZone,
                phases: Phases::paper(),
                seed: 42,
            },
            Fidelity::Quick => ShardedSweepSpec {
                name: "fig2_sharded quick (50/50, size 300, cross 0%)",
                mix: MixConfig::RW_50_50,
                data_size: DataSize::SMALL,
                users: vec![50, 200, 800],
                shards: vec![1, 2, 4],
                slaves_per_shard: 1,
                cross_fraction: 0.0,
                placement: Placement::SameZone,
                phases: Phases::quick(),
                seed: 42,
            },
        }
    }

    /// One arm of the cross-shard ablation: the scale-out config pinned at
    /// 4 shards with `cross` of the reads scatter-gathered. Cell seeds do
    /// not include the fraction, so every arm runs the identical trees and
    /// user streams — the measured delta is the scatter-gather tax alone.
    pub fn cross_ablation(f: Fidelity, cross: f64) -> ShardedSweepSpec {
        match f {
            Fidelity::Full => ShardedSweepSpec {
                name: "fig2_sharded cross-shard ablation (4 shards)",
                mix: MixConfig::RW_50_50,
                data_size: DataSize::SMALL,
                users: vec![1_000, 5_000, 25_000],
                shards: vec![4],
                slaves_per_shard: 2,
                cross_fraction: cross,
                placement: Placement::SameZone,
                phases: Phases::paper(),
                seed: 42,
            },
            Fidelity::Quick => ShardedSweepSpec {
                name: "fig2_sharded cross-shard ablation quick (2 shards)",
                mix: MixConfig::RW_50_50,
                data_size: DataSize::SMALL,
                users: vec![100, 400],
                shards: vec![2],
                slaves_per_shard: 1,
                cross_fraction: cross,
                placement: Placement::SameZone,
                phases: Phases::quick(),
                seed: 42,
            },
        }
    }

    /// The ablation's cross-fraction arms.
    pub fn ablation_fractions() -> [f64; 3] {
        [0.0, 0.05, 0.20]
    }

    /// Per-cell base seed. Deliberately the same derivation label as
    /// [`crate::sweep::SweepSpec::cell_seed`] — with the same sweep seed,
    /// a `shards = 1` cell reproduces the unsharded sweep cell exactly.
    /// (The fraction is excluded: ablation arms share trees and users.)
    pub fn cell_seed(&self, users: u32) -> u64 {
        let label = format!(
            "cell/{:?}/slaves={}/users={}",
            self.placement, self.slaves_per_shard, users
        );
        Rng::new(self.seed).derive(&label).next_u64()
    }

    /// The per-tree base config for one grid cell.
    pub fn cell_base_config(&self, users: u32) -> ClusterConfig {
        let mut workload = WorkloadConfig::paper(users);
        workload.phases = self.phases;
        ClusterConfig::builder()
            .slaves(self.slaves_per_shard)
            .placement(self.placement)
            .mix(self.mix)
            .data_size(self.data_size)
            .workload(workload)
            .cost(paper_cost_model())
            .seed(self.cell_seed(users))
            .build()
    }

    /// The full sharded config for one grid cell.
    pub fn cell_config(&self, shards: u32, users: u32) -> ShardedConfig {
        ShardedConfig::new(shards, self.cell_base_config(users))
            .cross_shard_read_fraction(self.cross_fraction)
    }

    /// The shared template database (same derivation as the unsharded
    /// sweeps: sweep seed → `"load"` stream).
    pub fn template(&self) -> (Engine, DataCounters) {
        let mut load_rng = Rng::new(self.seed).derive("load");
        build_template(self.data_size, &mut load_rng)
    }
}

/// Results of one sharded sweep.
pub struct ShardedSweepResult {
    pub label: String,
    /// rows = users, cols = shard counts; cells = ops/s.
    pub throughput: Table,
    /// rows = users, cols = shard counts; cells = p95 latency, ms.
    pub latency_p95: Table,
    /// `reports[shard_idx][user_idx]`.
    pub reports: Vec<Vec<ShardedReport>>,
}

/// Run the full sharded grid, fanning cells across `opts.jobs` workers.
/// Results are gathered in grid order: byte-identical for any jobs count.
pub fn run_sharded_sweep(spec: &ShardedSweepSpec, opts: &SweepOptions) -> ShardedSweepResult {
    let template = Arc::new(spec.template());

    let mut cells: Vec<(u32, u32)> = Vec::with_capacity(spec.shards.len() * spec.users.len());
    for &shards in &spec.shards {
        for &users in &spec.users {
            cells.push((shards, users));
        }
    }

    let reports_flat: Vec<ShardedReport> = {
        let template = Arc::clone(&template);
        parallel_map(
            &cells,
            opts.jobs,
            &opts.progress,
            move |_, &(shards, users), sink| {
                let (tpl, counters) = &*template;
                let cfg = spec.cell_config(shards, users);
                let report = run_sharded_with_template(&cfg, tpl, counters.clone());
                sink.emit(format!(
                    "shards={shards} users={users}: {:.1} ops/s, p95 {:?} ms, \
                     scatter {} reads / {} legs ({} filtered), bottleneck {}",
                    report.throughput_ops_s,
                    report.latency_ms.as_ref().map(|s| s.p95.round()),
                    report.scatter_reads,
                    report.scatter_legs,
                    report.scatter_filtered_legs,
                    report.busiest_shard_label(),
                ));
                report
            },
        )
    };

    // Reassemble `reports[shard_idx][user_idx]` and render the tables.
    let mut header = vec!["users".to_string()];
    for &k in &spec.shards {
        header.push(format!("{k} shard{}", if k == 1 { "" } else { "s" }));
    }
    let label = format!("cross{}pct", (spec.cross_fraction * 100.0).round() as u32);
    let mut throughput = Table::new(
        format!("{} — end-to-end throughput (ops/s)", spec.name),
        header.clone(),
    );
    let mut latency_p95 = Table::new(format!("{} — p95 latency (ms)", spec.name), header);

    let mut flat = reports_flat.into_iter();
    let mut reports: Vec<Vec<ShardedReport>> = Vec::with_capacity(spec.shards.len());
    for _ in &spec.shards {
        let row: Vec<ShardedReport> = flat.by_ref().take(spec.users.len()).collect();
        debug_assert_eq!(row.len(), spec.users.len());
        reports.push(row);
    }

    for (ui, &users) in spec.users.iter().enumerate() {
        let t_cells: Vec<Option<f64>> = (0..spec.shards.len())
            .map(|si| Some(reports[si][ui].throughput_ops_s))
            .collect();
        throughput.push_float_row(users.to_string(), &t_cells, 1);
        let l_cells: Vec<Option<f64>> = (0..spec.shards.len())
            .map(|si| reports[si][ui].latency_ms.as_ref().map(|s| s.p95))
            .collect();
        latency_p95.push_float_row(users.to_string(), &l_cells, 1);
    }

    ShardedSweepResult {
        label,
        throughput,
        latency_p95,
        reports,
    }
}

/// Run one grid cell exactly as the sweep would (shared-template fork +
/// per-cell seed). Used by tests and the bench binary.
pub fn run_sharded_cell(spec: &ShardedSweepSpec, shards: u32, users: u32) -> ShardedReport {
    let (template, counters) = spec.template();
    run_sharded_with_template(&spec.cell_config(shards, users), &template, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepSpec;

    /// The acceptance identity: a `shards = 1` cell of this sweep is
    /// byte-identical to the unsharded fig2 sweep machinery on the same
    /// (placement, slaves, users) cell and sweep seed.
    #[test]
    fn one_shard_cell_matches_the_unsharded_sweep_cell() {
        let sharded_spec = ShardedSweepSpec::scaleout(Fidelity::Quick);
        let mut flat_spec = SweepSpec::fig2_fig5(Fidelity::Quick);
        flat_spec.users = vec![50];
        flat_spec.slaves = vec![sharded_spec.slaves_per_shard];
        assert_eq!(flat_spec.seed, sharded_spec.seed, "specs must share a seed");

        let flat = crate::sweep::run_cell(
            &flat_spec,
            sharded_spec.placement,
            sharded_spec.slaves_per_shard,
            50,
        );
        let sharded = run_sharded_cell(&sharded_spec, 1, 50);
        assert_eq!(sharded.steady_ops, flat.steady_ops);
        assert_eq!(sharded.steady_slave_reads, flat.steady_slave_reads);
        assert_eq!(
            sharded.throughput_ops_s.to_bits(),
            flat.throughput_ops_s.to_bits()
        );
        assert_eq!(
            format!("{:?}", sharded.latency_ms),
            format!("{:?}", flat.latency_ms)
        );
        assert_eq!(
            format!("{:?}", sharded.per_shard[0].delays),
            format!("{:?}", flat.delays)
        );
    }

    /// Cross-jobs determinism: the whole sharded grid renders identically
    /// serial and parallel.
    #[test]
    fn parallel_sharded_sweep_matches_serial() {
        let mut spec = ShardedSweepSpec::scaleout(Fidelity::Quick);
        spec.users = vec![50, 100];
        spec.shards = vec![1, 2];
        let serial = run_sharded_sweep(&spec, &SweepOptions::serial());
        let parallel = run_sharded_sweep(&spec, &SweepOptions::silent(4));
        assert_eq!(serial.throughput.render(), parallel.throughput.render());
        assert_eq!(serial.latency_p95.render(), parallel.latency_p95.render());
        for (srow, prow) in serial.reports.iter().zip(&parallel.reports) {
            for (s, p) in srow.iter().zip(prow) {
                assert_eq!(s.throughput_ops_s.to_bits(), p.throughput_ops_s.to_bits());
                assert_eq!(s.scatter_reads, p.scatter_reads);
            }
        }
    }

    /// The ablation arms share cell seeds (the fraction is excluded from
    /// the derivation), so the tax is measured against identical trees.
    #[test]
    fn ablation_arms_share_cell_seeds() {
        let a = ShardedSweepSpec::cross_ablation(Fidelity::Quick, 0.0);
        let b = ShardedSweepSpec::cross_ablation(Fidelity::Quick, 0.20);
        for &u in &a.users {
            assert_eq!(a.cell_seed(u), b.cell_seed(u));
        }
        assert_eq!(ShardedSweepSpec::ablation_fractions(), [0.0, 0.05, 0.20]);
    }
}
