//! E-PA: the parallel-apply extension sweep (`extensions_parallel_apply`
//! binary).
//!
//! The paper's replication-delay surge (Figs 5/6) is an apply-path capacity
//! problem: the slave's serial SQL thread pays full per-transaction commit
//! overhead for every binlog event while the master batches concurrent
//! clients. The amdb-apply scheduler attacks exactly that term — row-format
//! events with disjoint writesets group-commit as one batch, paying the
//! apply overhead and commit fsync once per *batch* instead of once per
//! event, while LSN commit order is preserved.
//!
//! This sweep walks `apply_workers ∈ {1, 2, 4, 8}` over two grids: a
//! fig5-style 50/50 grid and a write-heavy surge grid (the A3 stress mix,
//! where the apply path dominates the slave). Every cell runs the
//! **row-format** binlog, because statement events are scheduling barriers
//! and parallelism cannot help them.
//!
//! Row-format heartbeats ship the master's `NOW_MICROS()` value verbatim,
//! so the paper's heartbeat-differencing delay probe reads 0 by
//! construction (see the A3 ablation). Staleness is therefore measured by
//! the consistency layer's true-staleness probe — every slave-served read
//! records how far the serving slave trailed the master binlog at service
//! start. `ConsistencyPolicy::Eventual` keeps routing oblivious (pure
//! bookkeeping), so the arms differ only by worker count.
//!
//! Each cell seeds identically **per (grid, users)** — the worker count is
//! not part of the cell key — so within a column the arms replay the same
//! workload and the staleness deltas are the scheduler's doing alone.

use crate::calib::paper_cost_model;
use crate::exec::parallel_map;
use crate::sweep::SweepOptions;
use crate::Fidelity;
use amdb_cloudstone::{build_template, DataCounters, DataSize, MixConfig, Phases, WorkloadConfig};
use amdb_core::{
    Cluster, ClusterConfig, ConsistencyConfig, ConsistencyPolicy, Placement, RunReport,
};
use amdb_metrics::Table;
use amdb_sim::{Rng, Sim};
use amdb_sql::binlog::BinlogFormat;
use amdb_sql::Engine;
use std::sync::Arc;

/// One user-load column family: a mix, a data size and the user counts to
/// sweep at that mix.
#[derive(Debug, Clone)]
pub struct ApplyGrid {
    pub label: &'static str,
    pub mix: MixConfig,
    pub data_size: DataSize,
    pub users: Vec<u32>,
}

/// Grid specification for the parallel-apply sweep.
#[derive(Debug, Clone)]
pub struct ParallelApplySpec {
    pub name: &'static str,
    pub grids: Vec<ApplyGrid>,
    /// Swept worker counts, rendered in the order given.
    pub workers: Vec<usize>,
    pub slaves: usize,
    pub phases: Phases,
    pub seed: u64,
}

/// The A3 stress mix: 20/80 write-heavy, where the slave apply thread is
/// the bottleneck and the delay surge is steepest.
pub const WRITE_HEAVY: MixConfig = MixConfig { read_fraction: 0.2 };

impl ParallelApplySpec {
    /// The full sweep: two grids × three user counts × {1, 2, 4, 8}
    /// workers. 24 cells.
    pub fn paper_set(f: Fidelity) -> ParallelApplySpec {
        match f {
            Fidelity::Full => ParallelApplySpec {
                name: "E-PA (row binlog, 2 slaves)",
                grids: vec![
                    ApplyGrid {
                        label: "fig5-style (50/50, size 300)",
                        mix: MixConfig::RW_50_50,
                        data_size: DataSize::SMALL,
                        users: vec![100, 150, 200],
                    },
                    ApplyGrid {
                        label: "surge (20/80, size 600)",
                        mix: WRITE_HEAVY,
                        data_size: DataSize::LARGE,
                        users: vec![75, 125, 175],
                    },
                ],
                workers: vec![1, 2, 4, 8],
                slaves: 2,
                phases: Phases::paper(),
                seed: 97,
            },
            Fidelity::Quick => ParallelApplySpec {
                name: "E-PA quick (row binlog, 2 slaves)",
                grids: vec![
                    ApplyGrid {
                        label: "fig5-style (50/50, size 300)",
                        mix: MixConfig::RW_50_50,
                        data_size: DataSize::SMALL,
                        users: vec![60],
                    },
                    ApplyGrid {
                        label: "surge (20/80, size 300)",
                        mix: WRITE_HEAVY,
                        data_size: DataSize::SMALL,
                        users: vec![200],
                    },
                ],
                workers: vec![1, 4],
                slaves: 2,
                phases: Phases::quick(),
                seed: 97,
            },
        }
    }

    /// Per-(grid, users) seed. Deliberately *not* keyed on the worker
    /// count: every worker arm of one column replays the same workload, so
    /// the measured deltas are the scheduler's doing, not sampling noise.
    pub fn column_seed(&self, grid: &ApplyGrid, users: u32) -> u64 {
        let label = format!("parallel-apply/{}/users={users}", grid.label);
        Rng::new(self.seed).derive(&label).next_u64()
    }

    /// The cluster config for one cell.
    pub fn cell_config(&self, grid: &ApplyGrid, users: u32, workers: usize) -> ClusterConfig {
        let mut workload = WorkloadConfig::paper(users);
        workload.phases = self.phases;
        ClusterConfig::builder()
            .slaves(self.slaves)
            .placement(Placement::SameZone)
            .mix(grid.mix)
            .data_size(grid.data_size)
            .workload(workload)
            .cost(paper_cost_model())
            .format(BinlogFormat::Row)
            .apply_workers(workers)
            // Eventual = oblivious routing, bookkeeping only — opted in
            // purely for the true-staleness probe.
            .consistency(ConsistencyConfig::new(ConsistencyPolicy::Eventual))
            .seed(self.column_seed(grid, users))
            .build()
    }

    /// The shared template database for one grid.
    pub fn grid_template(&self, grid: &ApplyGrid) -> (Engine, DataCounters) {
        let mut load_rng = Rng::new(self.seed).derive("load");
        build_template(grid.data_size, &mut load_rng)
    }
}

/// One cell's outcome.
pub struct ApplyCell {
    pub grid: &'static str,
    pub users: u32,
    pub workers: usize,
    pub report: RunReport,
}

/// Mean events per apply batch — 1.0 exactly under the serial thread.
pub fn mean_batch(r: &RunReport) -> f64 {
    if r.apply_batches == 0 {
        0.0
    } else {
        r.apply_events as f64 / r.apply_batches as f64
    }
}

/// Worst true staleness any slave-served read observed (ms); 0 when no
/// slave read was measured.
pub fn staleness_max_ms(r: &RunReport) -> f64 {
    r.consistency
        .as_ref()
        .and_then(|c| c.served_staleness_max_ms)
        .unwrap_or(0.0)
}

/// Mean true staleness across slave-served reads (ms).
pub fn staleness_mean_ms(r: &RunReport) -> f64 {
    r.consistency
        .as_ref()
        .and_then(|c| c.served_staleness_mean_ms)
        .unwrap_or(0.0)
}

/// Run the sweep, fanning cells across `opts.jobs` workers. Cells gather
/// in (grid, users, workers) order — output is byte-identical for any jobs
/// count.
pub fn run(spec: &ParallelApplySpec, opts: &SweepOptions) -> Vec<ApplyCell> {
    // One template per grid (grids may differ in data size), shared
    // immutably by that grid's cells.
    let templates: Vec<Arc<(Engine, DataCounters)>> = spec
        .grids
        .iter()
        .map(|g| Arc::new(spec.grid_template(g)))
        .collect();
    let mut cells: Vec<(usize, u32, usize)> = Vec::new();
    for (gi, grid) in spec.grids.iter().enumerate() {
        for &users in &grid.users {
            for &workers in &spec.workers {
                cells.push((gi, users, workers));
            }
        }
    }
    let templates_ref = templates.clone();
    let reports = parallel_map(
        &cells,
        opts.jobs,
        &opts.progress,
        move |_, &(gi, users, workers), sink| {
            let grid = &spec.grids[gi];
            let (tpl, counters) = &*templates_ref[gi];
            let cfg = spec.cell_config(grid, users, workers);
            let mut sim = Sim::new();
            let mut world = Cluster::with_template(cfg, tpl, counters.clone());
            world.schedule_timeline(&mut sim);
            sim.run(&mut world);
            let events = sim.events_executed();
            let report = world.report(events);
            sink.emit(format!(
                "{} users={users} workers={workers}: {:.1} ops/s, stale max {:.1} ms, batch {:.2}",
                grid.label,
                report.throughput_ops_s,
                staleness_max_ms(&report),
                mean_batch(&report)
            ));
            report
        },
    );
    cells
        .into_iter()
        .zip(reports)
        .map(|((gi, users, workers), report)| ApplyCell {
            grid: spec.grids[gi].label,
            users,
            workers,
            report,
        })
        .collect()
}

/// Render the sweep: one row per (grid, users, workers).
pub fn table(spec: &ParallelApplySpec, cells: &[ApplyCell]) -> Table {
    let mut t = Table::new(
        format!("{} — true read staleness vs apply workers", spec.name),
        vec![
            "grid".into(),
            "users".into(),
            "workers".into(),
            "throughput (ops/s)".into(),
            "staleness mean (ms)".into(),
            "staleness max (ms)".into(),
            "peak relay backlog".into(),
            "apply batches".into(),
            "mean batch".into(),
            "max slave util".into(),
        ],
    );
    for c in cells {
        let r = &c.report;
        t.push_row(vec![
            c.grid.to_string(),
            c.users.to_string(),
            c.workers.to_string(),
            format!("{:.1}", r.throughput_ops_s),
            format!("{:.1}", staleness_mean_ms(r)),
            format!("{:.1}", staleness_max_ms(r)),
            r.peak_relay_backlog.to_string(),
            r.apply_batches.to_string(),
            format!("{:.2}", mean_batch(r)),
            format!("{:.2}", r.max_slave_utilization()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thin_spec() -> ParallelApplySpec {
        let mut spec = ParallelApplySpec::paper_set(Fidelity::Quick);
        // Surge grid only: the apply path must be the bottleneck for the
        // worker count to matter.
        spec.grids.remove(0);
        spec
    }

    #[test]
    fn workers_flatten_staleness_on_surge_cell() {
        // The acceptance property: on a saturated write-heavy cell the
        // 4-worker arm group-commits real batches and the worst-case read
        // staleness drops measurably below the serial-apply baseline.
        let spec = thin_spec();
        let cells = run(&spec, &SweepOptions::serial());
        assert_eq!(cells.len(), 2);
        let serial = &cells[0];
        let batched = &cells[1];
        assert_eq!((serial.workers, batched.workers), (1, 4));
        // Serial apply never batches; the parallel arm must actually have.
        assert_eq!(serial.report.apply_batches, serial.report.apply_events);
        assert!(
            mean_batch(&batched.report) > 1.05,
            "4-worker arm formed no real batches: mean {}",
            mean_batch(&batched.report)
        );
        // Same workload replayed: identical steady op counts per column.
        assert_eq!(serial.report.steady_writes, batched.report.steady_writes);
        let (s1, s4) = (
            staleness_max_ms(&serial.report),
            staleness_max_ms(&batched.report),
        );
        assert!(
            s4 < s1 * 0.95,
            "max staleness did not flatten: serial {s1:.2} ms vs 4 workers {s4:.2} ms"
        );
    }

    #[test]
    fn output_is_byte_identical_across_jobs() {
        let spec = thin_spec();
        let serial = table(&spec, &run(&spec, &SweepOptions::serial())).render();
        let fanned = table(&spec, &run(&spec, &SweepOptions::silent(3))).render();
        assert_eq!(serial, fanned);
    }
}
