//! Extension experiments beyond the paper's figures:
//!
//! * **E-F (failover)** — the §I motivation ("automatic failover management
//!   and ensure high availability") exercised: a slave dies mid-run, is
//!   replaced, and the cluster's throughput and staleness are tracked.
//! * **E-A (autoscaling)** — the application-managed elasticity promise: a
//!   staleness-SLO controller grows the slave tier under load, compared
//!   against the static deployment.

use crate::calib::paper_cost_model;
use crate::exec::{parallel_map, Progress};
use crate::Fidelity;
use amdb_cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb_core::{run_cluster, AutoscaleConfig, ClusterConfig, FaultPlan, Placement, RunReport};
use amdb_metrics::Table;
use amdb_sim::SimDuration;

fn workload(users: u32, fidelity: Fidelity) -> WorkloadConfig {
    match fidelity {
        Fidelity::Full => WorkloadConfig::paper(users),
        Fidelity::Quick => WorkloadConfig::quick(users),
    }
}

/// Run the failover experiment: 3 slaves, one fails at the start of the
/// steady stage and is replaced half-way through.
pub fn failover(fidelity: Fidelity) -> RunReport {
    let w = workload(
        match fidelity {
            Fidelity::Full => 150,
            Fidelity::Quick => 60,
        },
        fidelity,
    );
    let fail_at = w.phases.steady_start() - amdb_sim::SimTime::ZERO;
    let recover_after = (w.phases.steady_end() - w.phases.steady_start()) / 2;
    run_cluster(
        ClusterConfig::builder()
            .slaves(3)
            .placement(Placement::SameZone)
            .mix(MixConfig::RW_80_20)
            .data_size(DataSize { scale: 100 })
            .workload(w)
            .cost(paper_cost_model())
            .fault(FaultPlan {
                slave: 1,
                fail_at,
                recover_after: Some(recover_after),
            })
            .seed(41)
            .build(),
    )
}

/// Run the autoscaling experiment: start with one slave under heavy read
/// load; the controller grows the tier. Returns (static, autoscaled). The
/// two arms are independent runs and fan out across `jobs` workers.
pub fn autoscale(fidelity: Fidelity, jobs: usize) -> (RunReport, RunReport) {
    let users = match fidelity {
        Fidelity::Full => 250,
        Fidelity::Quick => 170,
    };
    let base = |auto: Option<AutoscaleConfig>| {
        let mut b = ClusterConfig::builder()
            .slaves(1)
            .placement(Placement::SameZone)
            .mix(MixConfig::RW_80_20)
            .data_size(DataSize { scale: 100 })
            .workload(workload(users, fidelity))
            .cost(paper_cost_model())
            .seed(42);
        if let Some(a) = auto {
            b = b.autoscale(a);
        }
        b.build()
    };
    let auto = AutoscaleConfig {
        check_interval: SimDuration::from_secs(10),
        staleness_slo_ms: 2_000.0,
        max_slaves: 6,
        sync_duration: SimDuration::from_secs(60),
        cooldown: SimDuration::from_secs(90),
    };
    let arms = [None, Some(auto)];
    let mut runs = parallel_map(&arms, jobs, &Progress::Silent, |_, arm, _| {
        run_cluster(base(arm.clone()))
    })
    .into_iter();
    let st = runs.next().expect("static arm");
    let au = runs.next().expect("autoscaled arm");
    (st, au)
}

/// Render the failover report.
pub fn failover_table(r: &RunReport) -> Table {
    let mut t = Table::new(
        "E-F — failover: 3 slaves, slave 1 fails and is replaced",
        vec!["measure".into(), "value".into()],
    );
    t.push_row(vec![
        "steady throughput (ops/s)".into(),
        format!("{:.1}", r.throughput_ops_s),
    ]);
    t.push_row(vec![
        "reads per slave".into(),
        format!("{:?}", r.reads_per_slave),
    ]);
    for (at, ev) in &r.membership_events {
        t.push_row(vec![format!("t={at:.0}s"), ev.clone()]);
    }
    t
}

/// Render the autoscale comparison.
pub fn autoscale_table(static_run: &RunReport, auto_run: &RunReport) -> Table {
    let mut t = Table::new(
        "E-A — staleness-SLO autoscaling vs static single slave",
        vec![
            "deployment".into(),
            "final slaves".into(),
            "throughput (ops/s)".into(),
            "hot-slave relative delay (ms)".into(),
        ],
    );
    for (name, r) in [("static", static_run), ("autoscaled", auto_run)] {
        t.push_row(vec![
            name.into(),
            r.final_slaves.to_string(),
            format!("{:.1}", r.throughput_ops_s),
            r.delays[0]
                .relative_ms
                .map(|d| format!("{d:.0}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    for (at, ev) in &auto_run.membership_events {
        t.push_row(vec![
            format!("t={at:.0}s"),
            "".into(),
            "".into(),
            ev.clone(),
        ]);
    }
    t
}

/// E-M: master failover, two arms. With two healthy slaves the promoted
/// replica is current and nothing is lost; with one *saturated* slave (the
/// Fig-5 deep-delay regime) the promoted replica lags by seconds and every
/// un-applied write in that window is gone — §II: "once the updated replica
/// goes offline before duplicating data, data loss may occur". Returns
/// (healthy-arm report, lagging-arm report); the two arms fan out across
/// `jobs` workers.
pub fn master_failover(fidelity: Fidelity, jobs: usize) -> (RunReport, RunReport) {
    let users = 175;
    let run = |slaves: usize| {
        let w = workload(users, fidelity);
        let fail_at = w.phases.steady_start() - amdb_sim::SimTime::ZERO
            + (w.phases.steady_end() - w.phases.steady_start()) / 2;
        run_cluster(
            ClusterConfig::builder()
                .slaves(slaves)
                .placement(Placement::SameZone)
                .mix(MixConfig::RW_50_50)
                .data_size(DataSize::SMALL)
                .workload(w)
                .cost(paper_cost_model())
                .master_fault(amdb_core::MasterFaultPlan {
                    fail_at,
                    detection_delay: SimDuration::from_secs(5),
                })
                .seed(61)
                .build(),
        )
    };
    let arms = [2usize, 1];
    let mut runs =
        parallel_map(&arms, jobs, &Progress::Silent, |_, &slaves, _| run(slaves)).into_iter();
    let healthy = runs.next().expect("healthy arm");
    let lagging = runs.next().expect("lagging arm");
    (healthy, lagging)
}

/// Render E-M.
pub fn master_failover_table(healthy: &RunReport, lagging: &RunReport) -> Table {
    let mut t = Table::new(
        "E-M — master failover: healthy vs lagging promoted replica (50/50, 175 users)",
        vec![
            "arm".into(),
            "throughput (ops/s)".into(),
            "writes lost".into(),
            "timeline".into(),
        ],
    );
    for (name, r) in [
        ("2 healthy slaves", healthy),
        ("1 saturated slave", lagging),
    ] {
        let timeline = r
            .membership_events
            .iter()
            .map(|(at, ev)| format!("t={at:.0}s {ev}"))
            .collect::<Vec<_>>()
            .join("; ");
        t.push_row(vec![
            name.into(),
            format!("{:.1}", r.throughput_ops_s),
            r.lost_writes.to_string(),
            timeline,
        ]);
    }
    t
}

/// E-W: Web 1.0 vs Web 2.0 scale-out. The paper's §III-A motivation is
/// that Web 2.0 writes more; this experiment quantifies the consequence:
/// with a 95/5 mix the master ceiling sits several times further out, so
/// slave scale-out keeps paying where the Cloudstone mix has long stalled.
pub fn workload_classes(fidelity: Fidelity, jobs: usize) -> Vec<(&'static str, usize, RunReport)> {
    let users = match fidelity {
        Fidelity::Full => 300,
        Fidelity::Quick => 120,
    };
    let mut cells: Vec<(&'static str, amdb_core::WorkloadKind, MixConfig, usize)> = Vec::new();
    for (name, kind, mix) in [
        (
            "web2.0 (cloudstone 50/50)",
            amdb_core::WorkloadKind::Cloudstone,
            MixConfig::RW_50_50,
        ),
        (
            "web1.0 (bookstore 95/5)",
            amdb_core::WorkloadKind::Web10,
            MixConfig::RW_50_50, // ignored by Web10
        ),
    ] {
        for slaves in [1usize, 2, 4, 6] {
            cells.push((name, kind, mix, slaves));
        }
    }
    parallel_map(
        &cells,
        jobs,
        &Progress::Silent,
        |_, &(name, kind, mix, slaves), _| {
            let cfg = ClusterConfig::builder()
                .slaves(slaves)
                .placement(Placement::SameZone)
                .mix(mix)
                .workload_kind(kind)
                .data_size(DataSize { scale: 100 })
                .workload(workload(users, fidelity))
                .cost(paper_cost_model())
                .seed(55)
                .build();
            (name, slaves, run_cluster(cfg))
        },
    )
}

/// Render E-W.
pub fn workload_classes_table(results: &[(&'static str, usize, RunReport)]) -> Table {
    let mut t = Table::new(
        "E-W — scale-out by workload class (same users, same hardware)",
        vec![
            "workload".into(),
            "slaves".into(),
            "throughput (ops/s)".into(),
            "master util".into(),
        ],
    );
    for (name, slaves, r) in results {
        t.push_row(vec![
            (*name).into(),
            slaves.to_string(),
            format!("{:.1}", r.throughput_ops_s),
            format!("{:.2}", r.master_utilization),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_run_records_both_events() {
        let r = failover(Fidelity::Quick);
        let evs: Vec<&str> = r
            .membership_events
            .iter()
            .map(|(_, e)| e.as_str())
            .collect();
        assert!(evs.iter().any(|e| e.contains("failed")), "{evs:?}");
        assert!(evs.iter().any(|e| e.contains("replaced")), "{evs:?}");
        assert!(r.steady_ops > 0);
    }

    #[test]
    fn master_failover_loss_depends_on_replica_lag() {
        let (healthy, lagging) = master_failover(Fidelity::Quick, 2);
        for r in [&healthy, &lagging] {
            assert!(r
                .membership_events
                .iter()
                .any(|(_, e)| e.contains("promoted")));
            assert!(r.steady_writes > 0, "writes resumed after promotion");
        }
        assert_eq!(healthy.lost_writes, 0, "current replica loses nothing");
        assert!(
            lagging.lost_writes > 0,
            "saturated replica's apply backlog is the data-loss window"
        );
    }

    #[test]
    fn web10_scales_further_than_web20() {
        let rs = workload_classes(Fidelity::Quick, 2);
        let at = |name_frag: &str, slaves: usize| {
            rs.iter()
                .find(|(n, s, _)| n.contains(name_frag) && *s == slaves)
                .map(|(_, _, r)| r.throughput_ops_s)
                .expect("present")
        };
        // Web 2.0 stalls at the master ceiling; Web 1.0 keeps gaining.
        let w2_gain = at("web2.0", 6) / at("web2.0", 2);
        let w1_gain = at("web1.0", 6) / at("web1.0", 2);
        assert!(
            w1_gain > w2_gain,
            "web1.0 scale-out gain {w1_gain:.2} must exceed web2.0 {w2_gain:.2}"
        );
    }

    #[test]
    fn autoscale_improves_hot_slave_delay() {
        let (st, auto) = autoscale(Fidelity::Quick, 2);
        assert!(auto.final_slaves > st.final_slaves);
        let ds = st.delays[0].relative_ms.unwrap_or(f64::MAX);
        let da = auto.delays[0].relative_ms.unwrap_or(f64::MAX);
        assert!(da < ds, "autoscaled {da:.0} ms < static {ds:.0} ms");
    }
}
