//! Deterministic parallel sweep executor.
//!
//! The paper's figures are full grids of {placement × slaves × users} runs;
//! every grid cell is an independent deterministic simulation, so the sweep
//! is embarrassingly parallel. This module provides the worker pool that
//! exploits that — dependency-free (`std::thread::scope`, offline-buildable)
//! and **order-invariant**: results are gathered back in item order and each
//! cell's randomness derives from its own configuration, so every table,
//! CSV, and trace is byte-identical for any `--jobs` count, including
//! `--jobs 1` versus the old serial loop.
//!
//! Progress lines travel a channel to a single printer thread instead of a
//! shared `FnMut(&str)` callback, so worker threads never contend for (or
//! interleave on) stderr.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Worker count the executor defaults to: `AMDB_JOBS` if set and positive,
/// otherwise the host's available parallelism.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("AMDB_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve the job count for a binary: an explicit `--jobs N` (or
/// `--jobs=N`) on the command line beats `AMDB_JOBS` beats available
/// parallelism.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    default_jobs()
}

/// `--shards N` / `--shards=N` from argv: binaries that support a sharded
/// front use it to pick (or restrict to) one shard count. `None` when the
/// flag is absent — the binary's flat/default path.
pub fn shards_from_args() -> Option<u32> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--shards" {
            if let Some(n) = args.next().and_then(|v| v.parse::<u32>().ok()) {
                return Some(n.max(1));
            }
        } else if let Some(v) = a.strip_prefix("--shards=") {
            if let Ok(n) = v.parse::<u32>() {
                return Some(n.max(1));
            }
        }
    }
    None
}

/// `--backend statement|row|shared-log` (or `--backend=<name>`) from argv:
/// binaries that support the replication-backend knob use it to re-run
/// their grid under a different backend. `None` when absent — the binary's
/// default (statement) path, byte-identical to pre-knob output.
pub fn backend_from_args() -> Option<amdb_repl::BackendKind> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--backend" {
            if let Some(b) = args
                .next()
                .as_deref()
                .and_then(amdb_repl::BackendKind::parse)
            {
                return Some(b);
            }
        } else if let Some(v) = a.strip_prefix("--backend=") {
            if let Some(b) = amdb_repl::BackendKind::parse(v) {
                return Some(b);
            }
        }
    }
    None
}

/// Where progress lines go.
#[derive(Debug, Clone)]
pub enum Progress {
    /// Drop progress lines.
    Silent,
    /// Prefix each line and print it to stderr (via the printer thread).
    Stderr(&'static str),
}

/// Handed to each work item so it can report a status line. Lines are sent
/// over a channel and written by one printer, so concurrent workers never
/// interleave output. Emission order follows completion order (it is *not*
/// part of the deterministic contract — results are; progress goes to
/// stderr, results to stdout/CSV).
pub struct ProgressSink {
    tx: Option<Mutex<mpsc::Sender<String>>>,
}

impl ProgressSink {
    fn silent() -> Self {
        Self { tx: None }
    }

    /// Report one status line.
    pub fn emit(&self, line: String) {
        if let Some(tx) = &self.tx {
            // A send can only fail if the printer is gone; progress is
            // best-effort either way.
            let _ = tx.lock().expect("progress sender lock").send(line);
        }
    }
}

/// Map `f` over `items` on `jobs` worker threads, returning the results in
/// item order regardless of completion order.
///
/// Work is handed out through a shared atomic cursor (self-balancing: a slow
/// cell never stalls the queue behind it), and each result lands in its own
/// pre-allocated slot, so the output is a pure function of `items` and `f`
/// — never of thread scheduling. `f` gets the item index, the item, and a
/// [`ProgressSink`] for status lines.
///
/// `jobs <= 1` runs inline on the calling thread (no pool), which is also
/// the path the determinism tests compare against.
///
/// The worker count is additionally capped at the host's available
/// parallelism: threads beyond the core count cannot overlap any work, they
/// only add scheduling and synchronization overhead (on a single-core host,
/// `--jobs 2` measured *slower* than serial — speedup 0.67×). Results are
/// byte-identical either way, so the clamp is purely a wall-clock fix.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, progress: &Progress, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &ProgressSink) -> R + Sync,
{
    let cap = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    parallel_map_capped(items, jobs.min(cap), progress, f)
}

/// [`parallel_map`] without the host-parallelism clamp — the test hook that
/// keeps the pool path exercised even on single-core hosts.
fn parallel_map_capped<T, R, F>(items: &[T], jobs: usize, progress: &Progress, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &ProgressSink) -> R + Sync,
{
    let (sink, printer) = match progress {
        Progress::Silent => (ProgressSink::silent(), None),
        Progress::Stderr(prefix) => {
            let (tx, rx) = mpsc::channel::<String>();
            let prefix = *prefix;
            let printer = std::thread::spawn(move || {
                for line in rx {
                    eprintln!("{prefix}{line}");
                }
            });
            (
                ProgressSink {
                    tx: Some(Mutex::new(tx)),
                },
                Some(printer),
            )
        }
    };

    let jobs = jobs.max(1).min(items.len().max(1));
    let results: Vec<R> = if jobs <= 1 {
        items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item, &sink))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(i, &items[i], &sink);
                    *slots[i].lock().expect("result slot lock") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("result slot lock")
                    .expect("every slot filled once the scope joins")
            })
            .collect()
    };

    // Close the channel so the printer drains and exits before we return —
    // progress lines never trail the results they describe.
    drop(sink);
    if let Some(p) = printer {
        let _ = p.join();
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map_capped(&items, 8, &Progress::Silent, |i, &x, _| {
            // Stagger completion: later items finish earlier.
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u32> = (0..37).collect();
        let f = |_: usize, &x: &u32, _: &ProgressSink| x.wrapping_mul(2654435761) >> 3;
        let serial = parallel_map_capped(&items, 1, &Progress::Silent, f);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(
                parallel_map_capped(&items, jobs, &Progress::Silent, f),
                serial,
                "jobs={jobs} must match serial"
            );
        }
    }

    #[test]
    fn empty_input_and_oversubscription() {
        let none: Vec<u8> = Vec::new();
        assert!(parallel_map_capped(&none, 4, &Progress::Silent, |_, &x, _| x).is_empty());
        let one = [7u8];
        assert_eq!(
            parallel_map_capped(&one, 999, &Progress::Silent, |_, &x, _| x),
            vec![7]
        );
    }

    #[test]
    fn progress_lines_are_emitted_without_panicking() {
        let items: Vec<u32> = (0..10).collect();
        let out = parallel_map_capped(
            &items,
            4,
            &Progress::Stderr("[exec-test] "),
            |i, &x, sink| {
                sink.emit(format!("item {i}"));
                x + 1
            },
        );
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn public_entry_clamps_to_host_parallelism_without_changing_results() {
        let items: Vec<u32> = (0..25).collect();
        let f = |_: usize, &x: &u32, _: &ProgressSink| x.wrapping_mul(3);
        assert_eq!(
            parallel_map(&items, usize::MAX, &Progress::Silent, f),
            parallel_map_capped(&items, 1, &Progress::Silent, f),
        );
    }

    #[test]
    fn jobs_env_parsing_prefers_positive_values() {
        // default_jobs falls back to host parallelism when unset; we only
        // assert it is positive (the env var itself is exercised in ci.sh,
        // not here, to keep tests hermetic under parallel test runners).
        assert!(default_jobs() >= 1);
    }
}
