//! fleet_report: the fleet observability plane end to end — sharded runs
//! (4 trees, 4 apply workers per slave, row-format binlog, 20% scattered
//! reads) rendered as per-shard "top" tables, the fleet alert timeline,
//! and an OpenMetrics exposition dump.
//!
//! Usage: `cargo run --release -p amdb-experiments --bin fleet_report --
//! [--full] [--jobs N] [--shards N]`
//!
//! Writes `results/fleet_report.csv` (all cells' top rows),
//! `results/fleet_alerts.csv` (the fleet alert timeline of the last cell),
//! and `results/fleet_metrics.prom` (the last cell's OpenMetrics dump, one
//! labeled part per shard plus the front). Stdout and every artifact are
//! byte-identical for any `--jobs` count.

use amdb_experiments::sweep::SweepOptions;
use amdb_experiments::{exec, fleet, write_results_csv, Fidelity};

fn main() {
    let fidelity = Fidelity::from_args();
    let jobs = exec::jobs_from_args();
    let mut spec = fleet::FleetSpec::paper_set(fidelity);
    if let Some(n) = exec::shards_from_args() {
        spec.shards = n;
    }
    let cells = fleet::run(&spec, &SweepOptions::with_progress(jobs, "[fleet_report] "));

    for cell in &cells {
        println!("{}", fleet::top_table(&spec, cell).render());
    }
    write_results_csv("fleet", "report", &fleet::combined_table(&spec, &cells));

    let last = cells.last().expect("the grid has at least one cell");
    let alerts = last.bundle.telemetry.alert_table();
    println!("{}", alerts.render());
    write_results_csv("fleet", "alerts", &alerts);

    if let Some(db) = last.bundle.fleet_tsdb() {
        println!(
            "fleet tsdb: {} tracks, {} slot(s) evicted, ~{} KiB",
            db.len(),
            db.total_evicted(),
            db.state_bytes() / 1024
        );
    }

    let dump = fleet::openmetrics_dump(last);
    let path = std::path::Path::new("results").join("fleet_metrics.prom");
    match std::fs::write(&path, &dump) {
        Ok(()) => println!("wrote {} ({} bytes)", path.display(), dump.len()),
        Err(e) => eprintln!("{}: {e}", path.display()),
    }
}
