//! Regenerate every figure and table of the paper at full fidelity, writing
//! CSVs to `results/`. Figs 2+5 and 3+6 share their sweeps (throughput and
//! delay come from the same runs, as in the paper).
//!
//! Grid cells fan out across a deterministic worker pool: `--jobs N` (or
//! `AMDB_JOBS=N`) picks the worker count, defaulting to the host's available
//! parallelism. Output is byte-identical for every jobs count.
//!
//! ```text
//! cargo run --release -p amdb-experiments --bin paper -- [--jobs N]
//! ```
use amdb_experiments::{ablations, exec, fig4, perfvar, rtt, sweep, write_results_csv, Fidelity};

fn main() {
    let t0 = std::time::Instant::now();
    let jobs = exec::jobs_from_args();
    eprintln!(
        "[paper] running with {jobs} worker thread{}",
        if jobs == 1 { "" } else { "s" }
    );

    // Fig 4 + RTT + perfvar are cheap; do them first.
    let f4 = fig4::run(&fig4::Fig4Spec::default());
    let f4t = fig4::summary_table(&f4);
    println!("{}", f4t.render());
    write_results_csv("fig4", "summary", &f4t);

    let rt = rtt::table(&rtt::run(1200, 7));
    println!("{}", rt.render());
    write_results_csv("rtt", "half_rtt", &rt);

    let pv = perfvar::table(Fidelity::Full, jobs);
    println!("{}", pv.render());
    write_results_csv("perfvar", "summary", &pv);

    // Figs 2 & 5.
    let spec25 = sweep::SweepSpec::fig2_fig5(Fidelity::Full);
    let res25 = sweep::run_sweep(
        &spec25,
        &sweep::SweepOptions::with_progress(jobs, "[fig2/5] "),
    );
    for r in &res25 {
        println!("{}", r.throughput.render());
        println!("{}", r.delay.render());
        write_results_csv("fig2", &r.label, &r.throughput);
        write_results_csv("fig5", &r.label, &r.delay);
    }
    eprintln!("figs 2/5 done at {:?}", t0.elapsed());

    // Figs 3 & 6 (the big grid).
    let spec36 = sweep::SweepSpec::fig3_fig6(Fidelity::Full);
    let res36 = sweep::run_sweep(
        &spec36,
        &sweep::SweepOptions::with_progress(jobs, "[fig3/6] "),
    );
    for r in &res36 {
        println!("{}", r.throughput.render());
        println!("{}", r.delay.render());
        write_results_csv("fig3", &r.label, &r.throughput);
        write_results_csv("fig6", &r.label, &r.delay);
    }
    eprintln!("figs 3/6 done at {:?}", t0.elapsed());

    // Ablations at full fidelity.
    let a1 = ablations::sync_modes_table(&ablations::sync_modes(Fidelity::Full, jobs));
    println!("{}", a1.render());
    write_results_csv("ablations", "a1_sync_modes", &a1);
    let a2 = ablations::balancers_table(&ablations::balancers(Fidelity::Full, jobs));
    println!("{}", a2.render());
    write_results_csv("ablations", "a2_balancers", &a2);
    let a3 = ablations::binlog_formats_table(&ablations::binlog_formats(Fidelity::Full, jobs));
    println!("{}", a3.render());
    write_results_csv("ablations", "a3_binlog_formats", &a3);

    eprintln!("all figures regenerated in {:?}", t0.elapsed());
}
