//! Parallel-apply benchmark: measures the dependency scheduler's dispatch
//! cost against the serial pop-one path over a synthetic row-event stream,
//! asserts the committed LSN order is identical (the in-order-commit
//! contract), and runs the quick E-PA sweep at two `--jobs` counts to pin
//! the byte-identity of the rendered output. Results land in
//! `BENCH_apply.json`.
//!
//! ```text
//! cargo run --release -p amdb-experiments --bin bench_apply -- [--jobs N]
//! ```
use amdb_experiments::sweep::SweepOptions;
use amdb_experiments::{exec, parallel_apply, Fidelity};
use amdb_sql::exec::{RowChange, RowChangeKind};
use amdb_sql::{BinlogEvent, EventPayload, Lsn, Value};
use std::time::Instant;

const STREAM: usize = 200_000;

/// A synthetic row stream with a realistic conflict profile: keys drawn
/// from a small hot set plus a large cold set, so batches form but close
/// early often enough to exercise the conflict scan.
fn stream() -> Vec<BinlogEvent> {
    (0..STREAM as u64)
        .map(|i| {
            let pk = if i % 5 == 0 {
                (i % 17) as i64 // hot set: frequent conflicts
            } else {
                1_000 + i as i64 // cold set: disjoint
            };
            BinlogEvent {
                lsn: Lsn(i),
                commit_ts_micros: i as i64,
                payload: EventPayload::Rows {
                    changes: vec![RowChange {
                        table: "t".into(),
                        kind: RowChangeKind::Insert {
                            row: vec![Value::Int(pk), Value::Int(i as i64)],
                        },
                    }],
                },
            }
        })
        .collect()
}

fn commit_order(batches: &[Vec<Lsn>]) -> Vec<Lsn> {
    batches.iter().flatten().copied().collect()
}

fn main() {
    let jobs = exec::jobs_from_args();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("[bench_apply] host_cores={host_cores} jobs={jobs}");

    // 1) Scheduler dispatch cost vs the serial pop-one path.
    let events = stream();
    let pk = |_: &str| Some(0usize);

    let t0 = Instant::now();
    let (serial_batches, _) = amdb_apply::simulate(&events, 1, pk);
    let serial_s = t0.elapsed().as_secs_f64();
    eprintln!("[bench_apply] serial dispatch over {STREAM} events: {serial_s:.3}s");

    let t0 = Instant::now();
    let (batched, stats) = amdb_apply::simulate(&events, 8, pk);
    let batched_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "[bench_apply] 8-worker dispatch: {batched_s:.3}s, mean batch {:.2}",
        stats.mean_batch()
    );

    let in_order = commit_order(&serial_batches) == commit_order(&batched);
    assert!(in_order, "scheduler broke the in-order-commit contract");

    // 2) The quick E-PA sweep at two jobs counts must render identically.
    let spec = parallel_apply::ParallelApplySpec::paper_set(Fidelity::Quick);
    let t0 = Instant::now();
    let one = parallel_apply::table(&spec, &parallel_apply::run(&spec, &SweepOptions::serial()));
    let sweep_serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let many = parallel_apply::table(
        &spec,
        &parallel_apply::run(&spec, &SweepOptions::silent(jobs)),
    );
    let sweep_jobs_s = t0.elapsed().as_secs_f64();
    let identical = one.render() == many.render();
    assert!(identical, "E-PA sweep output varies with --jobs");
    eprintln!(
        "[bench_apply] E-PA quick sweep: jobs=1 {sweep_serial_s:.2}s, jobs={jobs} {sweep_jobs_s:.2}s"
    );

    let dispatch_overhead = batched_s / serial_s.max(1e-9);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"apply scheduler dispatch vs serial + quick E-PA sweep\",\n",
            "  \"host_cores\": {},\n",
            "  \"jobs\": {},\n",
            "  \"events\": {},\n",
            "  \"serial_dispatch_s\": {:.4},\n",
            "  \"batched_dispatch_s\": {:.4},\n",
            "  \"dispatch_overhead\": {:.2},\n",
            "  \"mean_batch\": {:.2},\n",
            "  \"sweep_serial_s\": {:.3},\n",
            "  \"sweep_jobs_s\": {:.3},\n",
            "  \"in_order\": {},\n",
            "  \"identical\": {}\n",
            "}}\n"
        ),
        host_cores,
        jobs,
        STREAM,
        serial_s,
        batched_s,
        dispatch_overhead,
        stats.mean_batch(),
        sweep_serial_s,
        sweep_jobs_s,
        in_order,
        identical,
    );
    std::fs::write("BENCH_apply.json", &json).expect("write BENCH_apply.json");
    println!("{json}");
}
