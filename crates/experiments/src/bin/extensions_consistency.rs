//! Run the consistency extension (E-C): throughput & staleness-violation
//! rate vs the `BoundedStaleness` bound, across the paper's placements.
//! Pass `--full` for the paper-scale grid and `--jobs N` (or `AMDB_JOBS=N`)
//! to pick the worker count.
use amdb_experiments::sweep::SweepOptions;
use amdb_experiments::{consistency, exec, write_results_csv, Fidelity};

fn main() {
    let f = Fidelity::from_args();
    let jobs = exec::jobs_from_args();
    let spec = consistency::ConsistencySpec::paper_set(f);
    let cells = consistency::run(&spec, &SweepOptions::with_progress(jobs, "[E-C] "));
    let t = consistency::table(&spec, &cells);
    println!("{}", t.render());
    write_results_csv("extensions", "consistency", &t);
}
