//! Regenerate Fig. 3: end-to-end throughput, 80/20 mix, data size 600.
//! Default runs a thinned quick grid; pass `--full` for the paper grid
//! (1–11 slaves × 50–450 users × 3 placements; ~1 h of host time).
use amdb_experiments::{sweep, Fidelity};

fn main() {
    let fidelity = Fidelity::from_args();
    let spec = sweep::SweepSpec::fig3_fig6(fidelity);
    let results = sweep::run_sweep(&spec, |line| eprintln!("[fig3] {line}"));
    for r in &results {
        println!("{}", r.throughput.render());
        amdb_experiments::write_results_csv("fig3", &r.label, &r.throughput);
    }
}
