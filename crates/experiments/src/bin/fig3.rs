//! Regenerate Fig. 3: end-to-end throughput, 80/20 mix, data size 600.
//! Default runs a thinned quick grid; pass `--full` for the paper grid
//! (1–11 slaves × 50–450 users × 3 placements; about an hour of host time
//! serial — pass `--jobs N` / set `AMDB_JOBS=N` to fan cells across N
//! workers; the output is byte-identical either way).
use amdb_experiments::{exec, sweep, Fidelity};

fn main() {
    let fidelity = Fidelity::from_args();
    let mut spec = sweep::SweepSpec::fig3_fig6(fidelity);
    if let Some(b) = exec::backend_from_args() {
        spec.backend = b;
    }
    let opts = sweep::SweepOptions::with_progress(exec::jobs_from_args(), "[fig3] ");
    let results = sweep::run_sweep(&spec, &opts);
    for r in &results {
        println!("{}", r.throughput.render());
        amdb_experiments::write_results_csv("fig3", &r.label, &r.throughput);
    }
}
