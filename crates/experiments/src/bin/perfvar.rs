//! Regenerate the §IV-A instance performance-variation measurements.
use amdb_experiments::{perfvar, Fidelity};

fn main() {
    let t = perfvar::table(Fidelity::from_args());
    println!("{}", t.render());
    amdb_experiments::write_results_csv("perfvar", "summary", &t);
}
