//! Regenerate the §IV-A instance performance-variation measurements.
//! Pass `--jobs N` (or set `AMDB_JOBS=N`) to pick the worker count.
use amdb_experiments::{exec, perfvar, Fidelity};

fn main() {
    let t = perfvar::table(Fidelity::from_args(), exec::jobs_from_args());
    println!("{}", t.render());
    amdb_experiments::write_results_csv("perfvar", "summary", &t);
}
