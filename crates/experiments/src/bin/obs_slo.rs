//! Online SLO/alert sweep: run fig2-style cells with telemetry enabled and
//! print each cell's deterministic alert timeline — including delay-surge
//! fires attributed to the saturated resource at surge onset.
//!
//! Usage: `cargo run --release -p amdb-experiments --bin obs_slo --
//! [--full] [--jobs N] [--shards N]`. Output (and
//! `results/obs_slo_alerts.csv`) is byte-identical for any jobs count.
//! With `--shards N` (N > 1) every cell runs behind an N-tree sharded
//! front instead: alerts carry `(shard, component, instance)` and land in
//! `results/obs_slo_alerts_shardsN.csv` — the flat CSV is untouched.

use amdb_experiments::sweep::SweepOptions;
use amdb_experiments::{exec, obs_slo, write_results_csv, Fidelity};

fn main() {
    let f = Fidelity::from_args();
    let jobs = exec::jobs_from_args();
    let spec = obs_slo::ObsSloSpec::paper_set(f);
    if let Some(shards) = exec::shards_from_args().filter(|&n| n > 1) {
        let cells = obs_slo::run_sharded(
            &spec,
            shards,
            &SweepOptions::with_progress(jobs, "[obs_slo] "),
        );
        let t = obs_slo::sharded_table(&spec, shards, &cells);
        println!("{}", t.render());
        write_results_csv("obs_slo", &format!("alerts_shards{shards}"), &t);
        return;
    }
    let cells = obs_slo::run(&spec, &SweepOptions::with_progress(jobs, "[obs_slo] "));
    let t = obs_slo::table(&spec, &cells);
    println!("{}", t.render());
    // The waterfall of the last (largest same-grid) cell shows where the
    // replication delay the alerts watch actually accrues.
    if let Some(last) = cells.last() {
        println!(
            "staleness waterfall — {} slaves, {} users:",
            last.slaves, last.users
        );
        println!("{}", last.telemetry.waterfall.table().render());
    }
    write_results_csv("obs_slo", "alerts", &t);
}
