//! fig2_sharded: throughput scale-out past the single-master ceiling.
//!
//! Sweeps shard counts {1, 2, 4, 8} over a user grid reaching 10⁵ users
//! (fig2's architecture flat-lines near 200), then runs the cross-shard
//! read ablation (0% / 5% / 20% of reads scatter-gathered at 4 shards) to
//! quantify the scatter-gather tax. Default runs a thinned quick grid;
//! pass `--full` for the paper-scale grid, `--shards N` to restrict the
//! scale-out sweep to one shard count, and `--jobs N` (or `AMDB_JOBS=N`)
//! to pick the worker count. Output is byte-identical for every jobs
//! count.
use amdb_experiments::{exec, sharded, sweep, Fidelity};
use amdb_metrics::Table;

fn main() {
    let fidelity = Fidelity::from_args();
    let jobs = exec::jobs_from_args();

    // The scale-out grid. `--shards N` restricts it to one shard count
    // (cell bytes are unchanged — per-cell seeds don't depend on which
    // grid rows run).
    let mut spec = sharded::ShardedSweepSpec::scaleout(fidelity);
    if let Some(n) = exec::shards_from_args() {
        spec.shards = vec![n];
    }
    let opts = sweep::SweepOptions::with_progress(jobs, "[fig2_sharded] ");
    let r = sharded::run_sharded_sweep(&spec, &opts);
    println!("{}", r.throughput.render());
    println!("{}", r.latency_p95.render());
    amdb_experiments::write_results_csv("fig2", "sharded", &r.throughput);
    amdb_experiments::write_results_csv("fig2", "sharded_p95", &r.latency_p95);

    // The cross-shard read ablation: same trees and user streams per arm
    // (cell seeds exclude the fraction); only the scattered fraction moves.
    let fractions = sharded::ShardedSweepSpec::ablation_fractions();
    let mut arms = Vec::with_capacity(fractions.len());
    for &cross in &fractions {
        let spec = sharded::ShardedSweepSpec::cross_ablation(fidelity, cross);
        let opts = sweep::SweepOptions::with_progress(jobs, "[fig2_sharded ablation] ");
        arms.push((cross, sharded::run_sharded_sweep(&spec, &opts)));
    }

    // One combined table: rows = users, cols = cross fractions.
    let users = sharded::ShardedSweepSpec::cross_ablation(fidelity, 0.0).users;
    let shards = sharded::ShardedSweepSpec::cross_ablation(fidelity, 0.0).shards[0];
    let mut header = vec!["users".to_string()];
    for &cross in &fractions {
        header.push(format!("cross {}%", (cross * 100.0).round() as u32));
    }
    let mut tput = Table::new(
        format!("fig2_sharded — throughput vs cross-shard read fraction ({shards} shards, ops/s)"),
        header.clone(),
    );
    let mut p95 = Table::new(
        format!("fig2_sharded — p95 latency vs cross-shard read fraction ({shards} shards, ms)"),
        header,
    );
    for (ui, &u) in users.iter().enumerate() {
        let t_cells: Vec<Option<f64>> = arms
            .iter()
            .map(|(_, r)| Some(r.reports[0][ui].throughput_ops_s))
            .collect();
        tput.push_float_row(u.to_string(), &t_cells, 1);
        let l_cells: Vec<Option<f64>> = arms
            .iter()
            .map(|(_, r)| r.reports[0][ui].latency_ms.as_ref().map(|s| s.p95))
            .collect();
        p95.push_float_row(u.to_string(), &l_cells, 1);
    }
    println!("{}", tput.render());
    println!("{}", p95.render());
    amdb_experiments::write_results_csv("fig2_sharded", "cross_ablation", &tput);
    amdb_experiments::write_results_csv("fig2_sharded", "cross_ablation_p95", &p95);

    // Scatter accounting per arm (stderr: diagnostic, not part of the
    // deterministic stdout contract is unnecessary — it is deterministic).
    for (cross, r) in &arms {
        let (reads, legs, filtered) = r.reports[0].iter().fold((0, 0, 0), |acc, rep| {
            (
                acc.0 + rep.scatter_reads,
                acc.1 + rep.scatter_legs,
                acc.2 + rep.scatter_filtered_legs,
            )
        });
        println!(
            "ablation cross={:.0}%: {reads} scattered reads, {legs} legs, {filtered} filtered",
            cross * 100.0
        );
    }
}
