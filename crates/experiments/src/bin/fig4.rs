//! Regenerate Fig. 4: two-instance clock difference with and without
//! per-second NTP over a 20-minute window.
use amdb_experiments::fig4;

fn main() {
    let r = fig4::run(&fig4::Fig4Spec::default());
    println!("{}", fig4::summary_table(&r).render());
    // Emit both series for plotting.
    let mut t = amdb_metrics::Table::new(
        "fig4 series (downsampled to 10 s)",
        vec![
            "t (s)".into(),
            "sync once (ms)".into(),
            "sync 1s (ms)".into(),
        ],
    );
    let once = r.sync_once.series.downsample(10);
    let every = r.sync_every_second.series.downsample(10);
    for (a, b) in once.points().iter().zip(every.points()) {
        t.push_row(vec![
            format!("{:.0}", a.0),
            format!("{:.2}", a.1),
            format!("{:.2}", b.1),
        ]);
    }
    amdb_experiments::write_results_csv("fig4", "series", &t);
    println!("(series CSV written to results/)");
}
