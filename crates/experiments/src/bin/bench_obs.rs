//! Observability-overhead benchmark: asserts the two cost contracts of the
//! fleet observability plane and records them for CI.
//!
//! 1. **Disabled probes are sub-nanosecond.** Every probe on `Obs::Null`
//!    (counter, flow, sketch, tsdb) must compile down to one discriminant
//!    test — measured here with a baseline-subtracted hot loop.
//! 2. **The time-series store is cheap when on.** A telemetry-enabled quick
//!    grid with the tsdb attached must run within 5% of the identical grid
//!    with the tsdb off, and both must produce bit-identical run results
//!    (the store is pure measurement).
//!
//! ```text
//! cargo run --release -p amdb-experiments --bin bench_obs
//! ```
//!
//! Writes `BENCH_obs.json` (schema-checked by ci.sh).

use amdb_cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb_core::{run_cluster_telemetry, ClusterConfig, ObsConfig};
use amdb_experiments::calib::paper_cost_model;
use amdb_obs::{Component, FlowPhase, Obs};
use amdb_sim::{Rng, SimTime};
use std::hint::black_box;
use std::time::Instant;

/// FNV-1a over the result bytes: run results must not depend on whether
/// the time-series store is attached.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Interleaved off/on repetitions. The two arms alternate within each
/// repetition so host-load drift hits both equally; the overhead ratio is
/// the median of the per-repetition paired ratios, which is robust to the
/// one-sided wall-clock noise of a shared host.
const REPS: usize = 7;

/// Baseline-subtracted cost of one disabled probe volley (counter + flow +
/// sketch + tsdb on `Obs::Null`), in ns per volley.
fn disabled_probe_ns() -> f64 {
    const ITERS: u64 = 20_000_000;
    let mut obs = black_box(Obs::default());
    let start = Instant::now();
    for i in 0..ITERS {
        black_box(i);
    }
    let base = start.elapsed();
    let start = Instant::now();
    for i in 0..ITERS {
        let t = SimTime::from_micros(black_box(i));
        obs.counter(Component::Cpu, 0, "queue_depth", t, 4.0);
        obs.flow(FlowPhase::Step, Component::Repl, 0, "apply_batch", t, i);
        obs.observe_sketch(Component::Repl, 0, "apply_commit_wait_ms", 0.5);
        obs.tsdb_observe(Component::Repl, 0, "apply_batch_len", t, 4.0);
    }
    let with_probes = start.elapsed();
    black_box(&obs);
    with_probes.saturating_sub(base).as_nanos() as f64 / ITERS as f64
}

/// One telemetry-enabled fig2-style cell with the tsdb on or off. Full
/// paper phases, not the quick ones: each timed pass needs to be seconds
/// long so bursty host noise averages out within the pass instead of
/// skewing the paired ratio.
fn cell_config(slaves: usize, users: u32, tsdb: bool) -> ClusterConfig {
    let workload = WorkloadConfig::paper(users);
    let label = format!("bench_obs/slaves={slaves}/users={users}");
    ClusterConfig::builder()
        .slaves(slaves)
        .mix(MixConfig::RW_50_50)
        .data_size(DataSize::SMALL)
        .workload(workload)
        .cost(paper_cost_model())
        .observability(ObsConfig {
            enabled: true,
            sample_interval_ms: 250,
            tsdb,
        })
        .telemetry_on(true)
        .seed(Rng::new(42).derive(&label).next_u64())
        .build()
}

/// One serial pass over the quick grid; returns (seconds, result
/// fingerprint). The fingerprint covers run results only (throughput,
/// delays, alert timeline) — identical with the tsdb on or off.
fn run_grid(tsdb: bool) -> (f64, u64) {
    let cells = [(1usize, 175u32), (3, 175)];
    let t0 = Instant::now();
    let mut rendered = String::new();
    for &(slaves, users) in &cells {
        let (report, _obs, bottleneck, telemetry) =
            run_cluster_telemetry(cell_config(slaves, users, tsdb));
        rendered.push_str(&format!(
            "slaves={slaves} users={users} tput={:016x} ops={} delays={:?}\n{}\n{}\n",
            report.throughput_ops_s.to_bits(),
            report.steady_ops,
            report.delays,
            bottleneck.render(),
            telemetry.alert_table().to_csv(),
        ));
    }
    (t0.elapsed().as_secs_f64(), fnv64(rendered.as_bytes()))
}

/// Interleaved timing for both arms: (off_s, off_fp, on_s, on_fp,
/// overhead_x). Per-arm seconds are best-of-REPS; overhead_x is the lower
/// of the median paired on/off ratio and the ratio of per-arm floors.
/// Each repetition must reproduce the arm's fingerprint exactly.
fn time_grids() -> (f64, u64, f64, u64, f64) {
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    let (mut fp_off, mut fp_on) = (None, None);
    let mut ratios = Vec::with_capacity(REPS);
    let check = |fp: &mut Option<u64>, this: u64| match *fp {
        None => *fp = Some(this),
        Some(prev) => assert_eq!(
            prev, this,
            "telemetry grid output changed between repetitions — nondeterminism"
        ),
    };
    for _ in 0..REPS {
        let (s_off, fp) = run_grid(false);
        check(&mut fp_off, fp);
        best_off = best_off.min(s_off);
        let (s_on, fp) = run_grid(true);
        check(&mut fp_on, fp);
        best_on = best_on.min(s_on);
        ratios.push(s_on / s_off.max(1e-9));
    }
    ratios.sort_by(f64::total_cmp);
    // Two robust estimates of the on/off ratio: the median paired ratio
    // and the ratio of per-arm floors (best-of-REPS). Host noise is
    // one-sided — stalls only ever slow a pass down — so the smaller of
    // the two is the better estimate of the true overhead.
    let overhead = ratios[ratios.len() / 2].min(best_on / best_off.max(1e-9));
    (
        best_off,
        fp_off.expect("REPS >= 1"),
        best_on,
        fp_on.expect("REPS >= 1"),
        overhead,
    )
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let probe_ns = disabled_probe_ns();
    eprintln!(
        "[bench_obs] disabled probe volley: {probe_ns:.4} ns (contract: < 4 ns for 4 probes)"
    );
    assert!(
        probe_ns < 4.0,
        "4 disabled probes must stay sub-ns each, measured {probe_ns:.3} ns"
    );

    let (s_off, fp_off, s_on, fp_on, overhead) = time_grids();
    eprintln!(
        "[bench_obs] telemetry grid, tsdb off (best of {REPS}): {s_off:.3}s fp={fp_off:016x}"
    );
    eprintln!("[bench_obs] telemetry grid, tsdb on  (best of {REPS}): {s_on:.3}s fp={fp_on:016x}");
    eprintln!("[bench_obs] tsdb overhead (robust over {REPS} interleaved reps): {overhead:.3}x");

    assert_eq!(
        fp_off, fp_on,
        "attaching the time-series store must not change run results"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"obs plane: disabled probes + tsdb-on telemetry quick grid, serial best-of-{}\",\n",
            "  \"host_cores\": {},\n",
            "  \"disabled_probe_ns\": {:.4},\n",
            "  \"tsdb_off\": {{ \"current_s\": {:.3}, \"fingerprint\": \"{:016x}\" }},\n",
            "  \"tsdb_on\": {{ \"current_s\": {:.3}, \"fingerprint\": \"{:016x}\" }},\n",
            "  \"tsdb_overhead_x\": {:.3}\n",
            "}}\n"
        ),
        REPS, host_cores, probe_ns, s_off, fp_off, s_on, fp_on, overhead,
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("{json}");
}
