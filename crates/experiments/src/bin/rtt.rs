//! Regenerate the §IV-B.2 in-text ½-RTT table (ping every second, 20 min).
use amdb_experiments::rtt;

fn main() {
    let results = rtt::run(1200, 7);
    let t = rtt::table(&results);
    println!("{}", t.render());
    amdb_experiments::write_results_csv("rtt", "half_rtt", &t);
}
