//! Bottleneck-attribution report: run fig2-style cells with observability
//! on, print where each cell saturates, and export the trace of the last
//! cell as Chrome-trace JSON (`results/obs_trace.json` — open it in
//! `chrome://tracing` or Perfetto) plus the sampled time series as CSV.
//!
//! Usage: `cargo run --release -p amdb-experiments --bin obs_report [--full]`

use amdb_experiments::obs_report::run_observed_cell;
use amdb_experiments::Fidelity;

fn main() {
    let fidelity = Fidelity::from_args();
    let (users, slave_counts): (u32, Vec<usize>) = match fidelity {
        Fidelity::Full => (175, vec![1, 2, 3, 4]),
        Fidelity::Quick => (175, vec![1, 4]),
    };

    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("results/: {e}");
    }

    let mut last = None;
    for &slaves in &slave_counts {
        eprintln!("obs_report: running slaves={slaves} users={users} ...");
        let cell = run_observed_cell(slaves, users, 42);
        println!(
            "== {} slave{}, {} users ({:.1} ops/s steady) ==",
            slaves,
            if slaves == 1 { "" } else { "s" },
            users,
            cell.report.throughput_ops_s
        );
        println!("{}", cell.bottleneck.render());
        println!();
        last = Some(cell);
    }

    // Export the trace of the last (largest) cell.
    let cell = last.expect("at least one cell ran");
    if let Some(json) = cell.obs.chrome_trace() {
        let path = dir.join("obs_trace.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!(
                "wrote {} ({} bytes) — load in chrome://tracing or Perfetto",
                path.display(),
                json.len()
            ),
            Err(e) => eprintln!("{}: {e}", path.display()),
        }
    }
    if let Some(rec) = cell.obs.recorder() {
        let csv = rec.registry().series_csv();
        let path = dir.join("obs_series.csv");
        match std::fs::write(&path, &csv) {
            Ok(()) => println!("wrote {} ({} bytes)", path.display(), csv.len()),
            Err(e) => eprintln!("{}: {e}", path.display()),
        }
        println!();
        println!("{}", rec.registry().summary_table().render());
    }
}
