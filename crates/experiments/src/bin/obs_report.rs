//! Bottleneck-attribution report: run fig2-style cells with observability
//! on, print where each cell saturates, and export the trace of the last
//! cell as Chrome-trace JSON (`results/obs_trace.json` — open it in
//! `chrome://tracing` or Perfetto) plus the sampled time series as CSV.
//!
//! Usage: `cargo run --release -p amdb-experiments --bin obs_report
//! [--full] [--shards N]`. With `--shards N` (N > 1) each cell runs behind
//! an N-tree sharded front: per-shard bottlenecks, the fleet time-series
//! rollup (`results/obs_series_shardsN.csv`), and the front's
//! scatter-gather trace (`results/obs_trace_shardsN.json`).

use amdb_experiments::obs_report::{run_observed_cell, run_observed_sharded_cell};
use amdb_experiments::{exec, Fidelity};

fn sharded_main(shards: u32, users: u32, slave_counts: &[usize], dir: &std::path::Path) {
    let mut last = None;
    for &slaves in slave_counts {
        eprintln!("obs_report: running shards={shards} slaves={slaves} users={users} ...");
        let (report, bundle) = run_observed_sharded_cell(shards, slaves, users, 42);
        println!(
            "== {shards} shards × {slaves} slave{}, {} users ({:.1} ops/s steady) ==",
            if slaves == 1 { "" } else { "s" },
            users,
            report.throughput_ops_s
        );
        for (k, label) in report.per_shard_bottleneck.iter().enumerate() {
            println!("  shard {k}: bottleneck {label}");
        }
        println!(
            "  cluster-wide: {} ({} scatter reads, {} legs)",
            report.busiest_shard_label(),
            report.scatter_reads,
            report.scatter_legs
        );
        println!();
        last = Some(bundle);
    }
    let bundle = last.expect("at least one cell ran");
    if let Some(fleet) = bundle.fleet_tsdb() {
        let path = dir.join(format!("obs_series_shards{shards}.csv"));
        let csv = fleet.csv();
        match std::fs::write(&path, &csv) {
            Ok(()) => println!("wrote {} ({} bytes)", path.display(), csv.len()),
            Err(e) => eprintln!("{}: {e}", path.display()),
        }
    }
    if let Some(json) = bundle.front.chrome_trace() {
        let path = dir.join(format!("obs_trace_shards{shards}.json"));
        match std::fs::write(&path, &json) {
            Ok(()) => println!(
                "wrote {} ({} bytes) — load in chrome://tracing or Perfetto",
                path.display(),
                json.len()
            ),
            Err(e) => eprintln!("{}: {e}", path.display()),
        }
    }
}

fn main() {
    let fidelity = Fidelity::from_args();
    let (users, slave_counts): (u32, Vec<usize>) = match fidelity {
        Fidelity::Full => (175, vec![1, 2, 3, 4]),
        Fidelity::Quick => (175, vec![1, 4]),
    };

    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("results/: {e}");
    }

    if let Some(shards) = exec::shards_from_args().filter(|&n| n > 1) {
        sharded_main(shards, users, &slave_counts, dir);
        return;
    }

    let mut last = None;
    for &slaves in &slave_counts {
        eprintln!("obs_report: running slaves={slaves} users={users} ...");
        let cell = run_observed_cell(slaves, users, 42);
        println!(
            "== {} slave{}, {} users ({:.1} ops/s steady) ==",
            slaves,
            if slaves == 1 { "" } else { "s" },
            users,
            cell.report.throughput_ops_s
        );
        println!("{}", cell.bottleneck.render());
        println!();
        last = Some(cell);
    }

    // Export the trace of the last (largest) cell.
    let cell = last.expect("at least one cell ran");
    if let Some(json) = cell.obs.chrome_trace() {
        let path = dir.join("obs_trace.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!(
                "wrote {} ({} bytes) — load in chrome://tracing or Perfetto",
                path.display(),
                json.len()
            ),
            Err(e) => eprintln!("{}: {e}", path.display()),
        }
    }
    if let Some(rec) = cell.obs.recorder() {
        let csv = rec.registry().series_csv();
        let path = dir.join("obs_series.csv");
        match std::fs::write(&path, &csv) {
            Ok(()) => println!("wrote {} ({} bytes)", path.display(), csv.len()),
            Err(e) => eprintln!("{}: {e}", path.display()),
        }
        println!();
        println!("{}", rec.registry().summary_table().render());
    }
}
