//! Run the E-SL shared-log experiments: backend comparison grid, per-backend
//! master failover, and the log-replica fault (MTBF) grid.
//! Pass `--full` for the paper-scale grids and `--jobs N` (or `AMDB_JOBS=N`)
//! to pick the worker count — the output is byte-identical either way.
use amdb_experiments::{exec, shared_log, write_results_csv, Fidelity};

fn main() {
    let f = Fidelity::from_args();
    let jobs = exec::jobs_from_args();

    let grid = shared_log::backends(f, jobs);
    let t = shared_log::backends_table(&grid);
    println!("{}", t.render());
    write_results_csv("extensions_shared_log", "backends", &t);

    let fo = shared_log::failover(f, jobs);
    let t = shared_log::failover_table(&fo);
    println!("{}", t.render());
    write_results_csv("extensions_shared_log", "failover", &t);

    let fg = shared_log::fault_grid(f, jobs);
    let t = shared_log::fault_grid_table(&fg);
    println!("{}", t.render());
    write_results_csv("extensions_shared_log", "faults", &t);
}
