//! Backend benchmark: times the quick fig2/fig5 grid under each replication
//! backend (best-of-N, serial), fingerprints the rendered tables, and
//! asserts the statement backend renders byte-identically to the flag-less
//! default grid — the backend trait must be invisible until opted into.
//!
//! ```text
//! cargo run --release -p amdb-experiments --bin bench_backend
//! ```
//!
//! Writes `BENCH_backend.json` (schema-checked by ci.sh).
use amdb_core::BackendKind;
use amdb_experiments::{sweep, Fidelity};
use std::time::Instant;

/// FNV-1a over the rendered bytes: the output fingerprint pinned across
/// runs (and across `--jobs` counts, checked separately by ci.sh).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Repetitions per grid; best-of-N is reported (the workload is
/// deterministic, so the minimum is the least-polluted measurement).
const REPS: usize = 3;

fn time_grid(backend: Option<BackendKind>) -> (f64, u64) {
    let mut spec = sweep::SweepSpec::fig2_fig5(Fidelity::Quick);
    if let Some(b) = backend {
        spec.backend = b;
    }
    let mut best = f64::INFINITY;
    let mut fp = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let results = sweep::run_sweep(&spec, &sweep::SweepOptions::serial());
        let secs = t0.elapsed().as_secs_f64();
        let mut rendered = String::new();
        for r in &results {
            rendered.push_str(&r.throughput.render());
            rendered.push('\n');
            rendered.push_str(&r.delay.render());
            rendered.push('\n');
        }
        let this_fp = fnv64(rendered.as_bytes());
        match fp {
            None => fp = Some(this_fp),
            Some(prev) => assert_eq!(
                prev, this_fp,
                "sweep output changed between repetitions — nondeterminism"
            ),
        }
        best = best.min(secs);
    }
    (best, fp.expect("REPS >= 1"))
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let (s_default, fp_default) = time_grid(None);
    eprintln!(
        "[bench_backend] default grid (best of {REPS}): {s_default:.3}s fp={fp_default:016x}"
    );

    let mut timed = Vec::new();
    for b in [
        BackendKind::Statement,
        BackendKind::Row,
        BackendKind::SharedLog,
    ] {
        let (s, fp) = time_grid(Some(b));
        eprintln!(
            "[bench_backend] {} grid (best of {REPS}): {s:.3}s fp={fp:016x}",
            b.name()
        );
        timed.push((b, s, fp));
    }

    let (_, s_stmt, fp_stmt) = timed[0];
    let (_, s_row, fp_row) = timed[1];
    let (_, s_log, fp_log) = timed[2];
    assert_eq!(
        fp_stmt, fp_default,
        "--backend statement must render byte-identically to the default grid"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fig2/fig5 quick grid per backend, serial best-of-{}\",\n",
            "  \"host_cores\": {},\n",
            "  \"default\": {{ \"current_s\": {:.3}, \"fingerprint\": \"{:016x}\" }},\n",
            "  \"statement\": {{ \"current_s\": {:.3}, \"fingerprint\": \"{:016x}\" }},\n",
            "  \"row\": {{ \"current_s\": {:.3}, \"fingerprint\": \"{:016x}\" }},\n",
            "  \"shared_log\": {{ \"current_s\": {:.3}, \"fingerprint\": \"{:016x}\" }},\n",
            "  \"statement_matches_default\": true,\n",
            "  \"shared_log_overhead_x\": {:.2}\n",
            "}}\n"
        ),
        REPS,
        host_cores,
        s_default,
        fp_default,
        s_stmt,
        fp_stmt,
        s_row,
        fp_row,
        s_log,
        fp_log,
        s_log / s_stmt.max(1e-9),
    );
    std::fs::write("BENCH_backend.json", &json).expect("write BENCH_backend.json");
    println!("{json}");
}
