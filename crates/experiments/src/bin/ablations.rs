//! Run the three ablations (sync modes, balancers, binlog formats).
//! Pass `--jobs N` (or set `AMDB_JOBS=N`) to pick the worker count.
use amdb_experiments::{ablations, exec, Fidelity};

fn main() {
    let f = Fidelity::from_args();
    let jobs = exec::jobs_from_args();
    let a1 = ablations::sync_modes_table(&ablations::sync_modes(f, jobs));
    println!("{}", a1.render());
    amdb_experiments::write_results_csv("ablations", "a1_sync_modes", &a1);
    let a2 = ablations::balancers_table(&ablations::balancers(f, jobs));
    println!("{}", a2.render());
    amdb_experiments::write_results_csv("ablations", "a2_balancers", &a2);
    let a3 = ablations::binlog_formats_table(&ablations::binlog_formats(f, jobs));
    println!("{}", a3.render());
    amdb_experiments::write_results_csv("ablations", "a3_binlog_formats", &a3);
}
