//! Run the three ablations (sync modes, balancers, binlog formats).
use amdb_experiments::{ablations, Fidelity};

fn main() {
    let f = Fidelity::from_args();
    let a1 = ablations::sync_modes_table(&ablations::sync_modes(f));
    println!("{}", a1.render());
    amdb_experiments::write_results_csv("ablations", "a1_sync_modes", &a1);
    let a2 = ablations::balancers_table(&ablations::balancers(f));
    println!("{}", a2.render());
    amdb_experiments::write_results_csv("ablations", "a2_balancers", &a2);
    let a3 = ablations::binlog_formats_table(&ablations::binlog_formats(f));
    println!("{}", a3.render());
    amdb_experiments::write_results_csv("ablations", "a3_binlog_formats", &a3);
}
