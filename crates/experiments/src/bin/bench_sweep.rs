//! Serial-vs-parallel sweep benchmark: runs the quick-fidelity fig2/fig5
//! and fig3/fig6 sweeps at `--jobs 1` and at `--jobs N` (default: available
//! parallelism), asserts the rendered tables are byte-identical, and writes
//! the wall-clock comparison to `BENCH_sweep.json`.
//!
//! ```text
//! cargo run --release -p amdb-experiments --bin bench_sweep -- [--jobs N]
//! ```
use amdb_experiments::{exec, sweep, Fidelity};
use std::time::Instant;

/// Render every table of a sweep result into one string — the byte-level
/// identity the determinism contract promises.
fn render_all(results: &[sweep::PlacementResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&r.throughput.render());
        out.push('\n');
        out.push_str(&r.delay.render());
        out.push('\n');
    }
    out
}

struct Timed {
    serial_s: f64,
    parallel_s: f64,
    identical: bool,
}

fn time_sweep(spec: &sweep::SweepSpec, jobs: usize) -> Timed {
    let t0 = Instant::now();
    let serial = sweep::run_sweep(spec, &sweep::SweepOptions::serial());
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = sweep::run_sweep(spec, &sweep::SweepOptions::silent(jobs));
    let parallel_s = t1.elapsed().as_secs_f64();

    let identical = render_all(&serial) == render_all(&parallel);
    Timed {
        serial_s,
        parallel_s,
        identical,
    }
}

fn main() {
    let jobs = exec::jobs_from_args();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("[bench_sweep] host_cores={host_cores} jobs={jobs}");

    let spec25 = sweep::SweepSpec::fig2_fig5(Fidelity::Quick);
    let t25 = time_sweep(&spec25, jobs);
    eprintln!(
        "[bench_sweep] fig2/fig5 quick: serial {:.2}s, parallel({jobs}) {:.2}s, identical={}",
        t25.serial_s, t25.parallel_s, t25.identical
    );

    let spec36 = sweep::SweepSpec::fig3_fig6(Fidelity::Quick);
    let t36 = time_sweep(&spec36, jobs);
    eprintln!(
        "[bench_sweep] fig3/fig6 quick: serial {:.2}s, parallel({jobs}) {:.2}s, identical={}",
        t36.serial_s, t36.parallel_s, t36.identical
    );

    assert!(
        t25.identical && t36.identical,
        "parallel sweep diverged from serial — determinism contract broken"
    );

    let total_serial = t25.serial_s + t36.serial_s;
    let total_parallel = t25.parallel_s + t36.parallel_s;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"quick-fidelity sweeps, serial vs parallel\",\n",
            "  \"host_cores\": {},\n",
            "  \"jobs\": {},\n",
            "  \"fig2_fig5\": {{ \"serial_s\": {:.3}, \"parallel_s\": {:.3}, \"speedup\": {:.2}, \"identical\": {} }},\n",
            "  \"fig3_fig6\": {{ \"serial_s\": {:.3}, \"parallel_s\": {:.3}, \"speedup\": {:.2}, \"identical\": {} }},\n",
            "  \"total_serial_s\": {:.3},\n",
            "  \"total_parallel_s\": {:.3},\n",
            "  \"speedup\": {:.2}\n",
            "}}\n"
        ),
        host_cores,
        jobs,
        t25.serial_s,
        t25.parallel_s,
        t25.serial_s / t25.parallel_s.max(1e-9),
        t25.identical,
        t36.serial_s,
        t36.parallel_s,
        t36.serial_s / t36.parallel_s.max(1e-9),
        t36.identical,
        total_serial,
        total_parallel,
        total_serial / total_parallel.max(1e-9),
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("{json}");
}
