//! Sim-core raw-speed benchmark: times the quick-fidelity fig2/fig5 and
//! fig3/fig6 sweeps serially on the current sim core and compares against
//! the pre-optimization baseline measured on this host before the slab
//! agenda / hot-path data-structure program landed. Also fingerprints the
//! rendered output so any speedup that changes a single byte fails loudly.
//!
//! ```text
//! cargo run --release -p amdb-experiments --bin bench_simcore [-- --full]
//! ```
//!
//! Writes `BENCH_simcore.json`. `--full` additionally reports the full
//! paper-run baseline from ROADMAP.md for context (it does not re-run the
//! ~1 h serial paper grid).
use amdb_experiments::{sweep, Fidelity};
use std::time::Instant;

/// Pre-optimization serial wall-clock on this host: the fastest of four
/// runs of the pre-PR binary interleaved with the current one in the same
/// session (same quick grids, `--jobs 1`, release build, quiet host).
/// Best-of-N on both sides because the workload is deterministic — the
/// minimum is the measurement least polluted by scheduler noise.
const BASELINE_FIG2_FIG5_S: f64 = 2.028;
const BASELINE_FIG3_FIG6_S: f64 = 8.570;
/// Serial full paper run, pre-optimization (ROADMAP.md / PR 2 measurement).
const BASELINE_FULL_PAPER_S: f64 = 3785.0;

/// Render every table of a sweep result into one string — the byte-level
/// identity the determinism contract promises.
fn render_all(results: &[sweep::PlacementResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&r.throughput.render());
        out.push('\n');
        out.push_str(&r.delay.render());
        out.push('\n');
    }
    out
}

/// FNV-1a over the rendered bytes: the output fingerprint pinned across the
/// old and new sim cores.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Repetitions per grid; best-of-N is reported. Three is enough to shake
/// off a bad scheduler quantum on a one-core host without tripling CI cost
/// too badly.
const REPS: usize = 3;

fn time_grid(spec: &sweep::SweepSpec) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut fp = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let results = sweep::run_sweep(spec, &sweep::SweepOptions::serial());
        let secs = t0.elapsed().as_secs_f64();
        let this_fp = fnv64(render_all(&results).as_bytes());
        match fp {
            None => fp = Some(this_fp),
            Some(prev) => assert_eq!(
                prev, this_fp,
                "sweep output changed between repetitions — sim core is nondeterministic"
            ),
        }
        best = best.min(secs);
    }
    (best, fp.expect("REPS >= 1"))
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let spec25 = sweep::SweepSpec::fig2_fig5(Fidelity::Quick);
    let (s25, fp25) = time_grid(&spec25);
    eprintln!("[bench_simcore] fig2/fig5 quick serial (best of {REPS}): {s25:.3}s fp={fp25:016x}");

    let spec36 = sweep::SweepSpec::fig3_fig6(Fidelity::Quick);
    let (s36, fp36) = time_grid(&spec36);
    eprintln!("[bench_simcore] fig3/fig6 quick serial (best of {REPS}): {s36:.3}s fp={fp36:016x}");

    let total = s25 + s36;
    let baseline_total = BASELINE_FIG2_FIG5_S + BASELINE_FIG3_FIG6_S;
    let speedup = |base: f64, cur: f64| {
        if base > 0.0 {
            base / cur.max(1e-9)
        } else {
            1.0
        }
    };

    let full_note = if full {
        format!(
            ",\n  \"full_paper_baseline_s\": {BASELINE_FULL_PAPER_S:.1},\n  \
             \"full_paper_note\": \"pre-PR serial paper run on this host (ROADMAP.md)\""
        )
    } else {
        String::new()
    };

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sim-core quick grids, serial best-of-{}, pre-PR baseline vs current\",\n",
            "  \"host_cores\": {},\n",
            "  \"fig2_fig5\": {{ \"baseline_s\": {:.3}, \"current_s\": {:.3}, \"speedup\": {:.2}, \"fingerprint\": \"{:016x}\" }},\n",
            "  \"fig3_fig6\": {{ \"baseline_s\": {:.3}, \"current_s\": {:.3}, \"speedup\": {:.2}, \"fingerprint\": \"{:016x}\" }},\n",
            "  \"total_baseline_s\": {:.3},\n",
            "  \"total_current_s\": {:.3},\n",
            "  \"speedup\": {:.2}{}\n",
            "}}\n"
        ),
        REPS,
        host_cores,
        BASELINE_FIG2_FIG5_S,
        s25,
        speedup(BASELINE_FIG2_FIG5_S, s25),
        fp25,
        BASELINE_FIG3_FIG6_S,
        s36,
        speedup(BASELINE_FIG3_FIG6_S, s36),
        fp36,
        baseline_total,
        total,
        speedup(baseline_total, total),
        full_note,
    );
    std::fs::write("BENCH_simcore.json", &json).expect("write BENCH_simcore.json");
    println!("{json}");
}
