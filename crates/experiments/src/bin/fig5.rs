//! Regenerate Fig. 5: average relative replication delay, 50/50 mix.
//! Default runs a thinned quick grid; pass `--full` for the paper grid.
use amdb_experiments::{sweep, Fidelity};

fn main() {
    let fidelity = Fidelity::from_args();
    let spec = sweep::SweepSpec::fig2_fig5(fidelity);
    let results = sweep::run_sweep(&spec, |line| eprintln!("[fig5] {line}"));
    for r in &results {
        println!("{}", r.delay.render());
        amdb_experiments::write_results_csv("fig5", &r.label, &r.delay);
    }
}
