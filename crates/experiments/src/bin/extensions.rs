//! Run the extension experiments: failover (E-F) and autoscaling (E-A).
//! Pass `--jobs N` (or set `AMDB_JOBS=N`) to pick the worker count.
use amdb_experiments::{exec, extensions, write_results_csv, Fidelity};

fn main() {
    let f = Fidelity::from_args();
    let jobs = exec::jobs_from_args();
    let fo = extensions::failover(f);
    let t = extensions::failover_table(&fo);
    println!("{}", t.render());
    write_results_csv("extensions", "failover", &t);

    let (st, auto) = extensions::autoscale(f, jobs);
    let t = extensions::autoscale_table(&st, &auto);
    println!("{}", t.render());
    write_results_csv("extensions", "autoscale", &t);

    let (mf_healthy, mf_lagging) = extensions::master_failover(f, jobs);
    let t = extensions::master_failover_table(&mf_healthy, &mf_lagging);
    println!("{}", t.render());
    write_results_csv("extensions", "master_failover", &t);

    let wc = extensions::workload_classes(f, jobs);
    let t = extensions::workload_classes_table(&wc);
    println!("{}", t.render());
    write_results_csv("extensions", "workload_classes", &t);
}
