//! Regenerate Fig. 6: average relative replication delay, 80/20 mix.
//! Default runs a thinned quick grid; pass `--full` for the paper grid.
use amdb_experiments::{sweep, Fidelity};

fn main() {
    let fidelity = Fidelity::from_args();
    let spec = sweep::SweepSpec::fig3_fig6(fidelity);
    let results = sweep::run_sweep(&spec, |line| eprintln!("[fig6] {line}"));
    for r in &results {
        println!("{}", r.delay.render());
        amdb_experiments::write_results_csv("fig6", &r.label, &r.delay);
    }
}
