//! Regenerate Fig. 6: average relative replication delay, 80/20 mix.
//! Default runs a thinned quick grid; pass `--full` for the paper grid and
//! `--jobs N` (or `AMDB_JOBS=N`) to pick the worker count; `--backend
//! statement|row|shared-log` re-runs the grid under that replication
//! backend (`statement` is byte-identical to the flag-less default).
use amdb_experiments::{exec, sweep, Fidelity};

fn main() {
    let fidelity = Fidelity::from_args();
    let mut spec = sweep::SweepSpec::fig3_fig6(fidelity);
    if let Some(b) = exec::backend_from_args() {
        spec.backend = b;
    }
    let opts = sweep::SweepOptions::with_progress(exec::jobs_from_args(), "[fig6] ");
    let results = sweep::run_sweep(&spec, &opts);
    for r in &results {
        println!("{}", r.delay.render());
        amdb_experiments::write_results_csv("fig6", &r.label, &r.delay);
    }
}
