//! Regenerate Fig. 6: average relative replication delay, 80/20 mix.
//! Default runs a thinned quick grid; pass `--full` for the paper grid and
//! `--jobs N` (or `AMDB_JOBS=N`) to pick the worker count.
use amdb_experiments::{exec, sweep, Fidelity};

fn main() {
    let fidelity = Fidelity::from_args();
    let spec = sweep::SweepSpec::fig3_fig6(fidelity);
    let opts = sweep::SweepOptions::with_progress(exec::jobs_from_args(), "[fig6] ");
    let results = sweep::run_sweep(&spec, &opts);
    for r in &results {
        println!("{}", r.delay.render());
        amdb_experiments::write_results_csv("fig6", &r.label, &r.delay);
    }
}
