//! Run the parallel-apply extension (E-PA): true read staleness vs the
//! slave apply-worker count, under the row-format binlog. Pass `--full`
//! for the paper-scale grid and `--jobs N` (or `AMDB_JOBS=N`) to pick the
//! worker count.
use amdb_experiments::sweep::SweepOptions;
use amdb_experiments::{exec, parallel_apply, write_results_csv, Fidelity};

fn main() {
    let f = Fidelity::from_args();
    let jobs = exec::jobs_from_args();
    let spec = parallel_apply::ParallelApplySpec::paper_set(f);
    let cells = parallel_apply::run(&spec, &SweepOptions::with_progress(jobs, "[E-PA] "));
    let t = parallel_apply::table(&spec, &cells);
    println!("{}", t.render());
    write_results_csv("extensions", "parallel_apply", &t);
}
