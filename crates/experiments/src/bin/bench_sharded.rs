//! Sharded-sweep benchmark: times the quick-fidelity fig2_sharded grid at
//! shard counts {1, 4} serially and fingerprints the rendered output, so a
//! perf regression or a determinism break in the sharded world fails
//! loudly in CI.
//!
//! ```text
//! cargo run --release -p amdb-experiments --bin bench_sharded
//! ```
//!
//! Writes `BENCH_sharded.json` (schema-checked by ci.sh).
use amdb_experiments::{sharded, sweep, Fidelity};
use std::time::Instant;

/// FNV-1a over the rendered bytes: the output fingerprint pinned across
/// runs (and across `--jobs` counts, checked separately by ci.sh).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Repetitions per grid; best-of-N is reported (the workload is
/// deterministic, so the minimum is the least-polluted measurement).
const REPS: usize = 3;

fn time_grid(spec: &sharded::ShardedSweepSpec) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut fp = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = sharded::run_sharded_sweep(spec, &sweep::SweepOptions::serial());
        let secs = t0.elapsed().as_secs_f64();
        let rendered = format!("{}\n{}\n", r.throughput.render(), r.latency_p95.render());
        let this_fp = fnv64(rendered.as_bytes());
        match fp {
            None => fp = Some(this_fp),
            Some(prev) => assert_eq!(
                prev, this_fp,
                "sharded sweep output changed between repetitions — nondeterminism"
            ),
        }
        best = best.min(secs);
    }
    (best, fp.expect("REPS >= 1"))
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let base = sharded::ShardedSweepSpec::scaleout(Fidelity::Quick);

    let mut one = base.clone();
    one.shards = vec![1];
    let (s1, fp1) = time_grid(&one);
    eprintln!("[bench_sharded] 1 shard quick serial (best of {REPS}): {s1:.3}s fp={fp1:016x}");

    let mut four = base.clone();
    four.shards = vec![4];
    let (s4, fp4) = time_grid(&four);
    eprintln!("[bench_sharded] 4 shards quick serial (best of {REPS}): {s4:.3}s fp={fp4:016x}");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fig2_sharded quick grid, serial best-of-{}, shards 1 vs 4\",\n",
            "  \"host_cores\": {},\n",
            "  \"shards1\": {{ \"current_s\": {:.3}, \"fingerprint\": \"{:016x}\" }},\n",
            "  \"shards4\": {{ \"current_s\": {:.3}, \"fingerprint\": \"{:016x}\" }},\n",
            "  \"total_current_s\": {:.3},\n",
            "  \"tree_overhead_x\": {:.2}\n",
            "}}\n"
        ),
        REPS,
        host_cores,
        s1,
        fp1,
        s4,
        fp4,
        s1 + s4,
        s4 / s1.max(1e-9),
    );
    std::fs::write("BENCH_sharded.json", &json).expect("write BENCH_sharded.json");
    println!("{json}");
}
