//! Plan-cache benchmark: runs the quick-fidelity fig2/fig5 sweep with the
//! statement→plan cache off and on, asserts the rendered tables are
//! byte-identical (the cache is a pure speed knob), and writes the
//! wall-clock comparison to `BENCH_hotpath.json`.
//!
//! ```text
//! cargo run --release -p amdb-experiments --bin bench_hotpath -- [--jobs N]
//! ```
use amdb_experiments::{exec, sweep, Fidelity};
use std::time::Instant;

/// Render every table of a sweep result into one string — the byte-level
/// identity the transparency contract promises.
fn render_all(results: &[sweep::PlacementResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&r.throughput.render());
        out.push('\n');
        out.push_str(&r.delay.render());
        out.push('\n');
    }
    out
}

/// Time one sweep with the plan cache forced to `mode` ("on"/"off"). The
/// env var is read when the sweep builds its template engine; every replica
/// forked from it inherits the setting.
fn timed_sweep(spec: &sweep::SweepSpec, jobs: usize, mode: &str) -> (f64, String) {
    std::env::set_var("AMDB_PLAN_CACHE", mode);
    let t0 = Instant::now();
    let results = sweep::run_sweep(spec, &sweep::SweepOptions::silent(jobs));
    let secs = t0.elapsed().as_secs_f64();
    std::env::remove_var("AMDB_PLAN_CACHE");
    (secs, render_all(&results))
}

fn main() {
    let jobs = exec::jobs_from_args();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("[bench_hotpath] host_cores={host_cores} jobs={jobs}");

    let spec = sweep::SweepSpec::fig2_fig5(Fidelity::Quick);
    let (off_s, off_render) = timed_sweep(&spec, jobs, "off");
    eprintln!("[bench_hotpath] fig2/fig5 quick, cache off: {off_s:.2}s");
    let (on_s, on_render) = timed_sweep(&spec, jobs, "on");
    eprintln!("[bench_hotpath] fig2/fig5 quick, cache on:  {on_s:.2}s");

    let identical = off_render == on_render;
    assert!(
        identical,
        "plan cache changed sweep output — transparency contract broken"
    );

    let speedup = off_s / on_s.max(1e-9);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"quick-fidelity fig2/fig5 sweep, plan cache off vs on\",\n",
            "  \"host_cores\": {},\n",
            "  \"jobs\": {},\n",
            "  \"cache_off_s\": {:.3},\n",
            "  \"cache_on_s\": {:.3},\n",
            "  \"speedup\": {:.2},\n",
            "  \"identical\": {}\n",
            "}}\n"
        ),
        host_cores, jobs, off_s, on_s, speedup, identical,
    );
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("{json}");
}
