//! Pins the quick-grid output bytes across sim-core rewrites and `--jobs`
//! counts.
//!
//! The sim-core raw-speed program (slab agenda, hot-path storage, typed
//! cluster events) is only allowed to change wall-clock, never output.
//! These fingerprints were recorded before that program landed; any core
//! change that shifts a single byte of the rendered fig2/fig5 or fig3/fig6
//! quick grids fails here with the old and new hashes side by side.
//!
//! The grids take seconds in release and minutes in debug, so the test is
//! ignored under `debug_assertions`; CI runs it via
//! `cargo test --release -p amdb-experiments --test simcore_fingerprint`.

use amdb_experiments::{sweep, Fidelity};

/// FNV-1a, matching `bench_simcore`'s fingerprint.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn render_all(results: &[sweep::PlacementResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&r.throughput.render());
        out.push('\n');
        out.push_str(&r.delay.render());
        out.push('\n');
    }
    out
}

const FIG2_FIG5_FP: u64 = 0x5529_4b98_a489_afbd;
const FIG3_FIG6_FP: u64 = 0x85d2_c411_7df7_430a;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "quick grids take minutes unoptimized; run with --release"
)]
fn quick_grid_bytes_are_pinned_across_jobs() {
    let grids = [
        (
            "fig2_fig5",
            sweep::SweepSpec::fig2_fig5(Fidelity::Quick),
            FIG2_FIG5_FP,
        ),
        (
            "fig3_fig6",
            sweep::SweepSpec::fig3_fig6(Fidelity::Quick),
            FIG3_FIG6_FP,
        ),
    ];
    for (name, spec, expect) in grids {
        let serial = render_all(&sweep::run_sweep(&spec, &sweep::SweepOptions::serial()));
        let got = fnv64(serial.as_bytes());
        assert_eq!(
            got, expect,
            "{name} quick-grid bytes changed: fp {got:016x} != pinned {expect:016x}"
        );
        let parallel = render_all(&sweep::run_sweep(&spec, &sweep::SweepOptions::silent(4)));
        assert_eq!(
            serial, parallel,
            "{name} diverges between --jobs 1 and --jobs 4"
        );
    }
}
