//! # amdb-obs — deterministic observability for the simulated cluster
//!
//! A zero-cost-when-disabled observability layer for the discrete-event
//! simulation. Every record is stamped with **simulated** time, so two runs
//! with the same seed produce bit-identical traces — observability never
//! perturbs the experiment it observes.
//!
//! The pieces:
//!
//! * [`Recorder`] / [`TraceRecorder`] / [`NullRecorder`] — structured span,
//!   instant, and counter records ([`Record`]) collected in event order;
//! * [`Obs`] — an enum dispatcher over the recorders whose methods compile
//!   to a single discriminant test (and nothing else) when disabled;
//! * [`MetricsRegistry`] — counters, gauges, time series, and fixed-bucket
//!   histograms (reusing [`amdb_metrics`]) keyed by `(component, instance,
//!   name)` in a `BTreeMap`, so iteration order — and therefore every
//!   export — is deterministic;
//! * [`Tsdb`] — a fixed-interval, bounded-memory time-series store whose
//!   per-slot cells merge across shard trees, the substrate for fleet
//!   rollups (per-shard and fleet-wide staleness/throughput/utilization
//!   series queryable at run end);
//! * [`openmetrics_text`] / [`openmetrics_text_multi`] — OpenMetrics text
//!   exposition of one registry or a whole fleet of shard-tagged ones;
//! * [`chrome_trace_json`] — Chrome trace-format (`chrome://tracing`,
//!   Perfetto) JSON export of the record stream;
//! * [`BottleneckReport`] — per-instance utilization / queue-depth rows over
//!   the measured steady window, naming the saturated resource. This is the
//!   paper's central observation made legible: *"the observed saturation
//!   point … appearing in slaves at the beginning … eventually the
//!   saturation will transit from slaves to the master"* (§IV-A).

pub mod bottleneck;
pub mod chrome;
pub mod openmetrics;
pub mod registry;
pub mod trace;
pub mod tsdb;

pub use bottleneck::{BottleneckReport, ResourceUsage};
pub use chrome::chrome_trace_json;
pub use openmetrics::{openmetrics_text, openmetrics_text_multi};
pub use registry::{Metric, MetricId, MetricKey, MetricsRegistry};
pub use trace::{FlowPhase, NullRecorder, Record, Recorder, TraceRecorder};
pub use tsdb::{Tsdb, TsdbCell, TsdbTrack};

use amdb_sim::SimTime;

/// The instrumented component a record or metric belongs to.
///
/// Ordered so registry iteration (and every export derived from it) has a
/// stable, meaningful order: compute first, then the layers above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// A virtual machine's FIFO CPU server (`amdb-sim::FifoCpu`).
    Cpu,
    /// The connection pool (`amdb-pool`).
    Pool,
    /// The read/write-splitting proxy (`amdb-proxy`).
    Proxy,
    /// Replication: relay logs, apply threads, heartbeats (`amdb-repl`).
    Repl,
    /// The SQL engine: per-operation-class service demand (`amdb-sql`).
    Sql,
    /// Cluster-level control events (failover, scaling, phase markers).
    Cluster,
}

impl Component {
    /// Stable lowercase label used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Component::Cpu => "cpu",
            Component::Pool => "pool",
            Component::Proxy => "proxy",
            Component::Repl => "repl",
            Component::Sql => "sql",
            Component::Cluster => "cluster",
        }
    }

    /// Small integer id, used as the Chrome-trace `pid`.
    pub fn id(self) -> u32 {
        match self {
            Component::Cpu => 1,
            Component::Pool => 2,
            Component::Proxy => 3,
            Component::Repl => 4,
            Component::Sql => 5,
            Component::Cluster => 6,
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Observability configuration knob carried in `ClusterConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record traces and metrics. When `false` the cluster holds
    /// [`Obs::Null`] and every probe is a single branch.
    pub enabled: bool,
    /// Period of the background sampler that records queue depths,
    /// utilizations, pool occupancy, and staleness gauges (milliseconds of
    /// simulated time).
    pub sample_interval_ms: u64,
    /// Attach the fixed-interval time-series store ([`Tsdb`], slotted on
    /// `sample_interval_ms`) so counter samples and explicit tsdb probes
    /// build mergeable per-interval series. Only meaningful when `enabled`.
    pub tsdb: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            sample_interval_ms: 250,
            tsdb: true,
        }
    }
}

impl ObsConfig {
    /// Enabled with the default sampling period.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Enum dispatcher over the two recorder implementations.
///
/// Probes call these inherent methods directly; with [`Obs::Null`] each call
/// inlines to a discriminant test and no further work (arguments to the
/// metric paths are computed by the caller, so keep heavyweight argument
/// computation behind [`Obs::is_enabled`]).
#[derive(Debug, Default)]
pub enum Obs {
    /// Observability off: every probe is a no-op.
    #[default]
    Null,
    /// Observability on: records accumulate in a [`TraceRecorder`].
    Trace(Box<TraceRecorder>),
}

impl Obs {
    /// An active recorder.
    pub fn trace() -> Self {
        Obs::Trace(Box::new(TraceRecorder::new()))
    }

    /// Build from a config knob.
    pub fn from_config(cfg: &ObsConfig) -> Self {
        if cfg.enabled {
            let mut t = TraceRecorder::new();
            if cfg.tsdb {
                t.enable_tsdb(cfg.sample_interval_ms.max(1));
            }
            Obs::Trace(Box::new(t))
        } else {
            Obs::Null
        }
    }

    /// Whether records are being collected. Use to guard probe-side work
    /// that is more expensive than the call itself.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, Obs::Trace(_))
    }

    /// Record a completed span `[start, end)`.
    #[inline]
    pub fn span(
        &mut self,
        comp: Component,
        inst: u32,
        name: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        if let Obs::Trace(t) = self {
            t.span(comp, inst, name, start, end);
        }
    }

    /// Record a point-in-time event.
    #[inline]
    pub fn instant(&mut self, comp: Component, inst: u32, name: &'static str, at: SimTime) {
        if let Obs::Trace(t) = self {
            t.instant(comp, inst, name, at);
        }
    }

    /// Record a counter-track sample (rendered as a stepped area chart by
    /// trace viewers) *and* mirror it into the registry as a time series.
    #[inline]
    pub fn counter(
        &mut self,
        comp: Component,
        inst: u32,
        name: &'static str,
        at: SimTime,
        value: f64,
    ) {
        if let Obs::Trace(t) = self {
            t.counter(comp, inst, name, at, value);
        }
    }

    /// Increment a monotonic counter in the registry.
    #[inline]
    pub fn incr(&mut self, comp: Component, inst: u32, name: &'static str, by: u64) {
        if let Obs::Trace(t) = self {
            t.registry_mut().incr(comp, inst, name, by);
        }
    }

    /// Set a gauge (last-write-wins; the registry also tracks its max).
    #[inline]
    pub fn gauge(&mut self, comp: Component, inst: u32, name: &'static str, value: f64) {
        if let Obs::Trace(t) = self {
            t.registry_mut().gauge(comp, inst, name, value);
        }
    }

    /// Record a histogram observation. The histogram is created on first
    /// use with range `[lo, hi)` and `buckets` buckets.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &mut self,
        comp: Component,
        inst: u32,
        name: &'static str,
        value: f64,
        lo: f64,
        hi: f64,
        buckets: usize,
    ) {
        if let Obs::Trace(t) = self {
            t.registry_mut()
                .observe(comp, inst, name, value, lo, hi, buckets);
        }
    }

    /// Record a streaming-sketch observation (bounded-memory quantile
    /// estimation; see [`MetricsRegistry::observe_sketch`]).
    #[inline]
    pub fn observe_sketch(&mut self, comp: Component, inst: u32, name: &'static str, value: f64) {
        if let Obs::Trace(t) = self {
            t.registry_mut().observe_sketch(comp, inst, name, value);
        }
    }

    /// Pre-resolve a sketch handle for a hot probe site. Returns `None` when
    /// tracing is off; the metric is created on resolution, so resolve lazily
    /// (at first record, not at construction) to keep exports identical to
    /// the name-addressed path.
    pub fn sketch_handle(
        &mut self,
        comp: Component,
        inst: u32,
        name: &'static str,
    ) -> Option<MetricId> {
        match self {
            Obs::Trace(t) => Some(t.registry_mut().sketch_handle(comp, inst, name)),
            _ => None,
        }
    }

    /// Pre-resolve a counter handle for a hot probe site (`None` when off;
    /// same lazy-resolution caveat as [`Self::sketch_handle`]).
    pub fn counter_handle(
        &mut self,
        comp: Component,
        inst: u32,
        name: &'static str,
    ) -> Option<MetricId> {
        match self {
            Obs::Trace(t) => Some(t.registry_mut().counter_handle(comp, inst, name)),
            _ => None,
        }
    }

    /// Record into a pre-resolved sketch — one array index instead of a
    /// keyed map lookup per observation.
    #[inline]
    pub fn observe_sketch_id(&mut self, id: MetricId, value: f64) {
        if let Obs::Trace(t) = self {
            t.registry_mut().observe_sketch_id(id, value);
        }
    }

    /// Add to a pre-resolved counter.
    #[inline]
    pub fn incr_id(&mut self, id: MetricId, by: u64) {
        if let Obs::Trace(t) = self {
            t.registry_mut().incr_id(id, by);
        }
    }

    /// Record one hop of a causal flow (Chrome-trace arrow). Hops sharing
    /// `id` chain into one arrow from `Start` through `Step`s to `End`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn flow(
        &mut self,
        phase: FlowPhase,
        comp: Component,
        inst: u32,
        name: &'static str,
        at: SimTime,
        id: u64,
    ) {
        if let Obs::Trace(t) = self {
            t.flow(phase, comp, inst, name, at, id);
        }
    }

    /// Record a distribution observation into the time-series store, when
    /// one is attached (sketch cell in the interval slot covering `at`).
    /// Use for bounded-rate sites — batch completions, leg arrivals — not
    /// per-event hot paths.
    #[inline]
    pub fn tsdb_observe(
        &mut self,
        comp: Component,
        inst: u32,
        name: &'static str,
        at: SimTime,
        value: f64,
    ) {
        if let Obs::Trace(t) = self {
            t.tsdb_observe(comp, inst, name, at, value);
        }
    }

    /// Record a scalar sample (gauge, utilization, backlog) into the
    /// time-series store, when one is attached. The store is a curated
    /// plane: counters do not mirror into it automatically — a series is
    /// opted in with this probe at its (bounded-rate) sampling site.
    #[inline]
    pub fn tsdb_record(
        &mut self,
        comp: Component,
        inst: u32,
        name: &'static str,
        at: SimTime,
        value: f64,
    ) {
        if let Obs::Trace(t) = self {
            t.tsdb_record(comp, inst, name, at, value);
        }
    }

    /// The attached time-series store, when enabled and configured.
    pub fn tsdb(&self) -> Option<&Tsdb> {
        self.recorder().and_then(TraceRecorder::tsdb)
    }

    /// Detach the time-series store for fleet-level merging.
    pub fn take_tsdb(&mut self) -> Option<Tsdb> {
        match self {
            Obs::Trace(t) => t.take_tsdb(),
            Obs::Null => None,
        }
    }

    /// The collected recorder, if enabled.
    pub fn recorder(&self) -> Option<&TraceRecorder> {
        match self {
            Obs::Trace(t) => Some(t),
            Obs::Null => None,
        }
    }

    /// Chrome-trace JSON of everything recorded so far; `None` when
    /// disabled.
    pub fn chrome_trace(&self) -> Option<String> {
        self.recorder().map(|t| chrome_trace_json(t.records()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdb_sim::SimTime;

    #[test]
    fn null_obs_records_nothing() {
        let mut obs = Obs::Null;
        obs.span(
            Component::Cpu,
            0,
            "x",
            SimTime::ZERO,
            SimTime::from_millis(1),
        );
        obs.incr(Component::Pool, 0, "c", 1);
        assert!(!obs.is_enabled());
        assert!(obs.recorder().is_none());
        assert!(obs.chrome_trace().is_none());
    }

    #[test]
    fn trace_obs_collects_in_order() {
        let mut obs = Obs::trace();
        obs.span(
            Component::Cpu,
            1,
            "serve",
            SimTime::ZERO,
            SimTime::from_millis(2),
        );
        obs.instant(
            Component::Cluster,
            0,
            "steady_start",
            SimTime::from_millis(1),
        );
        obs.counter(
            Component::Repl,
            0,
            "relay_depth",
            SimTime::from_millis(1),
            3.0,
        );
        let rec = obs.recorder().unwrap();
        assert_eq!(rec.records().len(), 3);
        assert!(matches!(rec.records()[0], Record::Span { .. }));
        assert!(matches!(rec.records()[2], Record::Counter { .. }));
    }

    #[test]
    fn component_labels_are_stable() {
        assert_eq!(Component::Cpu.as_str(), "cpu");
        assert_eq!(Component::Cluster.id(), 6);
        assert!(Component::Cpu < Component::Pool);
    }

    #[test]
    fn obs_from_config_honours_knob() {
        assert!(!Obs::from_config(&ObsConfig::default()).is_enabled());
        assert!(Obs::from_config(&ObsConfig::enabled()).is_enabled());
    }

    #[test]
    fn obs_from_config_attaches_tsdb_on_request() {
        let mut on = Obs::from_config(&ObsConfig::enabled());
        assert!(on.tsdb().is_some(), "tsdb defaults on when tracing");
        assert_eq!(on.tsdb().unwrap().interval_ms(), 250);
        on.tsdb_observe(Component::Repl, 0, "lat", SimTime::from_millis(1), 3.0);
        assert_eq!(on.take_tsdb().unwrap().len(), 1);
        assert!(on.tsdb().is_none(), "take detaches");

        let off = Obs::from_config(&ObsConfig {
            tsdb: false,
            ..ObsConfig::enabled()
        });
        assert!(off.is_enabled() && off.tsdb().is_none());
        assert!(Obs::from_config(&ObsConfig::default()).tsdb().is_none());
    }
}
