//! Deterministic metrics registry.
//!
//! Metrics are keyed by `(component, instance, name)` in a `BTreeMap`, so
//! every iteration — and every table/CSV export built from one — visits keys
//! in the same order on every run. Histograms and time series reuse the
//! `amdb-metrics` implementations.

use crate::Component;
use amdb_metrics::{Histogram, QuantileSketch, Table, TimeSeries};
use std::collections::BTreeMap;

/// Registry key: which metric on which component instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Owning component.
    pub comp: Component,
    /// Instance index within the component (node id, slave id, …).
    pub inst: u32,
    /// Metric name (static so probes never allocate).
    pub name: &'static str,
}

/// A registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotonic event count.
    Counter(u64),
    /// Last-written value plus the maximum ever written.
    Gauge { last: f64, max: f64 },
    /// Timestamped samples (seconds of simulated time).
    Series(TimeSeries),
    /// Fixed-bucket distribution.
    Histogram(Histogram),
    /// Log-bucket streaming quantile sketch — the bounded-memory
    /// replacement for full-sample percentile paths on hot probes.
    Sketch(QuantileSketch),
}

/// Pre-resolved handle to one registered metric: a direct index into the
/// registry's slot vector, skipping the per-probe `BTreeMap` descent (and
/// its three-word key comparisons). Handles are only valid for the registry
/// that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// Deterministically ordered collection of counters, gauges, series, and
/// histograms.
///
/// Storage is split: `slots` holds the metric values (probe writes are an
/// index away), `index` maps keys to slots and — being a `BTreeMap` —
/// fixes every export's iteration order regardless of registration order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    index: BTreeMap<MetricKey, usize>,
    slots: Vec<Metric>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(comp: Component, inst: u32, name: &'static str) -> MetricKey {
        MetricKey { comp, inst, name }
    }

    /// Slot index for a key, creating the metric via `mk` on first use.
    fn slot_of(
        &mut self,
        comp: Component,
        inst: u32,
        name: &'static str,
        mk: impl FnOnce() -> Metric,
    ) -> usize {
        match self.index.entry(Self::key(comp, inst, name)) {
            std::collections::btree_map::Entry::Occupied(e) => *e.get(),
            std::collections::btree_map::Entry::Vacant(v) => {
                let i = self.slots.len();
                self.slots.push(mk());
                v.insert(i);
                i
            }
        }
    }

    /// Pre-resolve a counter handle (creating the counter at zero). Hot
    /// probes hold the [`MetricId`] and call [`Self::incr_id`] per event.
    pub fn counter_handle(&mut self, comp: Component, inst: u32, name: &'static str) -> MetricId {
        MetricId(self.slot_of(comp, inst, name, || Metric::Counter(0)))
    }

    /// Pre-resolve a sketch handle (creating the sketch on first call).
    pub fn sketch_handle(&mut self, comp: Component, inst: u32, name: &'static str) -> MetricId {
        MetricId(self.slot_of(comp, inst, name, || {
            Metric::Sketch(QuantileSketch::latency())
        }))
    }

    /// Add `by` to a pre-resolved counter.
    ///
    /// # Panics
    /// Panics if the handle names a non-counter (handle/probe kind bug).
    #[inline]
    pub fn incr_id(&mut self, id: MetricId, by: u64) {
        match &mut self.slots[id.0] {
            Metric::Counter(c) => *c += by,
            other => panic!("MetricId does not name a counter: {other:?}"),
        }
    }

    /// Record into a pre-resolved sketch.
    ///
    /// # Panics
    /// Panics if the handle names a non-sketch (handle/probe kind bug).
    #[inline]
    pub fn observe_sketch_id(&mut self, id: MetricId, value: f64) {
        match &mut self.slots[id.0] {
            Metric::Sketch(s) => s.record(value),
            other => panic!("MetricId does not name a sketch: {other:?}"),
        }
    }

    /// Add `by` to a counter, creating it at zero on first use.
    ///
    /// # Panics
    /// Panics if the key is already registered as a different metric kind
    /// (probe bug: one name, one kind).
    pub fn incr(&mut self, comp: Component, inst: u32, name: &'static str, by: u64) {
        let i = self.slot_of(comp, inst, name, || Metric::Counter(0));
        match &mut self.slots[i] {
            Metric::Counter(c) => *c += by,
            other => panic!("metric {comp}/{inst}/{name} is not a counter: {other:?}"),
        }
    }

    /// Set a gauge; tracks the maximum across all writes.
    pub fn gauge(&mut self, comp: Component, inst: u32, name: &'static str, value: f64) {
        let i = self.slot_of(comp, inst, name, || Metric::Gauge {
            last: value,
            max: value,
        });
        match &mut self.slots[i] {
            Metric::Gauge { last, max } => {
                *last = value;
                if value > *max {
                    *max = value;
                }
            }
            other => panic!("metric {comp}/{inst}/{name} is not a gauge: {other:?}"),
        }
    }

    /// Append a `(t_seconds, value)` sample to a time series.
    pub fn sample(&mut self, comp: Component, inst: u32, name: &'static str, t: f64, value: f64) {
        let i = self.slot_of(comp, inst, name, || Metric::Series(TimeSeries::new()));
        match &mut self.slots[i] {
            Metric::Series(s) => s.push(t, value),
            other => panic!("metric {comp}/{inst}/{name} is not a series: {other:?}"),
        }
    }

    /// Record a histogram observation; the histogram is created over
    /// `[lo, hi)` with `buckets` buckets on first use (later calls ignore
    /// the bounds).
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &mut self,
        comp: Component,
        inst: u32,
        name: &'static str,
        value: f64,
        lo: f64,
        hi: f64,
        buckets: usize,
    ) {
        let i = self.slot_of(comp, inst, name, || {
            Metric::Histogram(Histogram::new(lo, hi, buckets))
        });
        match &mut self.slots[i] {
            Metric::Histogram(h) => h.record(value),
            other => panic!("metric {comp}/{inst}/{name} is not a histogram: {other:?}"),
        }
    }

    /// Record an observation into a streaming quantile sketch, created with
    /// the [`amdb_metrics::SketchConfig::LATENCY`] layout on first use.
    /// Unlike [`Self::observe`] the memory is bounded and the quantile
    /// estimate tracks the exact percentile to within one bucket width.
    pub fn observe_sketch(&mut self, comp: Component, inst: u32, name: &'static str, value: f64) {
        let i = self.slot_of(comp, inst, name, || {
            Metric::Sketch(QuantileSketch::latency())
        });
        match &mut self.slots[i] {
            Metric::Sketch(s) => s.record(value),
            other => panic!("metric {comp}/{inst}/{name} is not a sketch: {other:?}"),
        }
    }

    /// Look up a metric.
    pub fn get(&self, comp: Component, inst: u32, name: &'static str) -> Option<&Metric> {
        self.index
            .get(&Self::key(comp, inst, name))
            .map(|&i| &self.slots[i])
    }

    /// Counter value, or 0 when absent / not a counter.
    pub fn counter_value(&self, comp: Component, inst: u32, name: &'static str) -> u64 {
        match self.get(comp, inst, name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Gauge `(last, max)`, when present.
    pub fn gauge_value(
        &self,
        comp: Component,
        inst: u32,
        name: &'static str,
    ) -> Option<(f64, f64)> {
        match self.get(comp, inst, name) {
            Some(Metric::Gauge { last, max }) => Some((*last, *max)),
            _ => None,
        }
    }

    /// All metrics in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &Metric)> {
        self.index.iter().map(|(k, &i)| (k, &self.slots[i]))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Scalar summary table: one row per counter/gauge/histogram (series are
    /// exported separately by [`Self::series_table`]).
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(
            "metrics",
            vec![
                "component".into(),
                "instance".into(),
                "metric".into(),
                "kind".into(),
                "value".into(),
                "max".into(),
            ],
        );
        for (k, m) in self.iter() {
            let (kind, value, max) = match m {
                Metric::Counter(c) => ("counter", c.to_string(), "-".to_string()),
                Metric::Gauge { last, max } => ("gauge", format!("{last:.3}"), format!("{max:.3}")),
                Metric::Histogram(h) => (
                    "histogram",
                    format!("n={}", h.count()),
                    match h.approx_quantile(0.95) {
                        Some(q) => format!("p95={q:.3}"),
                        None => "-".to_string(),
                    },
                ),
                Metric::Sketch(s) => (
                    "sketch",
                    format!("n={}", s.count()),
                    match s.quantile(0.95) {
                        Some(q) => format!("p95={q:.3}"),
                        None => "-".to_string(),
                    },
                ),
                Metric::Series(_) => continue,
            };
            t.push_row(vec![
                k.comp.as_str().to_string(),
                k.inst.to_string(),
                k.name.to_string(),
                kind.to_string(),
                value,
                max,
            ]);
        }
        t
    }

    /// Long-format time-series table (`component,instance,metric,t_seconds,
    /// value`) suitable for CSV export; sample order within a series is
    /// recording order, series order is key order — fully deterministic.
    pub fn series_table(&self) -> Table {
        let mut t = Table::new(
            "timeseries",
            vec![
                "component".into(),
                "instance".into(),
                "metric".into(),
                "t_seconds".into(),
                "value".into(),
            ],
        );
        for (k, m) in self.iter() {
            let Metric::Series(s) = m else { continue };
            for &(ts, v) in s.points() {
                t.push_row(vec![
                    k.comp.as_str().to_string(),
                    k.inst.to_string(),
                    k.name.to_string(),
                    format!("{ts:.6}"),
                    format!("{v}"),
                ]);
            }
        }
        t
    }

    /// CSV of the long-format time series.
    pub fn series_csv(&self) -> String {
        self.series_table().to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.incr(Component::Proxy, 0, "routed_reads", 2);
        r.incr(Component::Proxy, 0, "routed_reads", 3);
        assert_eq!(r.counter_value(Component::Proxy, 0, "routed_reads"), 5);
        assert_eq!(r.counter_value(Component::Proxy, 1, "routed_reads"), 0);
    }

    #[test]
    fn gauges_track_last_and_max() {
        let mut r = MetricsRegistry::new();
        r.gauge(Component::Pool, 0, "waiters", 4.0);
        r.gauge(Component::Pool, 0, "waiters", 9.0);
        r.gauge(Component::Pool, 0, "waiters", 2.0);
        assert_eq!(
            r.gauge_value(Component::Pool, 0, "waiters"),
            Some((2.0, 9.0))
        );
    }

    #[test]
    fn histogram_created_on_first_observe() {
        let mut r = MetricsRegistry::new();
        r.observe(Component::Sql, 0, "demand_read_us", 150.0, 0.0, 1000.0, 10);
        r.observe(Component::Sql, 0, "demand_read_us", 250.0, 0.0, 1.0, 1); // bounds ignored
        let Some(Metric::Histogram(h)) = r.get(Component::Sql, 0, "demand_read_us") else {
            panic!("expected histogram");
        };
        assert_eq!(h.count(), 2);
        assert_eq!(h.buckets().len(), 10);
    }

    #[test]
    fn sketch_created_on_first_observe() {
        let mut r = MetricsRegistry::new();
        r.observe_sketch(Component::Repl, 2, "wf_apply_ms", 12.0);
        r.observe_sketch(Component::Repl, 2, "wf_apply_ms", 14.0);
        let Some(Metric::Sketch(s)) = r.get(Component::Repl, 2, "wf_apply_ms") else {
            panic!("expected sketch");
        };
        assert_eq!(s.count(), 2);
        let p50 = s.quantile(0.5).unwrap();
        assert!((p50 - 13.0).abs() <= s.config().bucket_width(13.0));
        let summary = r.summary_table().to_csv();
        assert!(summary.contains("repl,2,wf_apply_ms,sketch,n=2"));
    }

    #[test]
    #[should_panic(expected = "not a sketch")]
    fn sketch_kind_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        r.incr(Component::Repl, 0, "x", 1);
        r.observe_sketch(Component::Repl, 0, "x", 1.0);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        r.gauge(Component::Cpu, 0, "x", 1.0);
        r.incr(Component::Cpu, 0, "x", 1);
    }

    #[test]
    fn handles_alias_the_name_addressed_metric() {
        let mut r = MetricsRegistry::new();
        let c = r.counter_handle(Component::Proxy, 0, "routed");
        r.incr_id(c, 2);
        r.incr(Component::Proxy, 0, "routed", 3);
        assert_eq!(r.counter_value(Component::Proxy, 0, "routed"), 5);
        let s = r.sketch_handle(Component::Sql, 1, "demand_read_us");
        r.observe_sketch_id(s, 10.0);
        r.observe_sketch(Component::Sql, 1, "demand_read_us", 20.0);
        let Some(Metric::Sketch(sk)) = r.get(Component::Sql, 1, "demand_read_us") else {
            panic!("expected sketch");
        };
        assert_eq!(sk.count(), 2);
        assert_eq!(r.sketch_handle(Component::Sql, 1, "demand_read_us"), s);
    }

    #[test]
    #[should_panic(expected = "does not name a counter")]
    fn handle_kind_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        let s = r.sketch_handle(Component::Repl, 0, "x");
        r.incr_id(MetricId(s.0), 1);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut r = MetricsRegistry::new();
        r.incr(Component::Sql, 3, "z", 1);
        r.incr(Component::Cpu, 1, "b", 1);
        r.incr(Component::Cpu, 0, "a", 1);
        let keys: Vec<_> = r.iter().map(|(k, _)| (k.comp, k.inst, k.name)).collect();
        assert_eq!(
            keys,
            vec![
                (Component::Cpu, 0, "a"),
                (Component::Cpu, 1, "b"),
                (Component::Sql, 3, "z"),
            ]
        );
    }

    #[test]
    fn tables_export_deterministically() {
        let mut r = MetricsRegistry::new();
        r.incr(Component::Proxy, 0, "routed", 7);
        r.gauge(Component::Pool, 0, "active", 3.0);
        r.sample(Component::Repl, 1, "relay_depth", 0.5, 2.0);
        r.sample(Component::Repl, 1, "relay_depth", 1.0, 4.0);
        let summary = r.summary_table().to_csv();
        assert!(summary.contains("pool,0,active,gauge,3.000,3.000"));
        assert!(summary.contains("proxy,0,routed,counter,7,-"));
        assert!(!summary.contains("relay_depth"), "series not in summary");
        let series = r.series_csv();
        assert!(series.contains("repl,1,relay_depth,0.500000,2"));
        assert!(series.contains("repl,1,relay_depth,1.000000,4"));
    }
}
