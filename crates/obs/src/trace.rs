//! Structured trace records and the recorder implementations.
//!
//! Records are stamped with simulated time and stored in the order they were
//! recorded. Since the simulation kernel executes events in a deterministic
//! order for a given seed, the record stream — and any export derived from
//! it — is bit-identical across same-seed runs.

use crate::registry::MetricsRegistry;
use crate::tsdb::Tsdb;
use crate::Component;
use amdb_sim::{SimDuration, SimTime};

/// One observability record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A completed duration: `name` ran on `(comp, inst)` for `dur`
    /// starting at `start`.
    Span {
        comp: Component,
        inst: u32,
        name: &'static str,
        start: SimTime,
        dur: SimDuration,
    },
    /// A point-in-time marker.
    Instant {
        comp: Component,
        inst: u32,
        name: &'static str,
        at: SimTime,
    },
    /// A sampled counter-track value (queue depth, backlog, …).
    Counter {
        comp: Component,
        inst: u32,
        name: &'static str,
        at: SimTime,
        value: f64,
    },
    /// One hop of a causal flow (Chrome-trace arrow). Hops sharing `id`
    /// are drawn as one arrow chain from the `Start` through every `Step`
    /// to each `End` — the telemetry layer uses this to thread a write's
    /// trace id from master commit through binlog shipping to each slave's
    /// apply.
    Flow {
        comp: Component,
        inst: u32,
        name: &'static str,
        at: SimTime,
        id: u64,
        phase: FlowPhase,
    },
}

/// Which edge of a causal-flow arrow a [`Record::Flow`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    /// The flow's origin (Chrome `ph:"s"`).
    Start,
    /// An intermediate hop (`ph:"t"`).
    Step,
    /// A terminal hop (`ph:"f"`, bound to the enclosing slice).
    End,
}

impl Record {
    /// The record's timestamp (span start for spans).
    pub fn at(&self) -> SimTime {
        match *self {
            Record::Span { start, .. } => start,
            Record::Instant { at, .. } | Record::Counter { at, .. } | Record::Flow { at, .. } => at,
        }
    }

    /// The component the record belongs to.
    pub fn component(&self) -> Component {
        match *self {
            Record::Span { comp, .. }
            | Record::Instant { comp, .. }
            | Record::Counter { comp, .. }
            | Record::Flow { comp, .. } => comp,
        }
    }
}

/// Sink for observability records.
///
/// The concrete implementations are [`TraceRecorder`] (collects) and
/// [`NullRecorder`] (drops); the cluster dispatches through [`crate::Obs`]
/// so the disabled path stays monomorphic and branch-only.
pub trait Recorder {
    /// Record a completed span `[start, end)`. `end < start` is clamped to
    /// a zero-length span rather than panicking — probes must never abort a
    /// run.
    fn span(
        &mut self,
        comp: Component,
        inst: u32,
        name: &'static str,
        start: SimTime,
        end: SimTime,
    );
    /// Record a point-in-time event.
    fn instant(&mut self, comp: Component, inst: u32, name: &'static str, at: SimTime);
    /// Record a counter-track sample.
    fn counter(&mut self, comp: Component, inst: u32, name: &'static str, at: SimTime, value: f64);
    /// Record one hop of a causal flow. Default drops the hop so recorder
    /// implementations that predate flows keep compiling.
    fn flow(
        &mut self,
        phase: FlowPhase,
        comp: Component,
        inst: u32,
        name: &'static str,
        at: SimTime,
        id: u64,
    ) {
        let _ = (phase, comp, inst, name, at, id);
    }
    /// Whether this recorder keeps anything.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// A recorder that drops everything. Exists so generic callers can opt out
/// without an `Option`; the cluster itself uses [`crate::Obs::Null`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn span(&mut self, _: Component, _: u32, _: &'static str, _: SimTime, _: SimTime) {}
    fn instant(&mut self, _: Component, _: u32, _: &'static str, _: SimTime) {}
    fn counter(&mut self, _: Component, _: u32, _: &'static str, _: SimTime, _: f64) {}
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Collects records in order and carries the metrics registry, plus an
/// optional fixed-interval time-series store fed by explicit tsdb probes.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    records: Vec<Record>,
    registry: MetricsRegistry,
    tsdb: Option<Tsdb>,
}

impl TraceRecorder {
    /// Empty recorder (no tsdb).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a fixed-interval [`Tsdb`]. The store is a curated plane:
    /// explicit [`Self::tsdb_record`] calls feed value tracks and
    /// [`Self::tsdb_observe`] calls feed sketch tracks — plain counter
    /// probes do not touch it.
    pub fn enable_tsdb(&mut self, interval_ms: u64) {
        self.tsdb = Some(Tsdb::new(interval_ms));
    }

    /// All records in recording order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Mutable registry access (used by the [`crate::Obs`] metric probes).
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// The attached time-series store, when enabled.
    pub fn tsdb(&self) -> Option<&Tsdb> {
        self.tsdb.as_ref()
    }

    /// Detach the time-series store (fleet collection merges per-tree
    /// stores after a run).
    pub fn take_tsdb(&mut self) -> Option<Tsdb> {
        self.tsdb.take()
    }

    /// Record a distribution observation into a tsdb sketch track. A no-op
    /// without an attached store — callers probe unconditionally.
    pub fn tsdb_observe(
        &mut self,
        comp: Component,
        inst: u32,
        name: &'static str,
        at: SimTime,
        value: f64,
    ) {
        if let Some(db) = &mut self.tsdb {
            db.observe(comp, inst, name, at, value);
        }
    }

    /// Record a scalar sample into a tsdb value track. A no-op without an
    /// attached store — callers probe unconditionally. This is the opt-in
    /// for tick-rate gauges (utilization, staleness, backlog) that the
    /// fleet rollups read.
    pub fn tsdb_record(
        &mut self,
        comp: Component,
        inst: u32,
        name: &'static str,
        at: SimTime,
        value: f64,
    ) {
        if let Some(db) = &mut self.tsdb {
            db.record(comp, inst, name, at, value);
        }
    }
}

impl Recorder for TraceRecorder {
    fn span(
        &mut self,
        comp: Component,
        inst: u32,
        name: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        let dur = if end > start {
            end - start
        } else {
            SimDuration::ZERO
        };
        self.records.push(Record::Span {
            comp,
            inst,
            name,
            start,
            dur,
        });
    }

    fn instant(&mut self, comp: Component, inst: u32, name: &'static str, at: SimTime) {
        self.records.push(Record::Instant {
            comp,
            inst,
            name,
            at,
        });
    }

    fn counter(&mut self, comp: Component, inst: u32, name: &'static str, at: SimTime, value: f64) {
        // Mirror counter samples into the registry as a time series so CSV
        // export sees them without a second probe at the call site. The
        // tsdb is NOT fed here: it is a curated plane — callers opt a
        // series in with an explicit [`Self::tsdb_record`], which keeps the
        // store's footprint (and the per-sample cost of every counter
        // probe) proportional to what the fleet rollups actually read.
        self.registry
            .sample(comp, inst, name, at.as_micros() as f64 / 1e6, value);
        self.records.push(Record::Counter {
            comp,
            inst,
            name,
            at,
            value,
        });
    }

    fn flow(
        &mut self,
        phase: FlowPhase,
        comp: Component,
        inst: u32,
        name: &'static str,
        at: SimTime,
        id: u64,
    ) {
        self.records.push(Record::Flow {
            comp,
            inst,
            name,
            at,
            id,
            phase,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_clamps_reversed_interval() {
        let mut t = TraceRecorder::new();
        t.span(
            Component::Cpu,
            0,
            "oops",
            SimTime::from_millis(5),
            SimTime::from_millis(3),
        );
        let Record::Span { dur, .. } = t.records()[0] else {
            panic!("expected span");
        };
        assert_eq!(dur, SimDuration::ZERO);
    }

    #[test]
    fn counter_mirrors_into_registry_series() {
        let mut t = TraceRecorder::new();
        t.counter(Component::Pool, 0, "waiters", SimTime::from_secs(2), 7.0);
        let m = t
            .registry()
            .get(Component::Pool, 0, "waiters")
            .expect("series exists");
        let crate::registry::Metric::Series(s) = m else {
            panic!("expected series");
        };
        assert_eq!(s.points(), &[(2.0, 7.0)]);
    }

    #[test]
    fn tsdb_is_an_explicit_opt_in_plane() {
        let mut t = TraceRecorder::new();
        t.tsdb_record(Component::Pool, 0, "waiters", SimTime::from_millis(10), 1.0);
        assert!(t.tsdb().is_none(), "tsdb is opt-in");
        t.enable_tsdb(250);
        t.tsdb_record(Component::Pool, 0, "waiters", SimTime::from_millis(20), 7.0);
        t.tsdb_observe(Component::Repl, 1, "lat_ms", SimTime::from_millis(20), 4.0);
        // Counters feed the registry/trace only — the store is curated, so
        // a plain counter probe must not grow it.
        t.counter(Component::Pool, 0, "waiters", SimTime::from_millis(20), 7.0);
        t.counter(
            Component::Cpu,
            0,
            "queue_depth",
            SimTime::from_millis(20),
            3.0,
        );
        let db = t.tsdb().unwrap();
        assert_eq!(db.len(), 2, "only explicit tsdb probes create tracks");
        assert_eq!(db.mean_series(Component::Pool, 0, "waiters"), [(0.0, 7.0)]);
        let track = db.track(Component::Repl, 1, "lat_ms").unwrap();
        assert_eq!(track.samples().next().unwrap().1.count(), 1);
        // The registry series is unaffected by the tsdb.
        let crate::registry::Metric::Series(s) =
            t.registry().get(Component::Pool, 0, "waiters").unwrap()
        else {
            panic!("expected series");
        };
        assert_eq!(s.points().len(), 1);
    }

    #[test]
    fn null_recorder_reports_disabled() {
        assert!(!NullRecorder.is_enabled());
        assert!(TraceRecorder::new().is_enabled());
    }

    #[test]
    fn flow_hops_record_in_order_with_shared_id() {
        let mut t = TraceRecorder::new();
        t.flow(FlowPhase::Start, Component::Cpu, 0, "ws", SimTime::ZERO, 7);
        t.flow(
            FlowPhase::End,
            Component::Repl,
            1,
            "ws",
            SimTime::from_millis(4),
            7,
        );
        let [a, b] = t.records() else {
            panic!("expected two records");
        };
        let (
            Record::Flow {
                phase: pa, id: ia, ..
            },
            Record::Flow {
                phase: pb, id: ib, ..
            },
        ) = (a, b)
        else {
            panic!("expected flows");
        };
        assert_eq!((*pa, *ia), (FlowPhase::Start, 7));
        assert_eq!((*pb, *ib), (FlowPhase::End, 7));
        assert_eq!(b.at(), SimTime::from_millis(4));
        assert_eq!(b.component(), Component::Repl);
    }

    #[test]
    fn record_accessors() {
        let r = Record::Instant {
            comp: Component::Cluster,
            inst: 0,
            name: "m",
            at: SimTime::from_millis(9),
        };
        assert_eq!(r.at(), SimTime::from_millis(9));
        assert_eq!(r.component(), Component::Cluster);
    }
}
