//! Bottleneck attribution over the measured steady window.
//!
//! The paper attributes throughput ceilings to whichever resource saturates
//! first: *"the bottleneck switches between the snapshots (a) and (c) [slave
//! CPU vs. master CPU] along with the growth of the workload"* (§IV-A).
//! This module turns per-instance steady-window utilizations and queue
//! depths into a small report that names that resource.

use crate::Component;
use amdb_metrics::Table;

/// One resource's steady-window usage.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceUsage {
    /// Owning component.
    pub comp: Component,
    /// Instance index.
    pub inst: u32,
    /// Human label, e.g. `"master cpu"` or `"slave2 cpu"`.
    pub label: String,
    /// Utilization over the steady window. For a `FifoCpu` this may exceed
    /// 1.0 when offered load outruns capacity — the saturation signature.
    pub utilization: f64,
    /// Peak queue depth observed during the window.
    pub peak_queue: usize,
}

/// Per-instance usage rows plus a saturation threshold.
#[derive(Debug, Clone)]
pub struct BottleneckReport {
    rows: Vec<ResourceUsage>,
    threshold: f64,
}

/// Default saturation threshold: a resource busy ≥ 90 % of the steady
/// window is considered saturated.
pub const DEFAULT_SATURATION_THRESHOLD: f64 = 0.9;

impl BottleneckReport {
    /// Empty report with the given saturation threshold.
    pub fn new(threshold: f64) -> Self {
        Self {
            rows: Vec::new(),
            threshold,
        }
    }

    /// Empty report with [`DEFAULT_SATURATION_THRESHOLD`].
    pub fn with_default_threshold() -> Self {
        Self::new(DEFAULT_SATURATION_THRESHOLD)
    }

    /// Add one resource row.
    pub fn push(&mut self, usage: ResourceUsage) {
        self.rows.push(usage);
    }

    /// All rows in insertion order.
    pub fn rows(&self) -> &[ResourceUsage] {
        &self.rows
    }

    /// The saturation threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The busiest resource, whether or not it crosses the threshold.
    ///
    /// Tie-breaking is pinned — the surge attributor names resources off
    /// this row, so two resources parked at the same utilization must
    /// resolve identically on every run and for any row order: highest
    /// utilization first, then smallest `(component, instance)` key, then
    /// insertion order. NaN utilizations never win.
    pub fn busiest(&self) -> Option<&ResourceUsage> {
        let mut best: Option<&ResourceUsage> = None;
        for r in &self.rows {
            if r.utilization.is_nan() {
                continue;
            }
            best = match best {
                None => Some(r),
                Some(b) => {
                    let wins = r.utilization > b.utilization
                        || (r.utilization == b.utilization && (r.comp, r.inst) < (b.comp, b.inst));
                    if wins {
                        Some(r)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best
    }

    /// The saturated resource: the busiest row if it crosses the threshold.
    pub fn bottleneck(&self) -> Option<&ResourceUsage> {
        self.busiest().filter(|r| r.utilization >= self.threshold)
    }

    /// Rows at or above the threshold, in insertion order.
    pub fn saturated(&self) -> Vec<&ResourceUsage> {
        self.rows
            .iter()
            .filter(|r| r.utilization >= self.threshold)
            .collect()
    }

    /// The report as a table (one row per resource, busiest flagged).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "steady-window resource usage",
            vec![
                "resource".into(),
                "component".into(),
                "utilization".into(),
                "peak queue".into(),
                "saturated".into(),
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.label.clone(),
                r.comp.as_str().to_string(),
                format!("{:.3}", r.utilization),
                r.peak_queue.to_string(),
                if r.utilization >= self.threshold {
                    "yes".into()
                } else {
                    "-".into()
                },
            ]);
        }
        t
    }

    /// Terminal rendering: the table plus a one-line verdict.
    pub fn render(&self) -> String {
        let mut out = self.table().render();
        match self.bottleneck() {
            Some(b) => out.push_str(&format!(
                "bottleneck: {} (utilization {:.3} >= {:.2})\n",
                b.label, b.utilization, self.threshold
            )),
            None => {
                let verdict = match self.busiest() {
                    Some(b) => format!(
                        "no saturated resource (busiest: {} at {:.3})\n",
                        b.label, b.utilization
                    ),
                    None => "no resources reported\n".to_string(),
                };
                out.push_str(&verdict);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(label: &str, util: f64, queue: usize) -> ResourceUsage {
        ResourceUsage {
            comp: Component::Cpu,
            inst: 0,
            label: label.to_string(),
            utilization: util,
            peak_queue: queue,
        }
    }

    #[test]
    fn names_the_saturated_resource() {
        let mut r = BottleneckReport::with_default_threshold();
        r.push(usage("master cpu", 0.42, 1));
        r.push(usage("slave0 cpu", 1.31, 57));
        let b = r.bottleneck().expect("slave is saturated");
        assert_eq!(b.label, "slave0 cpu");
        assert!(r.render().contains("bottleneck: slave0 cpu"));
    }

    #[test]
    fn below_threshold_reports_busiest_only() {
        let mut r = BottleneckReport::new(0.9);
        r.push(usage("master cpu", 0.6, 0));
        r.push(usage("slave0 cpu", 0.3, 0));
        assert!(r.bottleneck().is_none());
        assert_eq!(r.busiest().unwrap().label, "master cpu");
        assert!(r.render().contains("no saturated resource"));
    }

    #[test]
    fn ties_resolve_to_first_row() {
        let mut r = BottleneckReport::new(0.5);
        r.push(usage("a", 1.0, 0));
        r.push(usage("b", 1.0, 0));
        assert_eq!(r.bottleneck().unwrap().label, "a");
    }

    #[test]
    fn ties_resolve_by_component_instance_key_not_insertion_order() {
        // Two resources pinned at identical utilization (both ≥ threshold):
        // the winner is the smallest (component, instance) key, however the
        // rows were pushed. The surge attributor depends on this.
        let keyed = |comp, inst, label: &str, util| ResourceUsage {
            comp,
            inst,
            label: label.to_string(),
            utilization: util,
            peak_queue: 0,
        };
        let mut fwd = BottleneckReport::new(0.9);
        fwd.push(keyed(Component::Cpu, 0, "master cpu", 1.0));
        fwd.push(keyed(Component::Cpu, 3, "slave2 cpu", 1.0));
        fwd.push(keyed(Component::Pool, 0, "connection pool", 1.0));
        let mut rev = BottleneckReport::new(0.9);
        rev.push(keyed(Component::Pool, 0, "connection pool", 1.0));
        rev.push(keyed(Component::Cpu, 3, "slave2 cpu", 1.0));
        rev.push(keyed(Component::Cpu, 0, "master cpu", 1.0));
        assert_eq!(fwd.bottleneck().unwrap().label, "master cpu");
        assert_eq!(rev.bottleneck().unwrap().label, "master cpu");
        // Higher utilization still beats a smaller key.
        rev.push(keyed(Component::Sql, 9, "late riser", 1.2));
        assert_eq!(rev.bottleneck().unwrap().label, "late riser");
    }

    #[test]
    fn nan_utilization_never_wins() {
        let mut r = BottleneckReport::new(0.9);
        r.push(usage("broken", f64::NAN, 0));
        r.push(usage("real", 0.95, 1));
        assert_eq!(r.bottleneck().unwrap().label, "real");
    }

    #[test]
    fn saturated_lists_all_over_threshold() {
        let mut r = BottleneckReport::new(0.9);
        r.push(usage("a", 0.95, 2));
        r.push(usage("b", 0.2, 0));
        r.push(usage("c", 1.4, 9));
        let s = r.saturated();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].label, "a");
        assert_eq!(s[1].label, "c");
    }

    #[test]
    fn empty_report_renders() {
        let r = BottleneckReport::with_default_threshold();
        assert!(r.bottleneck().is_none());
        assert!(r.render().contains("no resources reported"));
    }

    #[test]
    fn table_flags_saturation() {
        let mut r = BottleneckReport::new(0.9);
        r.push(usage("hot", 1.2, 3));
        let csv = r.table().to_csv();
        assert!(csv.contains("hot,cpu,1.200,3,yes"));
    }
}
