//! OpenMetrics / Prometheus text exposition for the metrics registry.
//!
//! Renders a [`MetricsRegistry`] — or several, e.g. one per shard tree —
//! into the OpenMetrics text format: one `# TYPE` line per metric family,
//! family samples contiguous (the format forbids interleaving), a final
//! `# EOF` terminator. Families are emitted in lexicographic name order
//! and samples within a family in part order then registry key order, so
//! the output is byte-deterministic for a given fleet state.
//!
//! Mapping from registry metrics:
//!
//! | registry kind | OpenMetrics family                                  |
//! |---------------|-----------------------------------------------------|
//! | `Counter`     | `counter` — sample `<fam>_total`                    |
//! | `Gauge`       | `gauge` — last value, plus a `<fam>_max` gauge      |
//! | `Histogram`   | `histogram` — cumulative `_bucket{le=…}` + `_count` |
//! | `Sketch`      | `summary` — q 0.5/0.9/0.95/0.99 + `_count`/`_sum`   |
//! | `Series`      | `gauge` — last sample, with its sim timestamp       |
//!
//! Family names are `amdb_<component>_<metric>`; every sample carries
//! `component` and `instance` labels, and multi-part exports add a
//! `shard` label from the part's tag.

use crate::registry::{Metric, MetricsRegistry};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Quantiles exposed for sketch-backed summaries.
const SUMMARY_QUANTILES: [f64; 4] = [0.5, 0.9, 0.95, 0.99];

/// Clamp a metric name to the OpenMetrics charset `[a-zA-Z0-9_:]`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// One family being assembled: its advertised type and its sample lines.
struct Family {
    mtype: &'static str,
    lines: Vec<String>,
}

fn family<'a>(
    fams: &'a mut BTreeMap<String, Family>,
    name: String,
    mtype: &'static str,
) -> &'a mut Family {
    let f = fams.entry(name.clone()).or_insert(Family {
        mtype,
        lines: Vec::new(),
    });
    assert_eq!(
        f.mtype, mtype,
        "metric family {name} exported with two types ({} vs {mtype})",
        f.mtype
    );
    f
}

/// Render one registry. Equivalent to a single-part
/// [`openmetrics_text_multi`] without the `shard` label.
pub fn openmetrics_text(reg: &MetricsRegistry) -> String {
    openmetrics_text_multi(&[("", reg)])
}

/// Render several registries into one exposition. Each part is
/// `(shard tag, registry)`; a non-empty tag becomes a `shard="<tag>"`
/// label on every sample from that part, letting per-tree registries and
/// the front's registry share one dump without name collisions.
///
/// # Panics
/// Panics if two parts register the same family name with different
/// metric kinds — one name, one kind, fleet-wide (the same contract the
/// registry enforces per tree).
pub fn openmetrics_text_multi(parts: &[(&str, &MetricsRegistry)]) -> String {
    let mut fams: BTreeMap<String, Family> = BTreeMap::new();
    for (tag, reg) in parts {
        let shard_label = if tag.is_empty() {
            String::new()
        } else {
            format!(",shard=\"{tag}\"")
        };
        for (k, m) in reg.iter() {
            let base = format!("amdb_{}_{}", k.comp.as_str(), sanitize(k.name));
            let labels = format!(
                "component=\"{}\",instance=\"{}\"{shard_label}",
                k.comp.as_str(),
                k.inst
            );
            match m {
                Metric::Counter(c) => {
                    family(&mut fams, base.clone(), "counter")
                        .lines
                        .push(format!("{base}_total{{{labels}}} {c}"));
                }
                Metric::Gauge { last, max } => {
                    family(&mut fams, base.clone(), "gauge")
                        .lines
                        .push(format!("{base}{{{labels}}} {last}"));
                    let fam_max = format!("{base}_max");
                    family(&mut fams, fam_max.clone(), "gauge")
                        .lines
                        .push(format!("{fam_max}{{{labels}}} {max}"));
                }
                Metric::Histogram(h) => {
                    let f = family(&mut fams, base.clone(), "histogram");
                    // Cumulative buckets; underflow folds into the first
                    // bucket's `le`, overflow only into `+Inf` — the
                    // format requires the +Inf count to equal _count.
                    let mut cum = h.underflow();
                    for (_, hi, c) in h.iter_bounds() {
                        cum += c;
                        f.lines
                            .push(format!("{base}_bucket{{{labels},le=\"{hi}\"}} {cum}"));
                    }
                    f.lines.push(format!(
                        "{base}_bucket{{{labels},le=\"+Inf\"}} {}",
                        h.count()
                    ));
                    f.lines
                        .push(format!("{base}_count{{{labels}}} {}", h.count()));
                }
                Metric::Sketch(s) => {
                    let f = family(&mut fams, base.clone(), "summary");
                    for q in SUMMARY_QUANTILES {
                        if let Some(v) = s.quantile(q) {
                            f.lines
                                .push(format!("{base}{{{labels},quantile=\"{q}\"}} {v}"));
                        }
                    }
                    f.lines
                        .push(format!("{base}_count{{{labels}}} {}", s.count()));
                    f.lines.push(format!("{base}_sum{{{labels}}} {}", s.sum()));
                }
                Metric::Series(ts) => {
                    // The registry's unbounded series are sampled gauges;
                    // expose the most recent sample with its simulated
                    // timestamp (seconds).
                    if let Some(&(t, v)) = ts.points().last() {
                        family(&mut fams, base.clone(), "gauge")
                            .lines
                            .push(format!("{base}{{{labels}}} {v} {t}"));
                    }
                }
            }
        }
    }
    let mut out = String::new();
    for (name, fam) in &fams {
        let _ = writeln!(out, "# TYPE {name} {}", fam.mtype);
        for line in &fam.lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Component;

    fn seeded() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.incr(Component::Proxy, 0, "routed_reads", 7);
        r.gauge(Component::Pool, 0, "active", 3.0);
        r.gauge(Component::Pool, 0, "active", 2.0);
        r.observe(Component::Sql, 0, "demand_us", 150.0, 0.0, 200.0, 4);
        r.observe(Component::Sql, 0, "demand_us", 999.0, 0.0, 200.0, 4);
        for i in 0..50 {
            r.observe_sketch(Component::Repl, 1, "apply_ms", (i + 1) as f64);
        }
        r.sample(Component::Cpu, 0, "util", 0.5, 0.25);
        r.sample(Component::Cpu, 0, "util", 1.0, 0.75);
        r
    }

    #[test]
    fn exposition_is_terminated_and_deterministic() {
        let r = seeded();
        let a = openmetrics_text(&r);
        let b = openmetrics_text(&r);
        assert_eq!(a, b);
        assert!(a.ends_with("# EOF\n"));
        assert_eq!(a.matches("# EOF").count(), 1);
    }

    #[test]
    fn families_are_typed_once_and_never_interleaved() {
        let text = openmetrics_text(&seeded());
        let mut seen = std::collections::BTreeSet::new();
        let mut current: Option<String> = None;
        for line in text.lines() {
            if line == "# EOF" {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let fam = rest.split(' ').next().unwrap().to_string();
                assert!(seen.insert(fam.clone()), "family {fam} typed twice");
                current = Some(fam);
            } else {
                let fam = current.as_ref().expect("sample before any TYPE line");
                let metric = line.split(&['{', ' '][..]).next().unwrap();
                assert!(
                    metric.starts_with(fam.as_str()),
                    "sample {metric} outside its family block {fam}"
                );
            }
        }
    }

    #[test]
    fn kinds_map_to_openmetrics_types() {
        let text = openmetrics_text(&seeded());
        assert!(text.contains("# TYPE amdb_proxy_routed_reads counter"));
        assert!(
            text.contains("amdb_proxy_routed_reads_total{component=\"proxy\",instance=\"0\"} 7")
        );
        assert!(text.contains("# TYPE amdb_pool_active gauge"));
        assert!(text.contains("amdb_pool_active{component=\"pool\",instance=\"0\"} 2"));
        assert!(text.contains("amdb_pool_active_max{component=\"pool\",instance=\"0\"} 3"));
        assert!(text.contains("# TYPE amdb_sql_demand_us histogram"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        assert!(text.contains("amdb_sql_demand_us_count{component=\"sql\",instance=\"0\"} 2"));
        assert!(text.contains("# TYPE amdb_repl_apply_ms summary"));
        assert!(text.contains("quantile=\"0.95\""));
        assert!(text.contains("amdb_repl_apply_ms_count{component=\"repl\",instance=\"1\"} 50"));
        // Series: last sample with its simulated timestamp.
        assert!(text.contains("amdb_cpu_util{component=\"cpu\",instance=\"0\"} 0.75 1"));
    }

    #[test]
    fn histogram_inf_bucket_matches_count() {
        let mut r = MetricsRegistry::new();
        r.observe(Component::Sql, 0, "d", -5.0, 0.0, 10.0, 2); // underflow
        r.observe(Component::Sql, 0, "d", 5.0, 0.0, 10.0, 2);
        r.observe(Component::Sql, 0, "d", 50.0, 0.0, 10.0, 2); // overflow
        let text = openmetrics_text(&r);
        assert!(
            text.contains("le=\"5\"} 1"),
            "underflow folds into bucket 1"
        );
        assert!(text.contains("le=\"10\"} 2"));
        assert!(text.contains("le=\"+Inf\"} 3"));
        assert!(text.contains("amdb_sql_d_count{component=\"sql\",instance=\"0\"} 3"));
    }

    #[test]
    fn multi_part_export_labels_shards() {
        let mut s0 = MetricsRegistry::new();
        s0.incr(Component::Proxy, 0, "ops", 10);
        let mut s1 = MetricsRegistry::new();
        s1.incr(Component::Proxy, 0, "ops", 20);
        let text = openmetrics_text_multi(&[("0", &s0), ("1", &s1)]);
        assert_eq!(text.matches("# TYPE amdb_proxy_ops counter").count(), 1);
        assert!(text
            .contains("amdb_proxy_ops_total{component=\"proxy\",instance=\"0\",shard=\"0\"} 10"));
        assert!(text
            .contains("amdb_proxy_ops_total{component=\"proxy\",instance=\"0\",shard=\"1\"} 20"));
    }

    #[test]
    #[should_panic(expected = "two types")]
    fn cross_part_kind_conflict_panics() {
        let mut a = MetricsRegistry::new();
        a.gauge(Component::Cpu, 0, "x", 1.0);
        let mut b = MetricsRegistry::new();
        b.observe_sketch(Component::Cpu, 0, "x", 1.0);
        openmetrics_text_multi(&[("0", &a), ("1", &b)]);
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("apply worker.util"), "apply_worker_util");
        assert_eq!(sanitize("ok_name:sub"), "ok_name:sub");
    }
}
