//! Chrome trace-format (Trace Event Format) JSON export.
//!
//! Emits the `{"traceEvents": [...]}` object understood by
//! `chrome://tracing` and Perfetto. Spans become complete events (`"ph":
//! "X"`), markers become instants (`"ph": "i"`), counters become counter
//! tracks (`"ph": "C"`). `pid` is the component id, `tid` the instance, so
//! the viewer groups tracks by component and then by node.
//!
//! Serialization is hand-rolled (no serde in the dependency graph) and
//! deterministic: records are emitted in recording order and floats use
//! Rust's shortest round-trip `Display`, which is a pure function of the
//! value.

use crate::trace::Record;

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a counter value: finite floats via `Display` (shortest
/// round-trip), non-finite as 0 — Chrome's JSON parser rejects `NaN`.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Serialize records to a Chrome trace-format JSON document.
pub fn chrome_trace_json(records: &[Record]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        match *r {
            Record::Span {
                comp,
                inst,
                name,
                start,
                dur,
            } => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
                    escape(name),
                    comp.as_str(),
                    start.as_micros(),
                    dur.as_micros(),
                    comp.id(),
                    inst,
                ));
            }
            Record::Instant {
                comp,
                inst,
                name,
                at,
            } => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"p\"}}",
                    escape(name),
                    comp.as_str(),
                    at.as_micros(),
                    comp.id(),
                    inst,
                ));
            }
            Record::Counter {
                comp,
                inst,
                name,
                at,
                value,
            } => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"{}\":{}}}}}",
                    escape(name),
                    comp.as_str(),
                    at.as_micros(),
                    comp.id(),
                    inst,
                    escape(name),
                    num(value),
                ));
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Component;
    use amdb_sim::{SimDuration, SimTime};

    fn sample() -> Vec<Record> {
        vec![
            Record::Span {
                comp: Component::Cpu,
                inst: 1,
                name: "serve_read",
                start: SimTime::from_micros(100),
                dur: SimDuration::from_micros(250),
            },
            Record::Instant {
                comp: Component::Cluster,
                inst: 0,
                name: "steady_start",
                at: SimTime::from_micros(500),
            },
            Record::Counter {
                comp: Component::Repl,
                inst: 2,
                name: "relay_depth",
                at: SimTime::from_micros(600),
                value: 3.5,
            },
        ]
    }

    #[test]
    fn emits_all_phases() {
        let j = chrome_trace_json(&sample());
        assert!(j.contains("\"ph\":\"X\",\"ts\":100,\"dur\":250,\"pid\":1,\"tid\":1"));
        assert!(j.contains("\"ph\":\"i\",\"ts\":500"));
        assert!(j.contains("\"args\":{\"relay_depth\":3.5}"));
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn output_is_reproducible() {
        assert_eq!(chrome_trace_json(&sample()), chrome_trace_json(&sample()));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_counters_sanitized() {
        let r = [Record::Counter {
            comp: Component::Pool,
            inst: 0,
            name: "x",
            at: SimTime::ZERO,
            value: f64::NAN,
        }];
        let j = chrome_trace_json(&r);
        assert!(j.contains("\"args\":{\"x\":0}"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let j = chrome_trace_json(&[]);
        assert!(j.contains("\"traceEvents\":["));
    }
}
