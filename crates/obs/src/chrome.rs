//! Chrome trace-format (Trace Event Format) JSON export.
//!
//! Emits the `{"traceEvents": [...]}` object understood by
//! `chrome://tracing` and Perfetto. Spans become complete events (`"ph":
//! "X"`), markers become instants (`"ph": "i"`), counters become counter
//! tracks (`"ph": "C"`). `pid` is the component id, `tid` the instance, so
//! the viewer groups tracks by component and then by node.
//!
//! Serialization is hand-rolled (no serde in the dependency graph) and
//! deterministic: records are emitted in recording order and floats use
//! Rust's shortest round-trip `Display`, which is a pure function of the
//! value.

use crate::trace::{FlowPhase, Record};

/// Escape a string for inclusion in a JSON string literal.
///
/// Beyond the mandatory set (quote, backslash, C0 controls), this also
/// escapes DEL and the U+2028/U+2029 line separators: both are legal in
/// JSON strings but break when the document is pasted into a JavaScript
/// context (as trace JSON routinely is), so emitting them raw would make
/// the export viewer-hostile for names containing them.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 || c == '\u{7f}' || c == '\u{2028}' || c == '\u{2029}' => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a counter value: finite floats via `Display` (shortest
/// round-trip), non-finite as 0 — Chrome's JSON parser rejects `NaN`.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Serialize records to a Chrome trace-format JSON document.
pub fn chrome_trace_json(records: &[Record]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        match *r {
            Record::Span {
                comp,
                inst,
                name,
                start,
                dur,
            } => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
                    escape(name),
                    comp.as_str(),
                    start.as_micros(),
                    dur.as_micros(),
                    comp.id(),
                    inst,
                ));
            }
            Record::Instant {
                comp,
                inst,
                name,
                at,
            } => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"p\"}}",
                    escape(name),
                    comp.as_str(),
                    at.as_micros(),
                    comp.id(),
                    inst,
                ));
            }
            Record::Counter {
                comp,
                inst,
                name,
                at,
                value,
            } => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"{}\":{}}}}}",
                    escape(name),
                    comp.as_str(),
                    at.as_micros(),
                    comp.id(),
                    inst,
                    escape(name),
                    num(value),
                ));
            }
            Record::Flow {
                comp,
                inst,
                name,
                at,
                id,
                phase,
            } => {
                // Flow arrows: "s" starts a chain, "t" continues it, "f"
                // ends it; `bp:"e"` binds the terminus to the enclosing
                // slice so the arrow lands on the apply span rather than
                // the next event on that track.
                let (ph, bp) = match phase {
                    FlowPhase::Start => ("s", ""),
                    FlowPhase::Step => ("t", ""),
                    FlowPhase::End => ("f", ",\"bp\":\"e\""),
                };
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{},\"id\":{}{}}}",
                    escape(name),
                    comp.as_str(),
                    ph,
                    at.as_micros(),
                    comp.id(),
                    inst,
                    id,
                    bp,
                ));
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Component;
    use amdb_sim::{SimDuration, SimTime};

    fn sample() -> Vec<Record> {
        vec![
            Record::Span {
                comp: Component::Cpu,
                inst: 1,
                name: "serve_read",
                start: SimTime::from_micros(100),
                dur: SimDuration::from_micros(250),
            },
            Record::Instant {
                comp: Component::Cluster,
                inst: 0,
                name: "steady_start",
                at: SimTime::from_micros(500),
            },
            Record::Counter {
                comp: Component::Repl,
                inst: 2,
                name: "relay_depth",
                at: SimTime::from_micros(600),
                value: 3.5,
            },
        ]
    }

    #[test]
    fn emits_all_phases() {
        let j = chrome_trace_json(&sample());
        assert!(j.contains("\"ph\":\"X\",\"ts\":100,\"dur\":250,\"pid\":1,\"tid\":1"));
        assert!(j.contains("\"ph\":\"i\",\"ts\":500"));
        assert!(j.contains("\"args\":{\"relay_depth\":3.5}"));
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn output_is_reproducible() {
        assert_eq!(chrome_trace_json(&sample()), chrome_trace_json(&sample()));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn hostile_names_stay_inside_their_json_string() {
        // A name crafted to break out of the JSON string literal: embedded
        // quote + key/value forgery, raw backslash, every short-form
        // control, DEL, and the JS line separators.
        let hostile = "x\",\"pid\":666,\"y\":\"\\ \n\r\t\u{8}\u{c}\u{0}\u{7f}\u{2028}\u{2029}z";
        let escaped = escape(hostile);
        assert_eq!(
            escaped,
            "x\\\",\\\"pid\\\":666,\\\"y\\\":\\\"\\\\ \\n\\r\\t\\b\\f\\u0000\\u007f\\u2028\\u2029z"
        );
        // No unescaped quote or control survives: the literal cannot be
        // terminated early and the document stays on one line per record.
        let mut prev_backslash = false;
        for c in escaped.chars() {
            assert!(!c.is_control() && c != '\u{2028}' && c != '\u{2029}');
            if c == '"' {
                assert!(prev_backslash, "bare quote escaped the string literal");
            }
            prev_backslash = c == '\\' && !prev_backslash;
        }
        // And the full record round-trips structurally: one "pid" key only.
        let r = [Record::Instant {
            comp: Component::Cluster,
            inst: 0,
            name: Box::leak(hostile.to_string().into_boxed_str()),
            at: SimTime::ZERO,
        }];
        let j = chrome_trace_json(&r);
        assert_eq!(j.matches("\"pid\":").count(), 1);
    }

    #[test]
    fn flow_records_export_as_arrow_chain() {
        let r = [
            Record::Flow {
                comp: Component::Cpu,
                inst: 0,
                name: "writeset",
                at: SimTime::from_micros(10),
                id: 42,
                phase: FlowPhase::Start,
            },
            Record::Flow {
                comp: Component::Repl,
                inst: 1,
                name: "writeset",
                at: SimTime::from_micros(30),
                id: 42,
                phase: FlowPhase::Step,
            },
            Record::Flow {
                comp: Component::Repl,
                inst: 1,
                name: "writeset",
                at: SimTime::from_micros(55),
                id: 42,
                phase: FlowPhase::End,
            },
        ];
        let j = chrome_trace_json(&r);
        assert!(j.contains("\"ph\":\"s\",\"ts\":10,\"pid\":1,\"tid\":0,\"id\":42"));
        assert!(j.contains("\"ph\":\"t\",\"ts\":30,\"pid\":4,\"tid\":1,\"id\":42"));
        assert!(j.contains("\"ph\":\"f\",\"ts\":55,\"pid\":4,\"tid\":1,\"id\":42,\"bp\":\"e\""));
    }

    #[test]
    fn non_finite_counters_sanitized() {
        let r = [Record::Counter {
            comp: Component::Pool,
            inst: 0,
            name: "x",
            at: SimTime::ZERO,
            value: f64::NAN,
        }];
        let j = chrome_trace_json(&r);
        assert!(j.contains("\"args\":{\"x\":0}"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let j = chrome_trace_json(&[]);
        assert!(j.contains("\"traceEvents\":["));
    }
}
