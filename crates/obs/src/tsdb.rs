//! Deterministic in-sim time-series store.
//!
//! The metrics registry keeps *cumulative* state (counters, gauges, one
//! unbounded `TimeSeries` per sampled gauge). Fleet-scope rollups need the
//! opposite shape: **fixed-interval** samples with bounded memory that can
//! be merged across shard trees after a run. This module provides that
//! plane:
//!
//! * every track is a ring of per-interval cells keyed by slot index
//!   (`sim_time / interval`), so two stores sampled on the same interval
//!   align slot-for-slot regardless of which tree produced them;
//! * a cell is either a scalar aggregate (`sum/count/min/max` — gauges,
//!   utilizations, rates) or a [`QuantileSketch`] (latencies, leg times),
//!   both mergeable, both bounded;
//! * the ring evicts its oldest slots beyond a fixed capacity and counts
//!   the evictions — silent data loss is visible, memory cannot grow with
//!   run length;
//! * iteration follows the registry's `(component, instance, name)` key
//!   order, so every export is byte-deterministic.
//!
//! Timestamps are **simulated** time, so a store's contents are a pure
//! function of the seed — merging per-shard stores in any order yields the
//! same fleet rollup.

use crate::{Component, MetricKey};
use amdb_metrics::{QuantileSketch, Table};
use amdb_sim::SimTime;
use std::collections::VecDeque;
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a hasher for track keys. The record path pays one hash per mirrored
/// sample; FNV over the short `(comp, inst, name)` key costs a few ns where
/// the default SipHash costs tens, and — unlike the default's per-map
/// random seed — it is a fixed function, so probe order never varies
/// between runs. (Keys are trusted static probe names, not attacker input.)
#[derive(Default)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

/// Default ring capacity per track: at the default 250 ms interval this
/// covers ~17 minutes of simulated time, far beyond any paper-scale run.
pub const DEFAULT_SLOTS_PER_TRACK: usize = 4096;

/// One fixed-interval cell of a track.
#[derive(Debug, Clone)]
pub enum TsdbCell {
    /// Scalar aggregate of every value recorded in the interval.
    Value {
        sum: f64,
        count: u64,
        min: f64,
        max: f64,
    },
    /// Bounded quantile sketch of every observation in the interval.
    Sketch(QuantileSketch),
}

impl TsdbCell {
    fn value(v: f64) -> Self {
        TsdbCell::Value {
            sum: v,
            count: 1,
            min: v,
            max: v,
        }
    }

    fn sketch(v: f64) -> Self {
        let mut s = QuantileSketch::latency();
        s.record(v);
        TsdbCell::Sketch(s)
    }

    /// Observations folded into this cell.
    pub fn count(&self) -> u64 {
        match self {
            TsdbCell::Value { count, .. } => *count,
            TsdbCell::Sketch(s) => s.count(),
        }
    }

    /// Mean of the cell's observations (0 when empty).
    pub fn mean(&self) -> f64 {
        match self {
            TsdbCell::Value { sum, count, .. } => {
                if *count == 0 {
                    0.0
                } else {
                    sum / *count as f64
                }
            }
            TsdbCell::Sketch(s) => s.mean().unwrap_or(0.0),
        }
    }

    /// Largest observation in the cell (0 when empty).
    pub fn max(&self) -> f64 {
        match self {
            TsdbCell::Value { max, count, .. } => {
                if *count == 0 {
                    0.0
                } else {
                    *max
                }
            }
            TsdbCell::Sketch(s) => s.max().unwrap_or(0.0),
        }
    }

    /// Estimated quantile — sketch cells only.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        match self {
            TsdbCell::Sketch(s) => s.quantile(q),
            TsdbCell::Value { .. } => None,
        }
    }

    fn record(&mut self, v: f64) {
        match self {
            TsdbCell::Value {
                sum,
                count,
                min,
                max,
            } => {
                *sum += v;
                *count += 1;
                *min = min.min(v);
                *max = max.max(v);
            }
            TsdbCell::Sketch(s) => s.record(v),
        }
    }

    /// Fold another cell in.
    ///
    /// # Panics
    /// Panics on a kind mismatch — one track name, one cell kind, the same
    /// policy the registry applies to metric kinds.
    fn merge(&mut self, other: &TsdbCell) {
        match (self, other) {
            (
                TsdbCell::Value {
                    sum,
                    count,
                    min,
                    max,
                },
                TsdbCell::Value {
                    sum: os,
                    count: oc,
                    min: omin,
                    max: omax,
                },
            ) => {
                *sum += os;
                *count += oc;
                *min = min.min(*omin);
                *max = max.max(*omax);
            }
            (TsdbCell::Sketch(a), TsdbCell::Sketch(b)) => a.merge(b),
            _ => panic!("tsdb cell kind mismatch on merge"),
        }
    }
}

/// One metric's ring of interval cells, ordered by slot index.
#[derive(Debug, Clone, Default)]
pub struct TsdbTrack {
    /// `(slot index, cell)`, ascending by slot; gaps are simply absent.
    slots: VecDeque<(u64, TsdbCell)>,
    /// Slots dropped off the front by the ring capacity.
    evicted: u64,
}

impl TsdbTrack {
    /// Live slots in the ring.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot has been recorded (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Slots evicted from this track by the ring capacity.
    pub fn evicted_slots(&self) -> u64 {
        self.evicted
    }

    /// Iterate `(slot index, cell)` in ascending slot order.
    pub fn samples(&self) -> impl Iterator<Item = (u64, &TsdbCell)> {
        self.slots.iter().map(|(s, c)| (*s, c))
    }

    /// Record `v` into `slot`, creating the cell with `mk` on first touch.
    /// Recording is O(1) for in-order (monotone) timestamps — the sim's
    /// case — and O(log n) + shift for out-of-order merges.
    fn upsert(&mut self, slot: u64, v: f64, mk: fn(f64) -> TsdbCell) {
        match self.slots.back_mut() {
            None => self.slots.push_back((slot, mk(v))),
            Some((last, cell)) if *last == slot => cell.record(v),
            Some((last, _)) if slot > *last => self.slots.push_back((slot, mk(v))),
            _ => {
                let i = self.slots.partition_point(|(s, _)| *s < slot);
                match self.slots.get_mut(i) {
                    Some((s, cell)) if *s == slot => cell.record(v),
                    _ => self.slots.insert(i, (slot, mk(v))),
                }
            }
        }
    }

    fn merge_cell(&mut self, slot: u64, cell: &TsdbCell) {
        let i = self.slots.partition_point(|(s, _)| *s < slot);
        match self.slots.get_mut(i) {
            Some((s, mine)) if *s == slot => mine.merge(cell),
            _ => self.slots.insert(i, (slot, cell.clone())),
        }
    }

    fn trim(&mut self, cap: usize) {
        while self.slots.len() > cap {
            self.slots.pop_front();
            self.evicted += 1;
        }
    }

    /// Bytes of cell state currently held (sketch counters + scalar cells).
    pub fn state_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|(_, c)| match c {
                TsdbCell::Value { .. } => std::mem::size_of::<(u64, TsdbCell)>(),
                TsdbCell::Sketch(s) => std::mem::size_of::<(u64, TsdbCell)>() + s.state_bytes(),
            })
            .sum()
    }
}

/// The store: fixed-interval tracks keyed like registry metrics.
///
/// Tracks live in a hash map — the record path runs at probe rate (every
/// mirrored counter sample pays one lookup), and hashing the short static
/// key is several times cheaper than a `BTreeMap` walk. Every read path
/// that iterates (export, merge, rollup) sorts by key first, so exports
/// stay byte-deterministic and float folds always sum in key order.
#[derive(Debug, Clone)]
pub struct Tsdb {
    interval_us: u64,
    cap: usize,
    tracks: HashMap<MetricKey, TsdbTrack, FnvBuild>,
}

impl Tsdb {
    /// Store sampling on `interval_ms` with the default ring capacity.
    pub fn new(interval_ms: u64) -> Self {
        Self::with_capacity(interval_ms, DEFAULT_SLOTS_PER_TRACK)
    }

    /// Store with an explicit per-track ring capacity.
    pub fn with_capacity(interval_ms: u64, slots_per_track: usize) -> Self {
        assert!(slots_per_track > 0, "a track needs at least one slot");
        Self {
            interval_us: interval_ms.max(1) * 1_000,
            cap: slots_per_track,
            tracks: HashMap::default(),
        }
    }

    /// The fixed sampling interval (ms).
    pub fn interval_ms(&self) -> u64 {
        self.interval_us / 1_000
    }

    /// Slot index covering `at`.
    pub fn slot_of(&self, at: SimTime) -> u64 {
        at.as_micros() / self.interval_us
    }

    /// Start of `slot` in seconds of simulated time.
    pub fn slot_start_secs(&self, slot: u64) -> f64 {
        (slot * self.interval_us) as f64 / 1e6
    }

    /// Record a scalar sample (gauge, utilization, rate) at `at`.
    pub fn record(&mut self, comp: Component, inst: u32, name: &'static str, at: SimTime, v: f64) {
        let slot = self.slot_of(at);
        let track = self
            .tracks
            .entry(MetricKey { comp, inst, name })
            .or_default();
        track.upsert(slot, v, TsdbCell::value);
        track.trim(self.cap);
    }

    /// Record a distribution observation (latency, leg time) at `at`.
    pub fn observe(&mut self, comp: Component, inst: u32, name: &'static str, at: SimTime, v: f64) {
        let slot = self.slot_of(at);
        let track = self
            .tracks
            .entry(MetricKey { comp, inst, name })
            .or_default();
        track.upsert(slot, v, TsdbCell::sketch);
        track.trim(self.cap);
    }

    /// One track, when present.
    pub fn track(&self, comp: Component, inst: u32, name: &'static str) -> Option<&TsdbTrack> {
        self.tracks.get(&MetricKey { comp, inst, name })
    }

    /// All tracks in key order.
    pub fn tracks(&self) -> impl Iterator<Item = (&MetricKey, &TsdbTrack)> {
        let mut v: Vec<_> = self.tracks.iter().collect();
        v.sort_by_key(|(k, _)| **k);
        v.into_iter()
    }

    /// Number of tracks.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// `(slot start seconds, interval mean)` series for one track.
    pub fn mean_series(&self, comp: Component, inst: u32, name: &'static str) -> Vec<(f64, f64)> {
        self.track(comp, inst, name)
            .map(|t| {
                t.samples()
                    .map(|(s, c)| (self.slot_start_secs(s), c.mean()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Sum of a scalar metric across all instances of `comp`, per slot —
    /// the fleet-rollup primitive (total throughput, total backlog).
    pub fn rollup_sum(&self, comp: Component, name: &'static str) -> Vec<(f64, f64)> {
        let mut by_slot: BTreeMap<u64, f64> = BTreeMap::new();
        for (k, track) in self.tracks() {
            if k.comp != comp || k.name != name {
                continue;
            }
            for (slot, cell) in track.samples() {
                *by_slot.entry(slot).or_insert(0.0) += cell.mean();
            }
        }
        by_slot
            .into_iter()
            .map(|(s, v)| (self.slot_start_secs(s), v))
            .collect()
    }

    /// Total slots evicted across all tracks (0 means no data was lost).
    pub fn total_evicted(&self) -> u64 {
        self.tracks.values().map(|t| t.evicted).sum()
    }

    /// Bytes of cell state held across all tracks.
    pub fn state_bytes(&self) -> usize {
        self.tracks.values().map(TsdbTrack::state_bytes).sum()
    }

    /// Fold another store in, aligning tracks by key and cells by slot.
    ///
    /// # Panics
    /// Panics if the intervals differ — stores sampled on different
    /// cadences do not align and merging them is a wiring bug.
    pub fn merge(&mut self, other: &Tsdb) {
        assert_eq!(
            self.interval_us, other.interval_us,
            "cannot merge tsdbs with different intervals"
        );
        for (key, track) in other.tracks() {
            let mine = self.tracks.entry(*key).or_default();
            for (slot, cell) in track.samples() {
                mine.merge_cell(slot, cell);
            }
            mine.evicted += track.evicted;
            mine.trim(self.cap);
        }
    }

    /// Long-format table: one row per live slot per track, in key order.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "tsdb",
            vec![
                "component".into(),
                "instance".into(),
                "metric".into(),
                "t_seconds".into(),
                "count".into(),
                "mean".into(),
                "p95".into(),
            ],
        );
        for (k, track) in self.tracks() {
            for (slot, cell) in track.samples() {
                t.push_row(vec![
                    k.comp.as_str().to_string(),
                    k.inst.to_string(),
                    k.name.to_string(),
                    format!("{:.6}", self.slot_start_secs(slot)),
                    cell.count().to_string(),
                    format!("{:.6}", cell.mean()),
                    match cell.quantile(0.95) {
                        Some(q) => format!("{q:.6}"),
                        None => "-".into(),
                    },
                ]);
            }
        }
        t
    }

    /// CSV of [`Self::table`].
    pub fn csv(&self) -> String {
        self.table().to_csv()
    }
}

impl Default for Tsdb {
    fn default() -> Self {
        Self::new(250)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn scalar_samples_aggregate_per_slot() {
        let mut db = Tsdb::new(250);
        db.record(Component::Cpu, 0, "util", at(0), 0.5);
        db.record(Component::Cpu, 0, "util", at(100), 0.7);
        db.record(Component::Cpu, 0, "util", at(300), 0.9);
        let track = db.track(Component::Cpu, 0, "util").unwrap();
        assert_eq!(track.len(), 2, "two 250 ms slots touched");
        let series = db.mean_series(Component::Cpu, 0, "util");
        assert_eq!(series[0], (0.0, 0.6));
        assert_eq!(series[1], (0.25, 0.9));
    }

    #[test]
    fn sketch_tracks_expose_quantiles_per_slot() {
        let mut db = Tsdb::new(1000);
        for i in 0..100 {
            db.observe(Component::Repl, 1, "apply_ms", at(10 * i), (i + 1) as f64);
        }
        let track = db.track(Component::Repl, 1, "apply_ms").unwrap();
        assert_eq!(track.len(), 1);
        let (_, cell) = track.samples().next().unwrap();
        assert_eq!(cell.count(), 100);
        let p95 = cell.quantile(0.95).unwrap();
        assert!((p95 - 95.0).abs() < 6.0, "p95 ≈ 95, got {p95}");
    }

    #[test]
    fn ring_capacity_evicts_oldest_and_counts() {
        let mut db = Tsdb::with_capacity(100, 4);
        for i in 0..10u64 {
            db.record(Component::Pool, 0, "waiting", at(i * 100), i as f64);
        }
        let track = db.track(Component::Pool, 0, "waiting").unwrap();
        assert_eq!(track.len(), 4);
        assert_eq!(track.evicted_slots(), 6);
        assert_eq!(db.total_evicted(), 6);
        let first_live = track.samples().next().unwrap().0;
        assert_eq!(first_live, 6, "oldest slots were evicted first");
    }

    #[test]
    fn merge_aligns_slots_and_matches_single_store() {
        let mut a = Tsdb::new(250);
        let mut b = Tsdb::new(250);
        let mut whole = Tsdb::new(250);
        for i in 0..8u64 {
            let v = i as f64 * 1.5;
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.record(Component::Proxy, 0, "ops", at(i * 125), v);
            target.observe(Component::Proxy, 0, "lat_ms", at(i * 125), v + 1.0);
            whole.record(Component::Proxy, 0, "ops", at(i * 125), v);
            whole.observe(Component::Proxy, 0, "lat_ms", at(i * 125), v + 1.0);
        }
        a.merge(&b);
        assert_eq!(a.csv(), whole.csv(), "merge order-independent of source");
    }

    #[test]
    fn rollup_sums_across_instances() {
        let mut db = Tsdb::new(250);
        db.record(Component::Cpu, 0, "ops", at(0), 10.0);
        db.record(Component::Cpu, 1, "ops", at(0), 5.0);
        db.record(Component::Cpu, 1, "other", at(0), 99.0);
        let roll = db.rollup_sum(Component::Cpu, "ops");
        assert_eq!(roll, vec![(0.0, 15.0)]);
    }

    #[test]
    #[should_panic(expected = "different intervals")]
    fn merging_mismatched_intervals_panics() {
        let mut a = Tsdb::new(250);
        a.merge(&Tsdb::new(500));
    }

    #[test]
    fn memory_is_bounded() {
        let mut db = Tsdb::with_capacity(100, 8);
        for i in 0..100_000u64 {
            db.observe(Component::Sql, 0, "demand", at(i), (i % 977) as f64);
        }
        let track = db.track(Component::Sql, 0, "demand").unwrap();
        assert_eq!(track.len(), 8);
        assert!(db.state_bytes() < 8 * 7000, "8 sketches, bounded buckets");
    }

    #[test]
    fn out_of_order_records_land_in_their_slot() {
        let mut db = Tsdb::new(100);
        db.record(Component::Cluster, 0, "x", at(500), 1.0);
        db.record(Component::Cluster, 0, "x", at(100), 2.0);
        db.record(Component::Cluster, 0, "x", at(300), 3.0);
        let slots: Vec<u64> = db
            .track(Component::Cluster, 0, "x")
            .unwrap()
            .samples()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(slots, vec![1, 3, 5]);
    }
}
