//! Integration properties of the consistency layer against the full cluster
//! simulation — the acceptance gates of the amdb-consistency subsystem:
//!
//! * `Eventual` is **byte-identical** to no policy at all (the layer is pure
//!   bookkeeping: no events, no RNG), so every pre-existing result stays
//!   valid;
//! * `BoundedStaleness { max_ms: 0 }` degenerates to master-only reads (the
//!   bound is strict, so even a zero-lag slave is excluded);
//! * tightening the bound never *increases* the slave-served read share.

use amdb_cloudstone::{DataSize, WorkloadConfig};
use amdb_core::{
    run_cluster, ClusterConfig, ConsistencyConfig, ConsistencyPolicy, FallbackPolicy, RunReport,
};
use proptest::prelude::*;

fn quick_cfg(users: u32, slaves: usize, seed: u64) -> amdb_core::ClusterBuilder {
    ClusterConfig::builder()
        .slaves(slaves)
        .workload(WorkloadConfig::quick(users))
        .data_size(DataSize { scale: 30 })
        .seed(seed)
}

/// Every observable a run produces, collapsed to exact bit patterns so float
/// comparisons cannot hide drift.
fn fingerprint(r: &RunReport) -> Vec<u64> {
    let mut v = vec![
        r.steady_ops,
        r.steady_reads,
        r.steady_writes,
        r.steady_slave_reads,
        r.sim_events,
        r.peak_relay_backlog,
        r.pool_stats.0,
        r.pool_stats.1,
        r.throughput_ops_s.to_bits(),
        r.master_utilization.to_bits(),
    ];
    v.extend(r.reads_per_slave.iter().copied());
    v.extend(r.slave_utilizations.iter().map(|u| u.to_bits()));
    if let Some(l) = &r.latency_ms {
        v.extend([l.mean.to_bits(), l.p95.to_bits(), l.max.to_bits()]);
    }
    for d in &r.delays {
        v.push(d.baseline_ms.map_or(0, f64::to_bits));
        v.push(d.loaded_ms.map_or(0, f64::to_bits));
        v.push(d.loaded_samples as u64);
    }
    v
}

fn slave_read_share(r: &RunReport) -> f64 {
    if r.steady_reads == 0 {
        0.0
    } else {
        r.steady_slave_reads as f64 / r.steady_reads as f64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn eventual_is_byte_identical_to_no_policy(seed in 1..1000u64) {
        let plain = run_cluster(quick_cfg(8, 2, seed).build());
        let eventual = run_cluster(
            quick_cfg(8, 2, seed)
                .consistency(ConsistencyConfig::new(ConsistencyPolicy::Eventual))
                .build(),
        );
        prop_assert_eq!(fingerprint(&plain), fingerprint(&eventual));
        // And the layer still reported (proof it was actually active).
        let c = eventual.consistency.expect("layer was configured");
        prop_assert_eq!(c.policy, "eventual");
        prop_assert_eq!(c.redirects_master, 0);
        prop_assert_eq!(c.waits, 0);
        prop_assert!(c.served_staleness_samples > 0, "slave reads were measured");
    }

    #[test]
    fn zero_bound_is_master_only(seed in 1..1000u64) {
        let r = run_cluster(
            quick_cfg(8, 2, seed)
                .consistency(ConsistencyConfig::new(ConsistencyPolicy::BoundedStaleness {
                    max_ms: 0.0,
                }))
                .build(),
        );
        prop_assert!(r.steady_ops > 0, "run did work");
        prop_assert_eq!(r.steady_slave_reads, 0, "no steady read was slave-served");
        prop_assert_eq!(r.reads_per_slave.iter().sum::<u64>(), 0u64);
        let c = r.consistency.expect("layer was configured");
        prop_assert!(c.redirects_master > 0, "reads were redirected");
        prop_assert_eq!(c.served_staleness_samples, 0);
        prop_assert_eq!(c.sla_violations, 0, "master reads cannot violate");
    }
}

#[test]
fn tightening_the_bound_never_increases_slave_share() {
    let shares: Vec<f64> = [0.0, 50.0, f64::INFINITY]
        .iter()
        .map(|&max_ms| {
            let r = run_cluster(
                quick_cfg(10, 2, 7)
                    .consistency(ConsistencyConfig::new(
                        ConsistencyPolicy::BoundedStaleness { max_ms },
                    ))
                    .build(),
            );
            slave_read_share(&r)
        })
        .collect();
    assert!(
        shares.windows(2).all(|w| w[0] <= w[1] + 1e-12),
        "slave-served share must be monotone in the bound: {shares:?}"
    );
    assert_eq!(shares[0], 0.0, "zero bound is master-only");
    assert!(shares[2] > 0.0, "infinite bound serves from slaves");
}

#[test]
fn wait_for_catchup_parks_then_completes() {
    // An impossible bound with a finite deadline: every read parks, rides
    // out the deadline, then redirects. The run must still complete every
    // user interaction (no read can hang forever).
    let r = run_cluster(
        quick_cfg(6, 1, 11)
            .consistency(
                ConsistencyConfig::new(ConsistencyPolicy::BoundedStaleness { max_ms: 0.0 })
                    .with_wait(40.0),
            )
            .build(),
    );
    assert!(r.steady_ops > 0, "run made progress");
    assert_eq!(r.steady_slave_reads, 0);
    let c = r.consistency.expect("layer was configured");
    assert!(c.waits > 0, "reads parked at least once");
    assert!(c.wait_ms_total > 0.0);
    assert!(
        c.redirects_master > 0,
        "deadline expiry redirects to the master"
    );
    assert_eq!(c.fallback, "wait(40ms)");
}

#[test]
fn session_policies_run_and_report() {
    for policy in [
        ConsistencyPolicy::ReadYourWrites,
        ConsistencyPolicy::Monotonic,
    ] {
        let r = run_cluster(
            quick_cfg(8, 2, 13)
                .consistency(ConsistencyConfig {
                    policy,
                    fallback: FallbackPolicy::RedirectToMaster,
                    min_wait_ms: 5.0,
                })
                .build(),
        );
        assert!(r.steady_ops > 0, "{policy:?} run made progress");
        let c = r.consistency.expect("layer was configured");
        // Session guarantees are cheap in this workload (slaves keep up),
        // so most reads still land on slaves — but the layer must have
        // measured them.
        assert!(
            c.served_staleness_samples > 0,
            "{policy:?} served reads from slaves"
        );
        assert_eq!(c.policy, ConsistencyPolicy::label(&policy));
    }
}

#[test]
fn bounded_staleness_counts_violations_against_ground_truth() {
    // A tight-but-satisfiable bound in the cross-region placement: the
    // estimator admits slaves that sometimes turn out stale — those must be
    // counted, not silently forgiven.
    let r = run_cluster(
        quick_cfg(12, 2, 19)
            .placement(amdb_core::Placement::DifferentRegion(
                amdb_net::Region::EuWest1,
            ))
            .consistency(ConsistencyConfig::new(
                ConsistencyPolicy::BoundedStaleness { max_ms: 200.0 },
            ))
            .build(),
    );
    let c = r.consistency.expect("layer was configured");
    assert!(
        c.served_staleness_samples > 0 || c.redirects_master > 0,
        "reads were either served by slaves or redirected"
    );
    assert!(c.sla_violations >= c.sla_violations_steady);
}
