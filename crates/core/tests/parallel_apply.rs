//! Integration properties of the parallel-apply scheduler against the full
//! cluster simulation — the acceptance gates of the amdb-apply subsystem:
//!
//! * `apply_workers = 1` **is** the serial pipeline: the builder default and
//!   the explicit setting produce bit-identical runs, and every batch holds
//!   exactly one event;
//! * statement-format events are scheduling barriers, so extra workers are
//!   a bit-identical no-op there — the accounting (`rows_examined`, apply
//!   demand, telemetry instants) cannot drift with the worker count;
//! * on a saturated row-format cell, the staleness-waterfall delay segments
//!   shrink monotonically as workers grow, and the `delay_surge` alert
//!   fires later (or never) — the paper's Fig 5/6 surge flattening.

use amdb_cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb_core::{run_cluster, run_cluster_telemetry, ClusterConfig, RunReport};
use amdb_sql::binlog::BinlogFormat;
use amdb_telemetry::AlertKind;
use proptest::prelude::*;

fn quick_cfg(users: u32, slaves: usize, seed: u64) -> amdb_core::ClusterBuilder {
    ClusterConfig::builder()
        .slaves(slaves)
        .workload(WorkloadConfig::quick(users))
        .data_size(DataSize { scale: 30 })
        .seed(seed)
}

/// Every observable a run produces, collapsed to exact bit patterns so
/// float comparisons cannot hide drift.
fn fingerprint(r: &RunReport) -> Vec<u64> {
    let mut v = vec![
        r.steady_ops,
        r.steady_reads,
        r.steady_writes,
        r.steady_slave_reads,
        r.sim_events,
        r.peak_relay_backlog,
        r.apply_batches,
        r.apply_events,
        r.pool_stats.0,
        r.pool_stats.1,
        r.throughput_ops_s.to_bits(),
        r.master_utilization.to_bits(),
    ];
    v.extend(r.reads_per_slave.iter().copied());
    v.extend(r.slave_utilizations.iter().map(|u| u.to_bits()));
    if let Some(l) = &r.latency_ms {
        v.extend([l.mean.to_bits(), l.p95.to_bits(), l.max.to_bits()]);
    }
    for d in &r.delays {
        v.push(d.baseline_ms.map_or(0, f64::to_bits));
        v.push(d.loaded_ms.map_or(0, f64::to_bits));
        v.push(d.loaded_samples as u64);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The builder default and an explicit `apply_workers(1)` are the same
    /// run, and the serial thread never groups a batch.
    #[test]
    fn workers_one_is_the_serial_pipeline(seed in 1..1000u64) {
        let default = run_cluster(quick_cfg(8, 2, seed).format(BinlogFormat::Row).build());
        let explicit = run_cluster(
            quick_cfg(8, 2, seed)
                .format(BinlogFormat::Row)
                .apply_workers(1)
                .build(),
        );
        prop_assert_eq!(fingerprint(&default), fingerprint(&explicit));
        prop_assert_eq!(explicit.apply_batches, explicit.apply_events);
        prop_assert!(explicit.apply_events > 0, "the run replicated something");
    }

    /// Statement events are barriers: 8 workers degenerate to singleton
    /// batches, and because a singleton batch charges exactly the serial
    /// demand (`apply_batch_demand_us` delegates), the whole run — CPU
    /// timings, heartbeat delays, throughput — is bit-identical.
    #[test]
    fn statement_format_ignores_worker_count(seed in 1..1000u64) {
        let serial = run_cluster(quick_cfg(8, 2, seed).build());
        let wide = run_cluster(quick_cfg(8, 2, seed).apply_workers(8).build());
        prop_assert_eq!(fingerprint(&serial), fingerprint(&wide));
        prop_assert_eq!(wide.apply_batches, wide.apply_events);
    }
}

/// A row-format cell pushed into the delay surge: the fig5-style
/// 150-user / size-300 / 2-slave grid cell, where offered demand
/// saturates the slaves and the relay backlog grows for the whole steady
/// window (mean staleness is measured in seconds under serial apply).
fn surge_cfg(workers: usize) -> ClusterConfig {
    quick_cfg(150, 2, 424242)
        .mix(MixConfig::RW_50_50)
        .data_size(DataSize::SMALL)
        .format(BinlogFormat::Row)
        .apply_workers(workers)
        .build()
}

#[test]
fn waterfall_apply_delay_shrinks_and_surge_onset_recedes() {
    // One saturated cell at 1, 2 and 4 workers. The workload replays
    // identically (the seed does not depend on the worker count), so every
    // delta below is the scheduler's doing.
    let runs: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|w| run_cluster_telemetry(surge_cfg(w)))
        .collect();

    // The waterfall's per-slave delay decomposition: the queueing leg
    // (relay wait) and the end-to-end commit→applied leg must shrink
    // monotonically with the worker count on a saturated cell.
    let leg_means: Vec<(f64, f64)> = runs
        .iter()
        .map(|(_, _, _, t)| {
            let leg = &t.waterfall.legs()[0];
            (
                leg.queue_ms.mean().expect("writes were traced"),
                leg.e2e_ms.mean().expect("writes were traced"),
            )
        })
        .collect();
    for pair in leg_means.windows(2) {
        assert!(
            pair[1].0 < pair[0].0,
            "queue leg did not shrink: {leg_means:?}"
        );
        assert!(
            pair[1].1 < pair[0].1,
            "e2e delay leg did not shrink: {leg_means:?}"
        );
    }

    // Batches actually formed, and group commit did real work: the mean
    // batch size grows with the worker count. (Total event counts are
    // *nearly* equal across arms — the closed-loop workload completes a
    // few more ops when applies speed up — so compare ratios, not counts.)
    let mean_batch: Vec<f64> = runs
        .iter()
        .map(|(r, _, _, _)| r.apply_events as f64 / r.apply_batches as f64)
        .collect();
    assert_eq!(mean_batch[0], 1.0, "serial apply never batches");
    assert!(
        mean_batch[1] > 1.05,
        "2 workers formed no batches: {mean_batch:?}"
    );
    assert!(
        mean_batch[2] > mean_batch[1],
        "batch size not monotone: {mean_batch:?}"
    );

    // The delay-surge alert: fires on the serial baseline; with 4 workers
    // the onset moves later, or the alert never fires at all.
    let onset = |t: &amdb_telemetry::Telemetry| {
        t.slo
            .alerts()
            .iter()
            .find(|a| a.rule == "delay_surge" && a.kind == AlertKind::Fire)
            .map(|a| a.at)
    };
    let serial_onset = onset(&runs[0].3).expect("serial baseline must surge");
    match onset(&runs[2].3) {
        None => {} // surge eliminated entirely
        Some(batched_onset) => assert!(
            batched_onset > serial_onset,
            "surge onset did not recede: serial {serial_onset:?}, 4 workers {batched_onset:?}"
        ),
    }
}
