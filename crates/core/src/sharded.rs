//! Sharded replication trees: N independent master+slaves clusters behind
//! one shard-aware front, all on one simulated clock.
//!
//! The paper's single-master architecture saturates once the write stream
//! fills one CPU (fig2's ceiling). This module goes past that ceiling by
//! partitioning the Cloudstone keyspace across `shards` replication trees
//! with a deterministic [`ShardMap`] (jump consistent hash + range
//! overrides, see `amdb-shard`) and routing every operation at a front
//! proxy:
//!
//! * **single-shard ops** (the common case — every Cloudstone op carries a
//!   shard key) go to the owning tree alone;
//! * a configurable fraction of reads are **scatter-gathered**: fanned out
//!   to every tree, each leg judged against the front's consistency policy
//!   ([`Gather`]), the op completing when the last leg responds.
//!
//! # One kernel, N trees
//!
//! All trees share one discrete-event kernel: each tree's events are
//! wrapped as [`ShardedEvent::Tree`] and dispatched back through
//! [`ClusterEvent::fire_on`] with a per-tree [`TreeHost`], so a tree cannot
//! tell whether it runs standalone or sharded. With `shards = 1` the world
//! degenerates to exactly the standalone cluster: same seed, same RNG
//! stream labels, same event order — byte-identical reports (pinned by a
//! test below).
//!
//! # Determinism
//!
//! Each tree derives its seed from
//! `(seed, shard_id, placement, slaves, users)`, so a tree's internal
//! randomness is decoupled from its siblings and stable across sweeps. The
//! front draws from its own `"ops"`/`"think"`/`"cross"` streams. No
//! ambient randomness, no wall clock: the same config yields the same
//! report bit-for-bit at any `--jobs` level.
//!
//! # Durability contract for injected writes
//!
//! Injected writes always respond at master commit (async), regardless of
//! the tree's `ReplMode` — a scatter leg cannot block on per-tree sync
//! acks without a front-side ack protocol (DESIGN.md §14).

use crate::cluster::{Cluster, ClusterEvent, ClusterHost, InjectedDone};
use crate::config::{ClusterConfig, WorkloadKind};
use crate::report::RunReport;
use amdb_cloudstone::{
    build_template, shard_key_of, DataCounters, MixConfig, OpClass, OpGenerator, Operation, Phases,
};
use amdb_consistency::ConsistencyPolicy;
use amdb_metrics::Summary;
use amdb_net::Zone;
use amdb_obs::{Component, FlowPhase, Obs, Tsdb};
use amdb_pool::{Acquire, PoolConfig, SimPool, Ticket};
use amdb_shard::{Gather, RangeOverride, ShardMap};
use amdb_sim::{Event, Rng, Sim, SimDuration, SimTime};
use amdb_sql::Engine;
use amdb_telemetry::FleetTelemetry;
use std::collections::HashMap;

pub type ShardedSim = Sim<ShardedWorld, ShardedEvent>;

/// Configuration of a sharded run: a per-tree template plus the front's
/// sharding knobs. `base.workload.concurrent_users` is the *total* user
/// count — users live at the front, not in any tree.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of independent replication trees.
    pub shards: u32,
    /// Per-tree template (slaves, placement, data size, phases, seed, …).
    pub base: ClusterConfig,
    /// Fraction of reads scatter-gathered across every shard (writes are
    /// always single-shard; the schema gives every write one owner).
    pub cross_shard_read_fraction: f64,
    /// Cycle tree masters across zone letters a–d (`shards > 1` only), so
    /// shard scale-out also spreads masters across failure domains.
    pub spread_masters: bool,
    /// Range-override table pinning id ranges to chosen shards.
    pub overrides: Vec<RangeOverride>,
}

impl ShardedConfig {
    /// A sharded config with the default knobs: no cross-shard reads,
    /// masters spread across zones, no overrides.
    pub fn new(shards: u32, base: ClusterConfig) -> Self {
        Self {
            shards,
            base,
            cross_shard_read_fraction: 0.0,
            spread_masters: true,
            overrides: Vec::new(),
        }
    }

    /// Set the scatter-gathered read fraction.
    pub fn cross_shard_read_fraction(mut self, f: f64) -> Self {
        self.cross_shard_read_fraction = f;
        self
    }

    /// Enable/disable master zone spreading.
    pub fn spread_masters(mut self, yes: bool) -> Self {
        self.spread_masters = yes;
        self
    }

    /// Install a range-override table.
    pub fn overrides(mut self, overrides: Vec<RangeOverride>) -> Self {
        self.overrides = overrides;
        self
    }
}

/// Tree `k`'s seed: the base seed verbatim for a single shard (bit-identity
/// with the standalone cluster), otherwise a stream derived from the
/// sharding-relevant shape of the run so per-shard randomness is stable
/// under sweeps and decoupled across shards.
fn tree_seed(cfg: &ShardedConfig, k: u32) -> u64 {
    if cfg.shards == 1 {
        return cfg.base.seed;
    }
    Rng::new(cfg.base.seed)
        .derive(&format!(
            "shard/{k}/{:?}/slaves={}/users={}",
            cfg.base.placement, cfg.base.n_slaves, cfg.base.workload.concurrent_users
        ))
        .next_u64()
}

/// Tree `k`'s cluster config: the base template with no users of its own
/// (the front drives it via injection), its balancer cursor staggered by
/// shard id, and — under `spread_masters` — its master cycled across zone
/// letters while clients (the front) stay in the base master zone.
fn tree_config(cfg: &ShardedConfig, k: u32) -> ClusterConfig {
    let mut c = cfg.base.clone();
    c.workload.concurrent_users = 0;
    c.balancer_start = k as usize;
    c.seed = tree_seed(cfg, k);
    // Stamp the tree's telemetry with its fleet coordinates: alerts fire as
    // `(shard, component, instance)` and the waterfall's inflight cap
    // scales with the fan-out (shards=1 leaves both at their standalone
    // defaults — part of the identity contract).
    c.telemetry.shard = k;
    c.telemetry.shards = cfg.shards;
    if cfg.spread_masters && cfg.shards > 1 {
        let letters = ['a', 'b', 'c', 'd'];
        c.master_zone = Zone::new(cfg.base.master_zone.region, letters[k as usize % 4]);
    }
    c.client_zone = Some(cfg.base.master_zone);
    c
}

/// Agenda events of the sharded world.
pub enum ShardedEvent {
    /// An event of tree `k`, dispatched through its [`TreeHost`].
    Tree(u32, ClusterEvent),
    /// A front user's think time elapsed; generate the next operation.
    UserNextOp { user: u32 },
    /// Tree `shard` completed one injected operation (one scatter leg, or a
    /// whole single-shard op).
    OpDone { shard: u32, done: InjectedDone },
}

impl Event<ShardedWorld> for ShardedEvent {
    fn fire(self, w: &mut ShardedWorld, sim: &mut ShardedSim) {
        match self {
            ShardedEvent::Tree(k, ev) => {
                let mut host = TreeHost { sim, shard: k };
                ev.fire_on(&mut w.trees[k as usize], &mut host);
            }
            ShardedEvent::UserNextOp { user } => w.user_next_op(sim, user),
            ShardedEvent::OpDone { shard, done } => w.op_done(sim, shard, done),
        }
    }
}

/// The [`ClusterHost`] one tree sees: wraps the tree's events with its
/// shard id so N trees multiplex onto one kernel, and routes injected-op
/// completions back to the front.
struct TreeHost<'a> {
    sim: &'a mut ShardedSim,
    shard: u32,
}

impl ClusterHost for TreeHost<'_> {
    fn now(&self) -> SimTime {
        self.sim.now()
    }

    fn schedule_event_at(&mut self, at: SimTime, ev: ClusterEvent) {
        self.sim
            .schedule_event_at(at, ShardedEvent::Tree(self.shard, ev));
    }

    fn notify_front(&mut self, at: SimTime, done: InjectedDone) {
        self.sim.schedule_event_at(
            at,
            ShardedEvent::OpDone {
                shard: self.shard,
                done,
            },
        );
    }
}

/// One in-flight front operation (single-shard: one leg; scattered: one
/// leg per shard under the same id).
struct InFlight {
    user: u32,
    class: OpClass,
    issued: SimTime,
    /// Legs still outstanding.
    pending: u32,
    /// True while every completed leg was slave-served (mirrors the
    /// standalone `routed_slave.is_some()` slave-read accounting).
    all_slave: bool,
    /// Scatter legs only: per-leg consistency filter + staleness tracking.
    gather: Option<Gather<()>>,
    /// Scatter legs only: the operation, retained so an all-legs-filtered
    /// gather can re-dispatch it as a master-routed fallback leg.
    op: Option<Operation>,
}

#[derive(Default)]
struct FrontStats {
    steady_ops: u64,
    steady_reads: u64,
    steady_writes: u64,
    steady_slave_reads: u64,
    latencies_ms: Vec<f64>,
    steady_peak_waiting: usize,
    scatter_reads: u64,
    scatter_reads_steady: u64,
    scatter_legs: u64,
    /// Scatter legs dropped by the per-leg consistency filter.
    scatter_filtered_legs: u64,
    /// Scattered reads whose legs were *all* filtered and which therefore
    /// re-ran as a master-routed fallback leg.
    scatter_master_fallbacks: u64,
}

/// The shard-aware front: user loops, connection pool, shard map, and the
/// scatter-gather router. Plays the role the user/pool half of `Cluster`
/// plays standalone — deliberately mirroring its order of operations so a
/// one-shard world replays the standalone event sequence exactly.
struct Front {
    phases: Phases,
    mix: MixConfig,
    think_time: SimDuration,
    users: u32,
    map: ShardMap,
    cross_fraction: f64,
    /// Policy scatter legs are judged against (the base consistency
    /// policy; `Eventual` when no consistency layer is configured).
    leg_policy: ConsistencyPolicy,
    gen: OpGenerator,
    pool: SimPool,
    parked: HashMap<Ticket, (u32, Operation, SimTime)>,
    rng_think: Rng,
    rng_cross: Rng,
    next_id: u64,
    inflight: HashMap<u64, InFlight>,
    stats: FrontStats,
    obs: Obs,
}

/// The sharded simulation world: one front, N trees.
pub struct ShardedWorld {
    front: Front,
    trees: Vec<Cluster>,
}

impl ShardedWorld {
    fn new(cfg: &ShardedConfig, template: &Engine, counters: DataCounters) -> Self {
        assert!(cfg.shards >= 1, "a sharded world needs at least one tree");
        assert!(
            matches!(cfg.base.workload_kind, WorkloadKind::Cloudstone),
            "the sharded front routes the Cloudstone workload"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.cross_shard_read_fraction),
            "cross_shard_read_fraction must be a probability"
        );
        let trees: Vec<Cluster> = (0..cfg.shards)
            .map(|k| Cluster::with_template(tree_config(cfg, k), template, counters.clone()))
            .collect();
        let root = Rng::new(cfg.base.seed);
        let users = cfg.base.workload.concurrent_users;
        let pool_size = if cfg.base.pool_max_active == 0 {
            users as usize
        } else {
            cfg.base.pool_max_active
        };
        let front = Front {
            phases: cfg.base.workload.phases,
            mix: cfg.base.mix,
            think_time: cfg.base.workload.think_time,
            users,
            map: ShardMap::with_overrides(cfg.shards, cfg.overrides.clone()),
            cross_fraction: cfg.cross_shard_read_fraction,
            leg_policy: cfg
                .base
                .consistency
                .as_ref()
                .map_or(ConsistencyPolicy::Eventual, |c| c.policy),
            gen: OpGenerator::new(counters, root.derive("ops")),
            pool: SimPool::new(PoolConfig {
                max_active: pool_size,
            }),
            parked: HashMap::new(),
            rng_think: root.derive("think"),
            rng_cross: root.derive("cross"),
            next_id: 1,
            inflight: HashMap::new(),
            stats: FrontStats::default(),
            obs: Obs::from_config(&cfg.base.obs),
        };
        Self { front, trees }
    }

    /// Schedule every tree's timeline, then the front's users. Tree
    /// timelines come first so same-instant control events (heartbeat @ 0,
    /// window markers) keep their standalone seq order; user events are
    /// staggered strictly inside the ramp and never tie with them.
    fn schedule_timeline(&mut self, sim: &mut ShardedSim) {
        for k in 0..self.trees.len() {
            let mut host = TreeHost {
                sim: &mut *sim,
                shard: k as u32,
            };
            self.trees[k].schedule_timeline(&mut host);
        }
        let users = self.front.users;
        let ramp = self.front.phases.ramp_up;
        let start = self.front.phases.load_start();
        for u in 0..users {
            let at = start + SimDuration::from_micros(ramp.as_micros() * u as u64 / users as u64);
            sim.schedule_event_at(at, ShardedEvent::UserNextOp { user: u });
        }
    }

    fn user_next_op(&mut self, sim: &mut ShardedSim, user: u32) {
        let now = sim.now();
        if now >= self.front.phases.load_end() {
            return; // ramp-down: user retires
        }
        let op = self.front.gen.generate(self.front.mix);
        match self.front.pool.acquire(now) {
            Acquire::Ready => self.dispatch_front(sim, user, op, now),
            Acquire::Queued(t) => {
                self.front.obs.incr(Component::Pool, 0, "checkout_waits", 1);
                if self.front.phases.in_steady(now) {
                    self.front.stats.steady_peak_waiting = self
                        .front
                        .stats
                        .steady_peak_waiting
                        .max(self.front.pool.waiting());
                }
                self.front.parked.insert(t, (user, op, now));
            }
        }
    }

    /// Route one operation: scatter a chosen fraction of reads across every
    /// tree, send everything else to the shard that owns its key.
    fn dispatch_front(&mut self, sim: &mut ShardedSim, user: u32, op: Operation, issued: SimTime) {
        let id = self.front.next_id;
        self.front.next_id += 1;
        let n = self.trees.len();
        // Gated on `n > 1` so a one-shard run never consults the cross
        // stream — part of the shards=1 identity contract.
        let scatter = n > 1
            && op.class == OpClass::Read
            && self.front.cross_fraction > 0.0
            && self.front.rng_cross.chance(self.front.cross_fraction);
        if scatter {
            self.front.stats.scatter_reads += 1;
            if self.front.phases.in_steady(issued) {
                self.front.stats.scatter_reads_steady += 1;
            }
            self.front.stats.scatter_legs += n as u64;
            self.front.obs.flow(
                FlowPhase::Start,
                Component::Proxy,
                0,
                "scatter_gather",
                issued,
                id,
            );
            self.front.inflight.insert(
                id,
                InFlight {
                    user,
                    class: op.class,
                    issued,
                    pending: n as u32,
                    all_slave: true,
                    gather: Some(Gather::new(n, self.front.leg_policy)),
                    op: Some(op.clone()),
                },
            );
            for k in 0..n {
                let mut host = TreeHost {
                    sim: &mut *sim,
                    shard: k as u32,
                };
                self.trees[k].inject_op(&mut host, id, op.clone());
            }
        } else {
            let shard = self.front.map.shard_of_opt(shard_key_of(&op)) as usize;
            self.front.inflight.insert(
                id,
                InFlight {
                    user,
                    class: op.class,
                    issued,
                    pending: 1,
                    all_slave: true,
                    gather: None,
                    op: None,
                },
            );
            let mut host = TreeHost {
                sim: &mut *sim,
                shard: shard as u32,
            };
            self.trees[shard].inject_op(&mut host, id, op);
        }
    }

    /// One leg of an in-flight op completed on `shard`. Mirrors the
    /// standalone `respond` exactly (per-leg balancer feedback, then stats,
    /// pool handoff, think) so a one-shard world replays its sequence.
    fn op_done(&mut self, sim: &mut ShardedSim, shard: u32, done: InjectedDone) {
        let now = sim.now();
        let fl = self
            .front
            .inflight
            .get_mut(&done.id)
            .expect("completion for an unknown op id");
        let leg_latency_ms = (now - fl.issued).as_millis_f64();
        let issued = fl.issued;
        if done.routed_slave.is_none() {
            fl.all_slave = false;
        }
        let scattered = if let Some(g) = fl.gather.as_mut() {
            g.offer_at(
                shard as usize,
                done.staleness_ms,
                Vec::new(),
                now.as_micros(),
            );
            true
        } else {
            false
        };
        fl.pending -= 1;
        let pending = fl.pending;
        if scattered && self.front.obs.is_enabled() {
            // One span per scatter leg, linked into the op's flow arrow:
            // the waterfall shows which tree each leg ran on and how long
            // the front waited on it.
            self.front
                .obs
                .span(Component::Proxy, shard, "scatter_leg", issued, now);
            self.front.obs.flow(
                FlowPhase::Step,
                Component::Proxy,
                shard,
                "scatter_gather",
                now,
                done.id,
            );
            self.front.obs.observe_sketch(
                Component::Proxy,
                shard,
                "scatter_leg_ms",
                leg_latency_ms,
            );
        }
        // Per-leg feedback into the serving tree's balancer, exactly as the
        // standalone respond path does before touching stats.
        if let Some(s) = done.routed_slave {
            self.trees[shard as usize].note_read_done(s, leg_latency_ms);
        }
        if pending == 0 {
            // All-legs-filtered fallback: the consistency filter dropped
            // every leg, so completing now would hand the user an empty
            // result that *violates* the staleness bound it was filtered
            // under. Re-run the read as one master-routed leg on its owning
            // shard — deterministic (no RNG, no balancer) and fresh by
            // definition. The entry stays in flight with the gather gone,
            // so the fallback completion takes the plain single-leg path.
            let fallback = {
                let fl = self
                    .front
                    .inflight
                    .get_mut(&done.id)
                    .expect("entry existed above");
                if fl.gather.as_ref().is_some_and(|g| g.all_legs_filtered()) {
                    let g = fl.gather.take().expect("checked above");
                    fl.pending = 1;
                    fl.all_slave = false;
                    Some((g, fl.op.take().expect("scattered ops retain their op")))
                } else {
                    None
                }
            };
            if let Some((g, op)) = fallback {
                self.front.stats.scatter_filtered_legs += u64::from(g.filtered_legs());
                self.front.stats.scatter_master_fallbacks += 1;
                let home = self.front.map.shard_of_opt(shard_key_of(&op)) as usize;
                self.front
                    .obs
                    .incr(Component::Proxy, home as u32, "scatter_master_fallback", 1);
                self.front.obs.flow(
                    FlowPhase::Step,
                    Component::Proxy,
                    home as u32,
                    "scatter_gather",
                    now,
                    done.id,
                );
                let mut host = TreeHost {
                    sim: &mut *sim,
                    shard: home as u32,
                };
                self.trees[home].inject_op_master(&mut host, done.id, op);
                return;
            }
        }
        if pending > 0 {
            return;
        }
        let fl = self
            .front
            .inflight
            .remove(&done.id)
            .expect("entry existed above");
        if let Some(g) = &fl.gather {
            debug_assert!(g.is_complete(), "final leg completes the gather");
            self.front.stats.scatter_filtered_legs += u64::from(g.filtered_legs());
            self.front.obs.flow(
                FlowPhase::End,
                Component::Proxy,
                0,
                "scatter_gather",
                now,
                done.id,
            );
            if self.front.obs.is_enabled() {
                // Scatter-gather tax decomposition: name the leg the whole
                // read waited on, and record slowest−fastest arrival — the
                // latency the fan-out cost over a single-shard read.
                if let Some((slowest, _)) = g.slowest_leg() {
                    self.front
                        .obs
                        .incr(Component::Proxy, slowest as u32, "scatter_slowest", 1);
                }
                let tax_ms = g.leg_spread_us() as f64 / 1000.0;
                self.front
                    .obs
                    .observe_sketch(Component::Proxy, 0, "scatter_tax_ms", tax_ms);
                self.front
                    .obs
                    .tsdb_observe(Component::Proxy, 0, "scatter_tax_ms", now, tax_ms);
            }
        }
        let latency_ms = (now - fl.issued).as_millis_f64();
        if self.front.phases.in_steady(now) {
            self.front.stats.steady_ops += 1;
            match fl.class {
                OpClass::Read => {
                    self.front.stats.steady_reads += 1;
                    if fl.all_slave {
                        self.front.stats.steady_slave_reads += 1;
                    }
                }
                OpClass::Write => self.front.stats.steady_writes += 1,
            }
            self.front.stats.latencies_ms.push(latency_ms);
        }
        // Return the connection; hand it straight to a parked user if any.
        if let Some(ticket) = self.front.pool.release(now) {
            if let Some((u2, op2, issued2)) = self.front.parked.remove(&ticket) {
                self.front.obs.observe_sketch(
                    Component::Pool,
                    0,
                    "checkout_wait_ms",
                    (now - issued2).as_millis_f64(),
                );
                self.dispatch_front(sim, u2, op2, issued2);
            }
        }
        // Think, then next op.
        let think = SimDuration::from_secs_f64(
            self.front
                .rng_think
                .exp(self.front.think_time.as_secs_f64()),
        );
        sim.schedule_event_at(now + think, ShardedEvent::UserNextOp { user: fl.user });
    }

    /// Detach every observability artifact of the run into one fleet
    /// bundle: per-tree recorders and time-series stores, the front's
    /// recorder, and the per-shard telemetry rollup. Call after the
    /// simulation has drained (and after [`Self::report`]).
    fn take_fleet_obs(&mut self) -> FleetObsBundle {
        let mut telemetry = FleetTelemetry::new();
        let mut tsdbs = Vec::new();
        let mut trees = Vec::with_capacity(self.trees.len());
        for (k, tree) in self.trees.iter_mut().enumerate() {
            if let Some(t) = tree.take_telemetry() {
                telemetry.absorb(k as u32, t);
            }
            let mut o = tree.take_obs();
            if let Some(db) = o.take_tsdb() {
                tsdbs.push((k as u32, db));
            }
            trees.push(o);
        }
        let mut front = std::mem::take(&mut self.front.obs);
        let front_tsdb = front.take_tsdb();
        FleetObsBundle {
            front,
            trees,
            tsdbs,
            front_tsdb,
            telemetry,
        }
    }

    /// Assemble the sharded report (after the simulation has drained).
    fn report(&mut self, sim_events: u64) -> ShardedReport {
        let phases = self.front.phases;
        let steady_secs = (phases.steady_end() - phases.steady_start()).as_secs_f64();
        // Per-tree sim_events are meaningless on a shared kernel: report 0.
        let per_shard: Vec<RunReport> = self.trees.iter_mut().map(|t| t.report(0)).collect();
        let per_shard_bottleneck: Vec<String> = self
            .trees
            .iter()
            .map(|t| {
                t.bottleneck_report()
                    .busiest()
                    .map_or_else(|| "-".to_string(), |r| r.label.clone())
            })
            .collect();
        let s = &self.front.stats;
        ShardedReport {
            shards: self.trees.len() as u32,
            users: self.front.users,
            steady_ops: s.steady_ops,
            steady_reads: s.steady_reads,
            steady_writes: s.steady_writes,
            steady_slave_reads: s.steady_slave_reads,
            throughput_ops_s: s.steady_ops as f64 / steady_secs,
            latency_ms: Summary::of(&s.latencies_ms),
            scatter_reads: s.scatter_reads,
            scatter_reads_steady: s.scatter_reads_steady,
            scatter_legs: s.scatter_legs,
            scatter_filtered_legs: s.scatter_filtered_legs,
            scatter_master_fallbacks: s.scatter_master_fallbacks,
            pool_stats: (
                self.front.pool.total_acquired(),
                self.front.pool.total_waited(),
            ),
            peak_pool_waiting: s.steady_peak_waiting,
            per_shard,
            per_shard_bottleneck,
            sim_events,
        }
    }
}

/// The report of one sharded run: front-side aggregates plus each tree's
/// full [`RunReport`] and its busiest steady-window resource.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    pub shards: u32,
    pub users: u32,
    pub steady_ops: u64,
    pub steady_reads: u64,
    pub steady_writes: u64,
    pub steady_slave_reads: u64,
    pub throughput_ops_s: f64,
    pub latency_ms: Option<Summary>,
    /// Scatter-gathered reads issued over the whole run / steady window.
    pub scatter_reads: u64,
    pub scatter_reads_steady: u64,
    /// Fan-out legs issued (== scatter_reads × shards).
    pub scatter_legs: u64,
    /// Legs dropped by the per-leg consistency filter.
    pub scatter_filtered_legs: u64,
    /// Scattered reads that re-ran as a master fallback leg because every
    /// scatter leg was filtered.
    pub scatter_master_fallbacks: u64,
    /// (total acquired, total waited) at the front's connection pool.
    pub pool_stats: (u64, u64),
    /// Peak pool-waiter count over the steady window.
    pub peak_pool_waiting: usize,
    /// One standalone-format report per tree (tree `users` is 0 — users
    /// live at the front; steady op counts are front-side).
    pub per_shard: Vec<RunReport>,
    /// Busiest steady-window resource per tree ("master cpu", …).
    pub per_shard_bottleneck: Vec<String>,
    pub sim_events: u64,
}

impl ShardedReport {
    /// Label of the most-loaded tree's busiest resource, prefixed with its
    /// shard index ("s2: master cpu") — the cluster-wide bottleneck name.
    pub fn busiest_shard_label(&self) -> String {
        let mut best: Option<(usize, f64)> = None;
        for (k, r) in self.per_shard.iter().enumerate() {
            let u = r.master_utilization;
            if best.is_none_or(|(_, b)| u > b) {
                best = Some((k, u));
            }
        }
        match best {
            Some((k, _)) => format!("s{k}: {}", self.per_shard_bottleneck[k]),
            None => "-".to_string(),
        }
    }
}

/// Every observability artifact of one sharded run, detached from the
/// (dropped) world: the scatter-gather front's recorder, one recorder per
/// tree, the per-tree time-series stores, and the fleet telemetry rollup.
pub struct FleetObsBundle {
    /// The front's recorder: scatter-gather flows/spans, per-leg latency
    /// sketches, slowest-shard counters, and the front pool metrics.
    pub front: Obs,
    /// Per-tree recorders in shard order (registry + trace events; their
    /// time-series stores are detached into [`Self::tsdbs`]).
    pub trees: Vec<Obs>,
    /// Per-tree time-series stores `(shard, store)` — per-shard series.
    pub tsdbs: Vec<(u32, Tsdb)>,
    /// The front recorder's own store (scatter-tax series), when attached.
    pub front_tsdb: Option<Tsdb>,
    /// Per-shard telemetry bundles (waterfalls + SLO engines) rolled into
    /// the fleet view; empty when telemetry was off.
    pub telemetry: FleetTelemetry,
}

impl FleetObsBundle {
    /// The fleet-wide rollup store: every per-shard store merged with the
    /// front's. Colliding `(component, instance, metric)` tracks fold —
    /// sketch cells merge, value cells pool their sums — so each track
    /// reads as the fleet aggregate of that metric per interval.
    pub fn fleet_tsdb(&self) -> Option<Tsdb> {
        let mut acc: Option<Tsdb> = None;
        for db in self
            .tsdbs
            .iter()
            .map(|(_, db)| db)
            .chain(self.front_tsdb.iter())
        {
            match acc.as_mut() {
                Some(a) => a.merge(db),
                None => acc = Some(db.clone()),
            }
        }
        acc
    }

    /// Shard `k`'s detached time-series store, if any.
    pub fn shard_tsdb(&self, k: u32) -> Option<&Tsdb> {
        self.tsdbs
            .iter()
            .find_map(|(s, db)| (*s == k).then_some(db))
    }
}

/// Execute one sharded run for `cfg` and return its report.
pub fn run_sharded_cluster(cfg: ShardedConfig) -> ShardedReport {
    let root = Rng::new(cfg.base.seed);
    let mut load_rng = root.derive("load");
    let (template, counters) = build_template(cfg.base.data_size, &mut load_rng);
    run_sharded_with_template(&cfg, &template, counters)
}

/// Like [`run_sharded_cluster`], but forking every tree off a pre-built
/// template database (sweeps load the template once per data size).
pub fn run_sharded_with_template(
    cfg: &ShardedConfig,
    template: &Engine,
    counters: DataCounters,
) -> ShardedReport {
    let mut sim: ShardedSim = Sim::new();
    let mut world = ShardedWorld::new(cfg, template, counters);
    world.schedule_timeline(&mut sim);
    sim.run(&mut world);
    let events = sim.events_executed();
    world.report(events)
}

/// Like [`run_sharded_cluster`], but with observability forced on: returns
/// the report plus the detached [`FleetObsBundle`] (recorders + per-shard
/// time-series stores).
pub fn run_sharded_observed(mut cfg: ShardedConfig) -> (ShardedReport, FleetObsBundle) {
    cfg.base.obs.enabled = true;
    run_sharded_collected(cfg)
}

/// Like [`run_sharded_observed`], but with telemetry enabled on every tree
/// too: each tree runs its own waterfall + shard-stamped SLO engine, rolled
/// into the bundle's [`FleetTelemetry`].
pub fn run_sharded_telemetry(mut cfg: ShardedConfig) -> (ShardedReport, FleetObsBundle) {
    cfg.base.obs.enabled = true;
    cfg.base.telemetry.enabled = true;
    run_sharded_collected(cfg)
}

fn run_sharded_collected(cfg: ShardedConfig) -> (ShardedReport, FleetObsBundle) {
    let root = Rng::new(cfg.base.seed);
    let mut load_rng = root.derive("load");
    let (template, counters) = build_template(cfg.base.data_size, &mut load_rng);
    let mut sim: ShardedSim = Sim::new();
    let mut world = ShardedWorld::new(&cfg, &template, counters);
    world.schedule_timeline(&mut sim);
    sim.run(&mut world);
    let events = sim.events_executed();
    let report = world.report(events);
    let bundle = world.take_fleet_obs();
    (report, bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::run_cluster;
    use amdb_cloudstone::{DataSize, WorkloadConfig};

    fn quick_cfg(users: u32, slaves: usize, seed: u64) -> ClusterConfig {
        ClusterConfig::builder()
            .slaves(slaves)
            .workload(WorkloadConfig::quick(users))
            .data_size(DataSize { scale: 30 })
            .seed(seed)
            .build()
    }

    /// The headline identity: one shard replays the standalone cluster's
    /// event sequence bit-for-bit — same ops, same routing, same latencies,
    /// same heartbeat-measured replication delays.
    #[test]
    fn one_shard_is_bit_identical_to_the_standalone_cluster() {
        let base = quick_cfg(40, 2, 7);
        let solo = run_cluster(base.clone());
        let sharded = run_sharded_cluster(ShardedConfig::new(1, base));
        assert_eq!(sharded.steady_ops, solo.steady_ops);
        assert_eq!(sharded.steady_reads, solo.steady_reads);
        assert_eq!(sharded.steady_writes, solo.steady_writes);
        assert_eq!(sharded.steady_slave_reads, solo.steady_slave_reads);
        assert_eq!(
            sharded.throughput_ops_s.to_bits(),
            solo.throughput_ops_s.to_bits()
        );
        assert_eq!(
            format!("{:?}", sharded.latency_ms),
            format!("{:?}", solo.latency_ms)
        );
        let tree = &sharded.per_shard[0];
        assert_eq!(
            format!("{:?}", tree.delays),
            format!("{:?}", solo.delays),
            "replication-delay measurements must match"
        );
        assert_eq!(tree.reads_per_slave, solo.reads_per_slave);
        assert_eq!(sharded.scatter_reads, 0, "one shard never scatters");
        assert_eq!(sharded.pool_stats, solo.pool_stats);
    }

    /// With no cross-shard reads every op goes to exactly one tree, and the
    /// shard map spreads the keyspace so every tree serves traffic.
    #[test]
    fn zero_cross_fraction_routes_single_shard_and_spreads_load() {
        let base = quick_cfg(16, 1, 11);
        let r = run_sharded_cluster(ShardedConfig::new(2, base));
        assert_eq!(r.scatter_reads, 0);
        assert_eq!(r.scatter_legs, 0);
        assert_eq!(r.per_shard.len(), 2);
        for (k, tree) in r.per_shard.iter().enumerate() {
            let reads: u64 = tree.reads_per_slave.iter().sum();
            assert!(reads > 0, "shard {k} served no slave reads");
        }
        assert!(r.steady_ops > 0);
    }

    /// Satellite fix: a scattered read whose legs are *all* dropped by the
    /// consistency filter must re-run as one master-routed leg and still
    /// complete — never finish with zero legs. Drives `op_done` directly
    /// with a gather one over-bound leg away from completion.
    #[test]
    fn all_filtered_scatter_falls_back_to_master_leg() {
        let base = quick_cfg(8, 1, 17);
        let cfg = ShardedConfig::new(2, base).cross_shard_read_fraction(1.0);
        let root = Rng::new(cfg.base.seed);
        let mut load_rng = root.derive("load");
        let (template, counters) = build_template(cfg.base.data_size, &mut load_rng);
        let mut sim: ShardedSim = Sim::new();
        let mut world = ShardedWorld::new(&cfg, &template, counters);
        // One scattered read in flight, bound 1 ms; shard 0's leg already
        // arrived 50 ms stale (filtered), shard 1's is about to.
        let op = world.front.gen.generate_read();
        // The completion path releases a pool slot; hold one for the
        // synthetic op like dispatch_front would have.
        assert!(matches!(
            world.front.pool.acquire(sim.now()),
            Acquire::Ready
        ));
        let mut g = Gather::new(2, ConsistencyPolicy::BoundedStaleness { max_ms: 1.0 });
        g.offer(0, 50.0, Vec::new());
        world.front.inflight.insert(
            99,
            InFlight {
                user: 0,
                class: OpClass::Read,
                issued: sim.now(),
                pending: 1,
                all_slave: true,
                gather: Some(g),
                op: Some(op),
            },
        );
        world.op_done(
            &mut sim,
            1,
            InjectedDone {
                id: 99,
                // `None` keeps the balancer's outstanding counts honest —
                // this synthetic leg was never routed through the proxy.
                routed_slave: None,
                staleness_ms: 40.0,
            },
        );
        assert_eq!(world.front.stats.scatter_master_fallbacks, 1);
        assert_eq!(world.front.stats.scatter_filtered_legs, 2);
        let fl = world.front.inflight.get(&99).expect("still in flight");
        assert_eq!(fl.pending, 1, "one fallback leg outstanding");
        assert!(fl.gather.is_none(), "fallback completes as a plain read");
        assert!(!fl.all_slave, "fallback leg is master-served");
        // Drain: the fallback leg must complete the op (the user loop it
        // hands off to then runs the rest of the workload).
        sim.run(&mut world);
        assert!(
            !world.front.inflight.contains_key(&99),
            "fallback leg completed the read"
        );
        assert_eq!(world.front.stats.scatter_master_fallbacks, 1);
    }

    /// Scatter-gather fans a read out to every tree under one id, and the
    /// whole sharded world is deterministic run-to-run.
    #[test]
    fn scatter_gather_fans_out_and_is_deterministic() {
        let mk = || ShardedConfig::new(3, quick_cfg(12, 1, 13)).cross_shard_read_fraction(0.3);
        let a = run_sharded_cluster(mk());
        let b = run_sharded_cluster(mk());
        assert!(a.scatter_reads > 0, "30% of reads should scatter");
        assert_eq!(a.scatter_legs, a.scatter_reads * 3);
        assert!(a.scatter_reads_steady <= a.scatter_reads);
        assert_eq!(a.steady_ops, b.steady_ops);
        assert_eq!(a.scatter_reads, b.scatter_reads);
        assert_eq!(a.throughput_ops_s.to_bits(), b.throughput_ops_s.to_bits());
        assert_eq!(format!("{:?}", a.latency_ms), format!("{:?}", b.latency_ms));
    }
}
