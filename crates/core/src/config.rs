//! Cluster configuration and builder.

use amdb_cloud::{CpuModel, ProviderConfig};
use amdb_cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb_consistency::ConsistencyConfig;
use amdb_net::{NetConfig, Region, Zone};
use amdb_obs::ObsConfig;
use amdb_repl::{BackendKind, FaultTimeline, LogStoreConfig, ReplMode};
use amdb_sim::SimDuration;
use amdb_sql::binlog::BinlogFormat;
use amdb_sql::cost::CostModel;
use amdb_telemetry::TelemetryConfig;

/// Geographic placement of the slaves relative to the master, matching the
/// paper's three configurations (§III-A): *"same zone, all slaves are
/// deployed in the same Availability Zone ... of the master; different
/// zones, the slaves are in the same Region ... but in different
/// Availability Zones; different regions, all slaves are geographically
/// distributed in a different Region"*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    SameZone,
    DifferentZone,
    /// All slaves in the given foreign region (the paper shows eu-west).
    DifferentRegion(Region),
}

impl Placement {
    /// The figures' standard three configurations.
    pub const PAPER_SET: [Placement; 3] = [
        Placement::SameZone,
        Placement::DifferentZone,
        Placement::DifferentRegion(Region::EuWest1),
    ];

    /// Zone slaves are launched in, given the master's zone.
    pub fn slave_zone(self, master: Zone) -> Zone {
        match self {
            Placement::SameZone => master,
            Placement::DifferentZone => Zone::new(master.region, next_letter(master.letter)),
            Placement::DifferentRegion(r) => Zone::new(r, 'a'),
        }
    }

    /// Label used in reports ("same zone (us-west-1a)").
    pub fn label(self, master: Zone) -> String {
        match self {
            Placement::SameZone => format!("same zone ({})", master),
            Placement::DifferentZone => {
                format!("different zone ({})", self.slave_zone(master))
            }
            Placement::DifferentRegion(_) => {
                format!("different region ({})", self.slave_zone(master))
            }
        }
    }
}

fn next_letter(c: char) -> char {
    if c == 'a' {
        'b'
    } else {
        'a'
    }
}

/// Which application workload drives the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// The paper's modified Cloudstone (Web 2.0 events calendar); the
    /// read/write ratio comes from `ClusterConfig::mix`.
    Cloudstone,
    /// The TPC-W-flavoured read-mostly bookstore (Web 1.0 contrast,
    /// 95/5 fixed mix). `ClusterConfig::mix` is ignored.
    Web10,
}

/// Which balancing policy the proxy uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerKind {
    RoundRobin,
    Random,
    LeastOutstanding,
    /// The paper's suggested "smart load balancer ... based on estimated
    /// processing time".
    LatencyAware,
}

/// A planned slave failure (fault injection), for availability experiments.
/// The paper notes that replication architectures exist precisely "to enable
/// automatic failover management and ensure high availability" (§I); this
/// exercises that path.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Which slave fails (index into the initial slave list).
    pub slave: usize,
    /// When it fails (absolute simulated time).
    pub fail_at: SimDuration,
    /// If set, the slave is replaced after this much downtime: a fresh VM is
    /// launched, seeded from a master snapshot, and re-enters rotation.
    pub recover_after: Option<SimDuration>,
}

/// A planned master failure with automatic failover: the middleware detects
/// the dead master, promotes the most up-to-date slave, resynchronizes the
/// remaining slaves from the new master, and resumes writes. Writes the old
/// master committed but never replicated are lost — §II's asynchronous
/// data-loss window, which the run report counts.
#[derive(Debug, Clone)]
pub struct MasterFaultPlan {
    /// When the master fails (absolute simulated time).
    pub fail_at: SimDuration,
    /// How long detection takes before promotion starts (health-check
    /// timeouts; writes park during this window).
    pub detection_delay: SimDuration,
}

/// Per-log-replica fault injection for the shared-log backend: each of the
/// log service's replicas gets an independent, seeded schedule of
/// unreachability windows (crash and network partition look identical to
/// the appender: no ack) and slow-disk windows (stretched append service
/// time). Appends ride the backend's retry/timeout/backoff discipline
/// through the windows; durability needs only the quorum, so a single
/// faulted replica costs latency, not writes.
#[derive(Debug, Clone)]
pub struct LogFaultPlan {
    /// Mean time between unreachability windows, per replica.
    pub mtbf: SimDuration,
    /// Mean unreachability window length (heal time).
    pub mttr: SimDuration,
    /// Mean time between slow-disk windows (`None` = no slow-disk faults).
    pub slow_mtbf: Option<SimDuration>,
    /// Mean slow-disk window length.
    pub slow_mttr: SimDuration,
    /// Append service-time multiplier inside a slow-disk window.
    pub slow_factor: f64,
}

impl Default for LogFaultPlan {
    fn default() -> Self {
        Self {
            mtbf: SimDuration::from_secs(60),
            mttr: SimDuration::from_secs(2),
            slow_mtbf: None,
            slow_mttr: SimDuration::from_secs(5),
            slow_factor: 8.0,
        }
    }
}

impl LogFaultPlan {
    /// Draw one replica's fault schedule over `[0, horizon_us)`: alternating
    /// exponential up/down intervals for unreachability, and an independent
    /// slow-disk schedule when `slow_mtbf` is set. Pure function of the RNG
    /// stream — the cluster derives one stream per log replica, so schedules
    /// are independent across replicas and identical across reruns.
    pub fn timeline(&self, rng: &mut amdb_sim::Rng, horizon_us: u64) -> FaultTimeline {
        let down = draw_windows(rng, self.mtbf, self.mttr, horizon_us);
        let slow = match self.slow_mtbf {
            None => Vec::new(),
            Some(mtbf) => draw_windows(rng, mtbf, self.slow_mttr, horizon_us)
                .into_iter()
                .map(|(s, e)| (s, e, self.slow_factor))
                .collect(),
        };
        FaultTimeline::from_windows(down, slow)
    }
}

/// Alternating exp(up)/exp(down) windows until `horizon_us`. Windows are
/// sorted and disjoint by construction (time only moves forward).
fn draw_windows(
    rng: &mut amdb_sim::Rng,
    mtbf: SimDuration,
    mttr: SimDuration,
    horizon_us: u64,
) -> Vec<(u64, u64)> {
    let mut windows = Vec::new();
    let mut t = 0u64;
    loop {
        let up_us = (rng.exp(mtbf.as_secs_f64()) * 1e6).max(1.0) as u64;
        t = t.saturating_add(up_us);
        if t >= horizon_us {
            break;
        }
        let len_us = (rng.exp(mttr.as_secs_f64()) * 1e6).max(1.0) as u64;
        let end = t.saturating_add(len_us);
        windows.push((t, end));
        t = end;
    }
    windows
}

/// Application-managed autoscaling: monitor replica staleness and launch
/// additional slaves when it violates the SLO. This implements the
/// "application can have the full control in dynamically allocating ...
/// the database tier" promise of §I (and the authors' CloudDB AutoAdmin
/// companion work).
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// How often the controller evaluates the staleness SLO.
    pub check_interval: SimDuration,
    /// Scale out when any slave's observed staleness exceeds this (ms).
    pub staleness_slo_ms: f64,
    /// Hard cap on the slave count.
    pub max_slaves: usize,
    /// Time for a new replica's initial data sync before it serves reads.
    pub sync_duration: SimDuration,
    /// Minimum spacing between scale-out actions (cooldown).
    pub cooldown: SimDuration,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            check_interval: SimDuration::from_secs(10),
            staleness_slo_ms: 5_000.0,
            max_slaves: 8,
            sync_duration: SimDuration::from_secs(60),
            cooldown: SimDuration::from_secs(120),
        }
    }
}

/// Full description of one benchmark run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub n_slaves: usize,
    pub placement: Placement,
    pub master_zone: Zone,
    pub mix: MixConfig,
    pub workload_kind: WorkloadKind,
    pub data_size: DataSize,
    pub workload: WorkloadConfig,
    pub mode: ReplMode,
    pub format: BinlogFormat,
    /// Replication backend: binlog fan-out (statement/row) or the
    /// Taurus-style shared log. `Statement` (the default) is the paper's
    /// pipeline, bit-identical to pre-backend builds; `Row` is fan-out with
    /// `format = Row`; `SharedLog` routes commits through a quorum-
    /// replicated log service and gates delivery on durability.
    pub backend: BackendKind,
    /// Shape of the shared log service (replica count, quorum, append
    /// service time, retry policy). Ignored unless `backend == SharedLog`.
    pub log_store: LogStoreConfig,
    /// Per-log-replica fault injection. Ignored unless `backend ==
    /// SharedLog`; `None` runs a healthy log service.
    pub log_faults: Option<LogFaultPlan>,
    /// When set, slaves resynchronized from a snapshot after a master
    /// failover leave the read rotation for this long (the honest rebuild
    /// cost the binlog backends pay; a shared-log reattach skips it).
    /// `None` (the default) keeps the historical instantaneous resync —
    /// and bit-identical behaviour.
    pub failover_resync: Option<SimDuration>,
    /// Simulated apply workers per slave (1 = the classic serial SQL
    /// thread, the paper's MySQL setup). With more workers, each slave
    /// drains its relay in writeset-dependency batches planned by
    /// `amdb-apply` and amortizes per-event dispatch + commit across the
    /// batch — in-order commit keeps watermarks sequential. Only the row
    /// binlog format exposes writesets; statement-format events are
    /// dependency barriers, so extra workers are a no-op there.
    pub apply_workers: usize,
    pub balancer: BalancerKind,
    /// Starting cursor for rotating balancers (round-robin and the
    /// tie-break cursors of least-outstanding / latency-aware), taken
    /// modulo the slave count. A sharded front sets each tree's cursor to
    /// its shard id so cold-start picks — and scatter-gather fan-out legs —
    /// do not herd onto the same slave index on every tree. 0 (the
    /// default) is the historical behaviour.
    pub balancer_start: usize,
    /// Where the clients (the emulated-user network endpoint) live.
    /// `None` (the default) places them in the master's zone, the paper's
    /// setup. A sharded front overrides this so every tree measures
    /// client hops from the *front's* zone even when its master is placed
    /// elsewhere.
    pub client_zone: Option<Zone>,
    /// Pool size; defaults to one connection per emulated user.
    pub pool_max_active: usize,
    pub cost: CostModel,
    pub net: NetConfig,
    pub provider: ProviderConfig,
    /// Pin every slave to a specific physical host model (the §IV-A
    /// performance-variation experiment); `None` samples the fleet mix.
    pub pin_slave_host: Option<CpuModel>,
    /// Pin the master's host too (keeps master capacity constant across a
    /// sweep so throughput differences are attributable to the swept knob).
    pub pin_master_host: Option<CpuModel>,
    /// NTP discipline interval; `None` disables periodic sync (Fig. 4's
    /// "sync once at beginning" arm).
    pub ntp_interval: Option<SimDuration>,
    /// Heartbeat insertion interval (paper: periodic; we default 1 s).
    pub heartbeat_interval: SimDuration,
    /// Planned slave failures.
    pub faults: Vec<FaultPlan>,
    /// Planned master failure with automatic failover, if any.
    pub master_fault: Option<MasterFaultPlan>,
    /// Staleness-driven autoscaling, if enabled.
    pub autoscale: Option<AutoscaleConfig>,
    /// Observability: tracing/metrics collection (off by default — the
    /// disabled path costs a single branch per probe).
    pub obs: ObsConfig,
    /// Telemetry: causal write tracing, staleness waterfall, SLO/alert
    /// engine (off by default). Enabling it forces `obs` on — telemetry
    /// records through the same recorder.
    pub telemetry: TelemetryConfig,
    /// Application-managed read-consistency policy. `None` (the default)
    /// routes every read through the plain proxy; `Some(Eventual)` is
    /// byte-identical to `None` (the policy layer only does bookkeeping).
    pub consistency: Option<ConsistencyConfig>,
    /// Per-engine statement→plan cache (on by default). The cache is
    /// behaviour-transparent — results are byte-identical either way — so
    /// this knob exists for A/B timing (`BENCH_hotpath.json`) and for the
    /// CI cross-check that proves the transparency claim.
    pub plan_cache: bool,
    pub seed: u64,
}

impl ClusterConfig {
    /// Start building a config with paper defaults.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }
}

/// Builder for [`ClusterConfig`] with the paper's defaults.
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    cfg: ClusterConfig,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        let master_zone = Zone::new(Region::UsWest1, 'a');
        Self {
            cfg: ClusterConfig {
                n_slaves: 1,
                placement: Placement::SameZone,
                master_zone,
                mix: MixConfig::RW_50_50,
                workload_kind: WorkloadKind::Cloudstone,
                data_size: DataSize::SMALL,
                workload: WorkloadConfig::paper(50),
                mode: ReplMode::Async,
                format: BinlogFormat::Statement,
                backend: BackendKind::Statement,
                log_store: LogStoreConfig::default(),
                log_faults: None,
                failover_resync: None,
                apply_workers: 1,
                balancer: BalancerKind::RoundRobin,
                balancer_start: 0,
                client_zone: None,
                pool_max_active: 0, // 0 = one per user
                cost: CostModel::default(),
                net: NetConfig::default(),
                provider: ProviderConfig::default(),
                pin_slave_host: Some(CpuModel::XeonE5430),
                pin_master_host: Some(CpuModel::XeonE5430),
                ntp_interval: Some(SimDuration::from_secs(1)),
                heartbeat_interval: SimDuration::from_secs(1),
                faults: Vec::new(),
                master_fault: None,
                autoscale: None,
                obs: ObsConfig::default(),
                telemetry: TelemetryConfig::default(),
                consistency: None,
                plan_cache: true,
                seed: 42,
            },
        }
    }
}

impl ClusterBuilder {
    /// Number of slave replicas.
    pub fn slaves(mut self, n: usize) -> Self {
        self.cfg.n_slaves = n;
        self
    }

    /// Geographic placement of the slaves.
    pub fn placement(mut self, p: Placement) -> Self {
        self.cfg.placement = p;
        self
    }

    /// Read/write mix.
    pub fn mix(mut self, m: MixConfig) -> Self {
        self.cfg.mix = m;
        self
    }

    /// Application workload class (Cloudstone Web 2.0 vs Web 1.0 bookstore).
    pub fn workload_kind(mut self, k: WorkloadKind) -> Self {
        self.cfg.workload_kind = k;
        self
    }

    /// Initial data size.
    pub fn data_size(mut self, s: DataSize) -> Self {
        self.cfg.data_size = s;
        self
    }

    /// Workload (users, think time, phases).
    pub fn workload(mut self, w: WorkloadConfig) -> Self {
        self.cfg.workload = w;
        self
    }

    /// Replication mode (async is the paper's setup).
    pub fn mode(mut self, m: ReplMode) -> Self {
        self.cfg.mode = m;
        self
    }

    /// Binlog format (statement is the paper's setup).
    pub fn format(mut self, f: BinlogFormat) -> Self {
        self.cfg.format = f;
        self
    }

    /// Replication backend. `SharedLog` also forces the row binlog format
    /// (log records are physical); `Row` forces `format = Row`; `Statement`
    /// leaves the format untouched so existing configs stay bit-identical.
    pub fn backend(mut self, b: BackendKind) -> Self {
        self.cfg.backend = b;
        match b {
            BackendKind::Statement => {}
            BackendKind::Row | BackendKind::SharedLog => {
                self.cfg.format = BinlogFormat::Row;
            }
        }
        self
    }

    /// Shared-log service shape (replicas, quorum, retry policy).
    pub fn log_store(mut self, c: LogStoreConfig) -> Self {
        self.cfg.log_store = c;
        self
    }

    /// Per-log-replica fault injection for the shared-log backend.
    pub fn log_faults(mut self, p: LogFaultPlan) -> Self {
        self.cfg.log_faults = Some(p);
        self
    }

    /// Charge snapshot-resynced slaves this much out-of-rotation time
    /// after a master failover (binlog backends' rebuild cost).
    pub fn failover_resync(mut self, d: SimDuration) -> Self {
        self.cfg.failover_resync = Some(d);
        self
    }

    /// Simulated apply workers per slave (1 = serial SQL thread). Pair with
    /// [`Self::format`]`(BinlogFormat::Row)` — statement events carry no
    /// writesets, so extra workers change nothing under statement format.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn apply_workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "apply requires at least one worker");
        self.cfg.apply_workers = n;
        self
    }

    /// Proxy balancing policy.
    pub fn balancer(mut self, b: BalancerKind) -> Self {
        self.cfg.balancer = b;
        self
    }

    /// Starting cursor for rotating balancers (modulo the slave count).
    pub fn balancer_start(mut self, cursor: usize) -> Self {
        self.cfg.balancer_start = cursor;
        self
    }

    /// Place the clients in a specific zone (default: the master's zone).
    pub fn client_zone(mut self, z: Zone) -> Self {
        self.cfg.client_zone = Some(z);
        self
    }

    /// Connection-pool size (0 = one per user).
    pub fn pool_max_active(mut self, n: usize) -> Self {
        self.cfg.pool_max_active = n;
        self
    }

    /// Cost-model override.
    pub fn cost(mut self, c: CostModel) -> Self {
        self.cfg.cost = c;
        self
    }

    /// Network-latency override.
    pub fn net(mut self, n: NetConfig) -> Self {
        self.cfg.net = n;
        self
    }

    /// Provider override (perf variation, clock parameters).
    pub fn provider(mut self, p: ProviderConfig) -> Self {
        self.cfg.provider = p;
        self
    }

    /// Pin slaves to a host model (None = sample the fleet; the default
    /// pins to the E5430 so sweeps are noise-free).
    pub fn pin_slave_host(mut self, m: Option<CpuModel>) -> Self {
        self.cfg.pin_slave_host = m;
        self
    }

    /// Pin the master's host model.
    pub fn pin_master_host(mut self, m: Option<CpuModel>) -> Self {
        self.cfg.pin_master_host = m;
        self
    }

    /// NTP sync interval (None = sync only at launch).
    pub fn ntp_interval(mut self, i: Option<SimDuration>) -> Self {
        self.cfg.ntp_interval = i;
        self
    }

    /// Heartbeat interval.
    pub fn heartbeat_interval(mut self, i: SimDuration) -> Self {
        self.cfg.heartbeat_interval = i;
        self
    }

    /// Inject a planned slave failure.
    pub fn fault(mut self, f: FaultPlan) -> Self {
        self.cfg.faults.push(f);
        self
    }

    /// Inject a master failure with automatic failover.
    pub fn master_fault(mut self, f: MasterFaultPlan) -> Self {
        self.cfg.master_fault = Some(f);
        self
    }

    /// Enable staleness-driven autoscaling.
    pub fn autoscale(mut self, a: AutoscaleConfig) -> Self {
        self.cfg.autoscale = Some(a);
        self
    }

    /// Observability configuration (tracing + metrics).
    pub fn observability(mut self, o: ObsConfig) -> Self {
        self.cfg.obs = o;
        self
    }

    /// Shorthand: switch trace/metric collection on or off with the
    /// default sampling period.
    pub fn observe(mut self, enabled: bool) -> Self {
        self.cfg.obs.enabled = enabled;
        self
    }

    /// Telemetry configuration (causal tracing + SLO/alert engine).
    pub fn telemetry(mut self, t: TelemetryConfig) -> Self {
        self.cfg.telemetry = t;
        self
    }

    /// Shorthand: switch telemetry on or off with the paper rule set.
    /// Enabling telemetry implies observability.
    pub fn telemetry_on(mut self, enabled: bool) -> Self {
        self.cfg.telemetry.enabled = enabled;
        self
    }

    /// Read-consistency policy for the routing tier (None = plain proxy).
    pub fn consistency(mut self, c: ConsistencyConfig) -> Self {
        self.cfg.consistency = Some(c);
        self
    }

    /// Enable or disable the per-engine statement→plan cache.
    pub fn plan_cache(mut self, enabled: bool) -> Self {
        self.cfg.plan_cache = enabled;
        self
    }

    /// Master experiment seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }

    /// Finish building.
    pub fn build(self) -> ClusterConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_zones() {
        let m = Zone::new(Region::UsWest1, 'a');
        assert_eq!(Placement::SameZone.slave_zone(m), m);
        let dz = Placement::DifferentZone.slave_zone(m);
        assert_eq!(dz.region, m.region);
        assert_ne!(dz.letter, m.letter);
        let dr = Placement::DifferentRegion(Region::EuWest1).slave_zone(m);
        assert_eq!(dr.region, Region::EuWest1);
    }

    #[test]
    fn builder_defaults_match_paper() {
        let c = ClusterConfig::builder().build();
        assert_eq!(c.mode, ReplMode::Async);
        assert_eq!(c.format, BinlogFormat::Statement);
        assert_eq!(
            c.apply_workers, 1,
            "serial apply thread is the paper's setup"
        );
        assert_eq!(c.master_zone.name(), "us-west-1a");
        assert_eq!(c.heartbeat_interval, SimDuration::from_secs(1));
        assert!(c.ntp_interval.is_some());
    }

    #[test]
    fn builder_setters_apply() {
        let c = ClusterConfig::builder()
            .slaves(7)
            .placement(Placement::DifferentRegion(Region::ApNortheast1))
            .mode(ReplMode::Sync)
            .balancer(BalancerKind::LatencyAware)
            .seed(7)
            .build();
        assert_eq!(c.n_slaves, 7);
        assert_eq!(c.mode, ReplMode::Sync);
        assert_eq!(c.balancer, BalancerKind::LatencyAware);
        assert_eq!(
            c.placement.slave_zone(c.master_zone).region,
            Region::ApNortheast1
        );
    }

    #[test]
    fn labels_are_descriptive() {
        let m = Zone::new(Region::UsWest1, 'a');
        assert!(Placement::SameZone.label(m).contains("us-west-1a"));
        assert!(Placement::DifferentZone.label(m).contains("us-west-1b"));
        assert!(Placement::DifferentRegion(Region::EuWest1)
            .label(m)
            .contains("eu-west-1a"));
    }
}
