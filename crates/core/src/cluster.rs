//! The timed cluster simulation: users → pool → proxy → replicas, with
//! binlog shipping, apply threads, heartbeats, and NTP, all over the
//! discrete-event kernel.
//!
//! # Event flow
//!
//! Each emulated user loops: think → generate operation → acquire pooled
//! connection → proxy routes (write→master, read→slave) → request travels
//! the network → the target VM executes the operation's statements when its
//! FIFO CPU reaches the job → response travels back → stats → next think.
//!
//! Master writes append binlog events; at the write's *commit* (job
//! completion) new events ship to every slave over the network (FIFO per
//! slave). A slave's relay queue feeds one apply job per event into the same
//! FIFO CPU that serves reads — the shared-resource contention that produces
//! the paper's replication-delay surge.
//!
//! Statements execute *functionally* at CPU-service start: replica tables
//! genuinely diverge until applies run, so staleness is measured from real
//! heartbeat rows, not a model. (Timestamps are therefore stamped at service
//! start rather than commit — a bounded error of one service time, identical
//! in the idle baseline and thus cancelled by the paper's relative-delay
//! metric.)

use crate::config::{BalancerKind, ClusterConfig};
use crate::report::{ConsistencyReport, DelayReport, RunReport, SharedLogReport};
use amdb_clock::WALL_EPOCH_MICROS;
use amdb_cloud::{Instance, InstanceType, Provider};
use amdb_cloudstone::{build_template, OpClass, OpGenerator, Operation, Phases, UserSessions};
use amdb_consistency::{
    ConsistencyConfig, ConsistencyPolicy, ReadDecision, SeqSource, SessionToken, WatermarkTable,
};
use amdb_metrics::{trimmed_mean, OnlineStats, Summary};
use amdb_net::{NetModel, Proximity, Zone};
use amdb_obs::{BottleneckReport, Component, FlowPhase, MetricId, Obs, ResourceUsage};
use amdb_pool::{Acquire, PoolConfig, SimPool, Ticket};
use amdb_proxy::{
    Balancer, LatencyAware, LeastOutstanding, OpClass as ProxyClass, Proxy, RandomPick, RoundRobin,
    Route,
};
use amdb_repl::{
    ack_time_us, collect_samples, AckResult, BackendKind, FaultTimeline, HeartbeatPlugin, LogStore,
    RelayQueue, ReplMode,
};
use amdb_sim::{Event, Rng, Sim, SimDuration, SimTime};
use amdb_sql::binlog::{BinlogEvent, Lsn};
use amdb_sql::cost::CostModel;
use amdb_sql::{Engine, ForkRole, Session};
use amdb_telemetry::{AlertKind, SloSample, Telemetry};
use std::collections::{HashMap, VecDeque};

pub type S = Sim<Cluster, ClusterEvent>;

/// Boxed fallback event for cold control-plane scheduling (startup wiring,
/// failover choreography, monitor ticks): anything off the per-operation
/// hot path stays an ergonomic closure.
pub type ClusterFn = Box<dyn FnOnce(&mut Cluster, &mut dyn ClusterHost)>;

/// A completed injected operation, reported back to the sharded front
/// router (see [`ClusterHost::notify_front`]).
#[derive(Debug, Clone, Copy)]
pub struct InjectedDone {
    /// The front's operation id (one id per logical op; scatter-gather
    /// reuses it across every fan-out leg).
    pub id: u64,
    /// Slave index that served the op, `None` for the master.
    pub routed_slave: Option<usize>,
    /// Heartbeat-observed staleness of the serving replica at response time
    /// (ms); 0 for master-served legs. The front's gather judges scatter
    /// legs against its consistency policy with exactly the signal an
    /// application-managed router would have.
    pub staleness_ms: f64,
}

/// The scheduling surface a [`Cluster`] runs against.
///
/// A standalone cluster runs directly on its own kernel ([`S`] implements
/// this by delegation). A sharded world runs N independent clusters on one
/// shared kernel — each tree sees a host that wraps its events with its
/// shard id, so every tree shares one clock and one global event order
/// (same-instant ties stay FIFO across shards, which keeps sharded runs
/// deterministic and `shards = 1` byte-identical to the standalone path).
/// Cluster code never touches the kernel directly; everything schedules
/// through this trait.
pub trait ClusterHost {
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// Schedule a typed cluster event at an absolute instant.
    fn schedule_event_at(&mut self, at: SimTime, ev: ClusterEvent);
    /// Deliver a completed injected operation back to the front router at
    /// `at`. Only a sharded host routes these; a standalone cluster never
    /// injects, so its kernel implementation is unreachable.
    fn notify_front(&mut self, at: SimTime, done: InjectedDone);

    /// Schedule a typed cluster event after a delay.
    fn schedule_event_in(&mut self, d: SimDuration, ev: ClusterEvent) {
        let at = self.now() + d;
        self.schedule_event_at(at, ev);
    }
    /// Schedule a boxed closure event at an absolute instant (cold paths).
    fn schedule_at(&mut self, at: SimTime, f: ClusterFn) {
        self.schedule_event_at(at, ClusterEvent::Closure(f));
    }
    /// Schedule a boxed closure event after a delay (cold paths).
    fn schedule_in(&mut self, d: SimDuration, f: ClusterFn) {
        let at = self.now() + d;
        self.schedule_event_at(at, ClusterEvent::Closure(f));
    }
}

impl ClusterHost for S {
    fn now(&self) -> SimTime {
        Sim::now(self)
    }

    fn schedule_event_at(&mut self, at: SimTime, ev: ClusterEvent) {
        Sim::schedule_event_at(self, at, ev);
    }

    fn notify_front(&mut self, _at: SimTime, _done: InjectedDone) {
        unreachable!("injected operations only exist under a sharded host");
    }
}

/// Typed agenda events for the simulation's hot paths.
///
/// The per-operation lifecycle (dispatch → service → respond → think) and
/// the replication pipeline (ship → deliver → apply) schedule several
/// events per simulated operation — millions per sweep. Representing them
/// as enum variants stores their few words of payload inline in the
/// agenda's slab instead of boxing a fresh closure per event; rare events
/// ride the [`ClusterEvent::Closure`] escape hatch unchanged.
pub enum ClusterEvent {
    /// A job arrives at a node's serial queue after the client→node hop.
    EnqueueJob { node: usize, job: Job },
    /// CPU service for a client operation finished on `node_idx`.
    ClientOpDone {
        node_idx: usize,
        gen: u64,
        user: u32,
        class: OpClass,
        issued: SimTime,
        routed_slave: Option<usize>,
        trace: u64,
    },
    /// CPU service for a slave's apply batch finished.
    ApplyDone {
        node_idx: usize,
        gen: u64,
        slave: usize,
        first_lsn: Lsn,
        last_lsn: Lsn,
    },
    /// CPU service for a master housekeeping job (heartbeat) finished.
    MasterJobDone { node_idx: usize, gen: u64 },
    /// The response for an operation reaches the client.
    Respond {
        user: u32,
        class: OpClass,
        issued: SimTime,
        routed_slave: Option<usize>,
    },
    /// A user's think time elapsed; generate the next operation.
    UserNextOp { user: u32 },
    /// A shipped binlog batch reaches a slave's relay.
    Deliver {
        slave: usize,
        epoch: u64,
        events: Vec<BinlogEvent>,
    },
    /// A consistency-layer read retries after its wait interval.
    DispatchWithWait {
        user: u32,
        op: Operation,
        issued: SimTime,
        waited_ms: f64,
    },
    /// CPU service for a front-injected operation finished on `node_idx`
    /// (sharded worlds only).
    InjectedOpDone {
        node_idx: usize,
        gen: u64,
        id: u64,
        class: OpClass,
        routed_slave: Option<usize>,
        trace: u64,
    },
    /// A shared-log replica's append acknowledgement lands at the master
    /// (shared-log backend only; instants come from [`ack_time_us`]).
    LogAck { replica: usize, upto: Lsn },
    /// Cold-path escape hatch: a boxed closure event.
    Closure(ClusterFn),
}

impl Event<Cluster> for ClusterEvent {
    fn fire(self, w: &mut Cluster, sim: &mut S) {
        self.fire_on(w, sim);
    }
}

impl ClusterEvent {
    /// Dispatch against any host. The standalone kernel's [`Event`] impl
    /// and the sharded world's per-tree dispatch both land here, so the two
    /// execution paths share one event semantics.
    pub(crate) fn fire_on(self, w: &mut Cluster, sim: &mut dyn ClusterHost) {
        match self {
            ClusterEvent::EnqueueJob { node, job } => w.enqueue_job(sim, node, job),
            ClusterEvent::ClientOpDone {
                node_idx,
                gen,
                user,
                class,
                issued,
                routed_slave,
                trace,
            } => w.client_op_done(sim, node_idx, gen, user, class, issued, routed_slave, trace),
            ClusterEvent::ApplyDone {
                node_idx,
                gen,
                slave,
                first_lsn,
                last_lsn,
            } => w.apply_done(sim, node_idx, gen, slave, first_lsn, last_lsn),
            ClusterEvent::MasterJobDone { node_idx, gen } => w.master_job_done(sim, node_idx, gen),
            ClusterEvent::Respond {
                user,
                class,
                issued,
                routed_slave,
            } => w.respond(sim, user, class, issued, routed_slave),
            ClusterEvent::UserNextOp { user } => w.user_next_op(sim, user),
            ClusterEvent::Deliver {
                slave,
                epoch,
                events,
            } => w.deliver(sim, slave, epoch, events),
            ClusterEvent::DispatchWithWait {
                user,
                op,
                issued,
                waited_ms,
            } => w.dispatch_with_wait(sim, user, op, issued, waited_ms),
            ClusterEvent::InjectedOpDone {
                node_idx,
                gen,
                id,
                class,
                routed_slave,
                trace,
            } => w.injected_op_done(sim, node_idx, gen, id, class, routed_slave, trace),
            ClusterEvent::LogAck { replica, upto } => w.log_ack(sim, replica, upto),
            ClusterEvent::Closure(f) => f(w, sim),
        }
    }
}

/// The active operation generator (the two workload classes).
enum WorkGen {
    Cloudstone(OpGenerator),
    Web10(amdb_cloudstone::Web10Generator),
}

impl WorkGen {
    fn generate(&mut self, mix: amdb_cloudstone::MixConfig) -> Operation {
        match self {
            WorkGen::Cloudstone(g) => g.generate(mix),
            WorkGen::Web10(g) => g.generate(),
        }
    }
}

/// One database VM: instance (CPU/clock/NTP), engine, serial job queue.
struct Node {
    inst: Instance,
    engine: Engine,
    session: Session,
    queue: std::collections::VecDeque<Job>,
    busy: bool,
    /// True when the VM has failed: it serves nothing until replaced.
    failed: bool,
    /// Slot generation: bumped whenever the node occupying this slot is
    /// replaced or swapped (failover), so completion events scheduled
    /// against the old occupant can detect they are stale.
    gen: u64,
}

impl Node {
    fn new(inst: Instance, engine: Engine) -> Self {
        Self {
            inst,
            engine,
            session: Session::new(),
            queue: std::collections::VecDeque::new(),
            busy: false,
            failed: false,
            gen: 0,
        }
    }
}

/// Work items served by a node's FIFO CPU.
pub enum Job {
    ClientOp {
        user: u32,
        op: Operation,
        issued: SimTime,
        /// Slave index the proxy routed a read to (for feedback), if any.
        routed_slave: Option<usize>,
        /// Telemetry trace id for tracked writes (0 = untracked).
        trace: u64,
    },
    /// A front-injected operation (sharded worlds): no tree-local user; the
    /// completion is reported to the front via [`ClusterHost::notify_front`].
    Injected {
        id: u64,
        op: Operation,
        routed_slave: Option<usize>,
        trace: u64,
    },
    /// Apply the next relay-queue event on slave `slave`.
    Apply { slave: usize },
    /// Master heartbeat insert.
    Heartbeat,
}

/// A write waiting for synchronous acknowledgements (Sync mode).
struct SyncWait {
    user: u32,
    issued: SimTime,
    routed_slave: Option<usize>,
    class: OpClass,
    /// The last LSN this write appended; a slave acks once applied past it.
    last_lsn: Lsn,
    acked: Vec<bool>,
    latest_ack: SimTime,
}

/// The application-managed consistency layer: watermark table, per-user
/// session tokens, and the fallback counters. Pure bookkeeping — it
/// schedules no events of its own (wait-for-catchup re-dispatches ride the
/// ordinary dispatch path) and consumes no randomness, so a cluster with
/// `Some(Eventual)` runs byte-identically to one with `None`.
struct ConsistencyLayer {
    cfg: ConsistencyConfig,
    wm: WatermarkTable,
    sessions: UserSessions,
    redirects_master: u64,
    waits: u64,
    wait_ms_total: f64,
    sla_violations: u64,
    sla_violations_steady: u64,
    /// True staleness (vs the master binlog) of every slave-served read,
    /// measured at CPU-service start.
    served_staleness: OnlineStats,
    /// Session token shared by all front-injected operations (sharded
    /// worlds): the front is one logical client of the tree, so its
    /// session guarantees span all injected ops.
    injected: SessionToken,
}

impl ConsistencyLayer {
    fn new(cfg: ConsistencyConfig, n_slaves: usize, start_seq: u64, n_users: u32) -> Self {
        Self {
            cfg,
            wm: WatermarkTable::new(n_slaves, start_seq),
            sessions: UserSessions::new(n_users as usize),
            redirects_master: 0,
            waits: 0,
            wait_ms_total: 0.0,
            sla_violations: 0,
            sla_violations_steady: 0,
            served_staleness: OnlineStats::new(),
            injected: SessionToken::new(),
        }
    }
}

/// Timed state of the shared-log replication backend. `None` unless
/// `cfg.backend == SharedLog` — every hot-path probe is a single `Option`
/// discriminant test and the branch schedules nothing and draws no RNG when
/// absent, so binlog-backend runs stay bit-identical to pre-backend builds.
///
/// The flow (Taurus-style, PAPERS.md arXiv 2412.02792): at each master
/// commit the new binlog events are *published* — appended to a
/// quorum-replicated log service whose per-replica ack instants are computed
/// analytically from precomputed [`FaultTimeline`]s. A batch is *durable*
/// when the quorum-th replica ack lands ([`Cluster::log_ack`]); only then do
/// the events deliver to the slaves' relays (slaves tail the durable
/// prefix), the consistency watermark advance, and the client write ack
/// fire. Failover is a *reattach*: the log outlives the master, so the LSN
/// space, the watermarks, and every session token survive promotion.
struct SharedLogState {
    /// Untimed quorum protocol state (who persisted what, durable prefix).
    log: LogStore,
    /// Per-log-replica fault schedule over the run horizon, drawn once at
    /// build from `root.derive("logstore")` streams.
    timelines: Vec<FaultTimeline>,
    /// Master binlog events published (appended) to the log service.
    published_upto: Lsn,
    /// Durable prefix already processed by [`Cluster::log_ack`] (delivered
    /// to slave relays + stamped into the watermark table).
    durable_upto: Lsn,
    /// Published-but-not-yet-durable events awaiting quorum, in LSN order.
    pending: VecDeque<BinlogEvent>,
    /// Per-replica FIFO ack clearance: a log replica persists appends in
    /// order, so a later batch's ack can never land before an earlier one's
    /// (mirrors `chan_clear` for the shipping channels).
    ack_clear: Vec<SimTime>,
    /// Monotone quorum completion across batches (appends are FIFO).
    last_quorum_at: SimTime,
    /// Quorum instant of the most recent publish — the write-ack gate
    /// `client_op_done` reads right after `ship_new`. `None` when the last
    /// publish appended nothing.
    last_publish_quorum: Option<SimTime>,
    stats: SharedLogStats,
    /// Set by the reattach recovery path: (reattach LSN, events replayed).
    recovery: Option<(Lsn, u64)>,
}

#[derive(Default)]
struct SharedLogStats {
    /// Publish batches appended to the log.
    appends: u64,
    /// Records (binlog events) appended.
    records: u64,
    /// Transport-level retry attempts beyond each first try.
    ack_retries: u64,
    /// Application-level re-sends after a full attempt sequence gave up
    /// (sustained partition outlasting the bounded retry budget).
    ack_resends: u64,
    /// Publishes whose quorum never formed within the retry budget
    /// (availability loss; only possible with 2+ replicas partitioned).
    quorum_failures: u64,
    /// Client-visible quorum wait per publish (ms).
    quorum_waits: OnlineStats,
}

/// Cluster-side telemetry state: the `amdb-telemetry` bundle plus the
/// differencing baselines that turn the cluster's cumulative counters into
/// the per-tick series the SLO engine consumes. Pure measurement — reads
/// deterministic cluster state at sampling ticks, schedules nothing,
/// consumes no randomness.
struct TelemetryLayer {
    t: Telemetry,
    /// Per-node cumulative CPU busy-seconds at the previous sampling tick
    /// (differenced for interval utilization; the steady-window reset shows
    /// up as a negative delta and is clamped to zero for one tick).
    prev_busy: Vec<f64>,
    prev_at: SimTime,
    prev_ops: u64,
    prev_sla: u64,
    /// Operations completed (responses delivered) since the run started.
    ops_completed: u64,
}

impl TelemetryLayer {
    fn new(cfg: &amdb_telemetry::TelemetryConfig, n_slaves: usize) -> Self {
        Self {
            t: Telemetry::new(cfg, n_slaves),
            prev_busy: Vec::new(),
            prev_at: SimTime::ZERO,
            prev_ops: 0,
            prev_sla: 0,
            ops_completed: 0,
        }
    }
}

#[derive(Default)]
struct Stats {
    steady_ops: u64,
    steady_reads: u64,
    steady_writes: u64,
    steady_slave_reads: u64,
    latencies_ms: Vec<f64>,
    peak_relay_backlog: u64,
    master_util: f64,
    slave_utils: Vec<f64>,
    /// Peak CPU queue depth per node slot over the steady window.
    steady_peak_queue: Vec<usize>,
    /// Peak pool-waiter count over the steady window.
    steady_peak_waiting: usize,
    /// (heartbeat id, emission sim-time) pairs.
    hb_emitted: Vec<(i64, SimTime)>,
    /// Apply batches dispatched across all slaves (== events applied when
    /// `apply_workers == 1`; smaller when group commit batches events).
    apply_batches: u64,
    /// Binlog events applied across all slaves.
    apply_events: u64,
}

/// The simulation world for one benchmark run.
/// Slots in a node's cached demand-sketch handle array.
const SK_READ: usize = 0;
const SK_WRITE: usize = 1;
const SK_APPLY: usize = 2;

pub struct Cluster {
    cfg: ClusterConfig,
    phases: Phases,
    net: NetModel,
    cost: CostModel,
    client_zone: Zone,
    /// Node 0 is the master; nodes 1..=n are slaves.
    nodes: Vec<Node>,
    relays: Vec<RelayQueue>,
    /// Master-side shipping cursor.
    shipped_upto: Lsn,
    /// Per-slave FIFO channel clearance (preserves shipping order under
    /// jitter, like a TCP connection).
    chan_clear: Vec<SimTime>,
    proxy: Proxy,
    pool: SimPool,
    gen: WorkGen,
    hb: HeartbeatPlugin,
    mode: ReplMode,
    /// Apply workers per slave; 1 = the classic serial SQL thread.
    apply_workers: usize,
    /// Writeset-dependency batch planner, shared across slaves (planning is
    /// a pure function of each relay's queue, so per-slave state is not
    /// needed and the counters aggregate cluster-wide). Unused when
    /// `apply_workers == 1`.
    sched: amdb_apply::ApplyScheduler,
    pending_sync: Vec<SyncWait>,
    parked: HashMap<Ticket, (u32, Operation, SimTime)>,
    rng_think: Rng,
    rng_ntp: Rng,
    /// Provider handle kept for dynamic slave launches (failover/autoscale).
    provider: Provider,
    /// Timeline of membership events: (time, description).
    events_log: Vec<(SimTime, String)>,
    last_scale_action: SimTime,
    /// Replication epoch: bumped on failover so deliveries from a deposed
    /// master's binlog are discarded (its LSNs would collide with the new
    /// master's fresh log).
    repl_epoch: u64,
    /// Write ops parked while the master is down (failover in progress).
    awaiting_master: Vec<(u32, Operation, SimTime)>,
    /// Front-injected ops parked while the master is down (sharded worlds).
    awaiting_master_injected: Vec<(u64, Operation)>,
    /// Committed-but-unreplicated writes lost in failovers (§II data loss).
    lost_writes: u64,
    stats: Stats,
    /// Observability recorder; `Obs::Null` unless `cfg.obs.enabled`.
    obs: Obs,
    /// Cached per-node handles for the demand sketches on the hot
    /// job-service path (`SK_READ`/`SK_WRITE`/`SK_APPLY`). Resolved lazily
    /// on first record so the registry holds exactly the metrics the
    /// name-addressed probes would create; grows with dynamic slave
    /// launches.
    sketch_ids: Vec<[Option<MetricId>; 3]>,
    /// Consistency layer; `None` unless `cfg.consistency` opted in.
    consistency: Option<ConsistencyLayer>,
    /// Telemetry layer; `None` unless `cfg.telemetry.enabled` — every probe
    /// site below is then a single `Option` discriminant test.
    telemetry: Option<TelemetryLayer>,
    /// Shared-log backend state; `None` unless `cfg.backend == SharedLog`.
    shared_log: Option<SharedLogState>,
    /// When the master failed (recovery-time measurement).
    master_failed_at: Option<SimTime>,
    /// Master failure → cluster fully recovered (writes accepted and every
    /// live slave back in rotation), ms. Set by the promotion paths.
    recovery_ms: Option<f64>,
}

impl Cluster {
    /// Build the world: launch instances, load + fork the database, wire the
    /// proxy and pool, but schedule nothing yet.
    pub fn new(cfg: ClusterConfig) -> Self {
        let root = Rng::new(cfg.seed);
        let mut load_rng = root.derive("load");
        let (template, counters) = build_template(cfg.data_size, &mut load_rng);
        Self::with_template(cfg, &template, counters)
    }

    /// Like [`Cluster::new`], but forks the replicas off a pre-built template
    /// database (see `amdb_cloudstone::build_template`). Sweeps load the
    /// template once per data size and reuse it across all of their runs.
    pub fn with_template(
        mut cfg: ClusterConfig,
        template: &Engine,
        counters: amdb_cloudstone::DataCounters,
    ) -> Self {
        // Telemetry records through the observability recorder, so enabling
        // it forces observability on.
        if cfg.telemetry.enabled {
            cfg.obs.enabled = true;
        }
        let root = Rng::new(cfg.seed);
        let mut provider = Provider::new(cfg.provider.clone(), root.derive("provider"));
        let net = NetModel::new(cfg.net.clone(), root.derive("net"));

        let master_zone = cfg.master_zone;
        let slave_zone = cfg.placement.slave_zone(master_zone);

        let master_inst = match cfg.pin_master_host {
            Some(m) => provider.launch_on_host(master_zone, InstanceType::Small, m),
            None => provider.launch(master_zone, InstanceType::Small),
        };
        let mut master_engine = template.fork(ForkRole::Master(cfg.format));
        if !cfg.plan_cache {
            master_engine.set_plan_cache_capacity(0);
        }
        let mut nodes = vec![Node::new(master_inst, master_engine)];
        for _ in 0..cfg.n_slaves {
            let inst = match cfg.pin_slave_host {
                Some(m) => provider.launch_on_host(slave_zone, InstanceType::Small, m),
                None => provider.launch(slave_zone, InstanceType::Small),
            };
            let mut engine = template.fork(ForkRole::Slave);
            if !cfg.plan_cache {
                engine.set_plan_cache_capacity(0);
            }
            nodes.push(Node::new(inst, engine));
        }

        // `starting_at(0)` is exactly the historical default constructor;
        // a sharded front staggers each tree's cursor by its shard id.
        let cursor = cfg.balancer_start;
        let balancer: Box<dyn Balancer> = match cfg.balancer {
            BalancerKind::RoundRobin => Box::new(RoundRobin::starting_at(cursor)),
            BalancerKind::Random => Box::new(RandomPick::new(root.derive("balancer"))),
            BalancerKind::LeastOutstanding => Box::new(LeastOutstanding::starting_at(cursor)),
            BalancerKind::LatencyAware => Box::new(LatencyAware::starting_at(cursor)),
        };
        let proxy = Proxy::new(cfg.n_slaves, balancer);

        let pool_size = if cfg.pool_max_active == 0 {
            cfg.workload.concurrent_users as usize
        } else {
            cfg.pool_max_active
        };
        let pool = SimPool::new(PoolConfig {
            max_active: pool_size,
        });

        let mut shipped0 = Lsn(0);
        let gen = match cfg.workload_kind {
            crate::config::WorkloadKind::Cloudstone => {
                WorkGen::Cloudstone(OpGenerator::new(counters, root.derive("ops")))
            }
            crate::config::WorkloadKind::Web10 => {
                // Load the bookstore catalog identically on every replica
                // (same seed ⇒ identical content ⇒ "pre-loaded,
                // fully-synchronized"), then position the shipping cursor
                // past the loader's binlog events so they are not re-shipped.
                let items = 20 * cfg.data_size.scale;
                for node in &mut nodes {
                    let mut load_rng = root.derive("web10-load");
                    let mut session = Session::new();
                    amdb_cloudstone::load_web10(
                        &mut node.engine,
                        &mut session,
                        items,
                        &mut load_rng,
                    )
                    .expect("web10 catalog loads");
                }
                shipped0 = nodes[0].engine.binlog().head();
                WorkGen::Web10(amdb_cloudstone::Web10Generator::new(
                    items,
                    root.derive("web10-ops"),
                ))
            }
        };
        let phases = cfg.workload.phases;
        let n = cfg.n_slaves;
        let obs = Obs::from_config(&cfg.obs);
        let mut consistency = cfg
            .consistency
            .map(|c| ConsistencyLayer::new(c, n, shipped0.0, cfg.workload.concurrent_users));
        let telemetry = cfg
            .telemetry
            .enabled
            .then(|| TelemetryLayer::new(&cfg.telemetry, n));
        // Shared-log backend: the fault schedules and the log service exist
        // only when opted in — this whole block draws no RNG and allocates
        // nothing otherwise, keeping binlog-backend runs bit-identical.
        let shared_log = (cfg.backend == BackendKind::SharedLog).then(|| {
            cfg.log_store.validate();
            let horizon_us = phases.hard_end().as_micros();
            let log_rng = root.derive("logstore");
            let timelines: Vec<FaultTimeline> = (0..cfg.log_store.replicas)
                .map(|r| match &cfg.log_faults {
                    None => FaultTimeline::healthy(),
                    Some(plan) => {
                        let mut rng = log_rng.derive(&format!("replica{r}"));
                        plan.timeline(&mut rng, horizon_us)
                    }
                })
                .collect();
            let mut log = LogStore::new(cfg.log_store);
            // Pre-loaded data (web10 loader events) is durable before t=0:
            // align the log's LSN space with the binlog's.
            if shipped0.0 > 0 {
                log.append(shipped0.0);
                for rep in 0..cfg.log_store.replicas {
                    log.ack(rep, shipped0);
                }
            }
            SharedLogState {
                log,
                timelines,
                published_upto: shipped0,
                durable_upto: shipped0,
                pending: VecDeque::new(),
                ack_clear: vec![SimTime::ZERO; cfg.log_store.replicas],
                last_quorum_at: SimTime::ZERO,
                last_publish_quorum: None,
                stats: SharedLogStats::default(),
                recovery: None,
            }
        });
        if shared_log.is_some() {
            if let Some(layer) = consistency.as_mut() {
                // The consistency plane's master sequence is the log's
                // quorum-durable prefix, not the binlog head.
                layer.wm.set_source(SeqSource::QuorumDurable);
            }
        }
        Self {
            shared_log,
            master_failed_at: None,
            recovery_ms: None,
            obs,
            consistency,
            telemetry,
            provider,
            events_log: Vec::new(),
            last_scale_action: SimTime::ZERO,
            repl_epoch: 0,
            awaiting_master: Vec::new(),
            awaiting_master_injected: Vec::new(),
            lost_writes: 0,
            cost: cfg.cost.clone(),
            client_zone: cfg.client_zone.unwrap_or(master_zone),
            mode: cfg.mode,
            apply_workers: cfg.apply_workers.max(1),
            sched: amdb_apply::ApplyScheduler::new(cfg.apply_workers.max(1)),
            cfg,
            phases,
            net,
            nodes,
            relays: (0..n).map(|_| RelayQueue::starting_at(shipped0)).collect(),
            shipped_upto: shipped0,
            chan_clear: vec![SimTime::ZERO; n],
            proxy,
            pool,
            gen,
            hb: HeartbeatPlugin::new(),
            pending_sync: Vec::new(),
            parked: HashMap::new(),
            rng_think: root.derive("think"),
            rng_ntp: root.derive("ntp"),
            stats: Stats::default(),
            sketch_ids: Vec::new(),
        }
    }

    /// Pre-resolved handle for one of a node's demand sketches. Only called
    /// with tracing on.
    fn demand_sketch_id(&mut self, node_idx: usize, which: usize, name: &'static str) -> MetricId {
        if self.sketch_ids.len() <= node_idx {
            self.sketch_ids.resize(node_idx + 1, [None; 3]);
        }
        match self.sketch_ids[node_idx][which] {
            Some(id) => id,
            None => {
                let id = self
                    .obs
                    .sketch_handle(Component::Sql, node_idx as u32, name)
                    .expect("demand sketches are only recorded with tracing on");
                self.sketch_ids[node_idx][which] = Some(id);
                id
            }
        }
    }

    fn slave_node(&self, slave: usize) -> usize {
        slave + 1
    }

    // ------------------------------------------------------------------
    // Timeline setup
    // ------------------------------------------------------------------

    /// Schedule the full timeline: NTP, heartbeats, users, window markers.
    pub fn schedule_timeline(&mut self, sim: &mut dyn ClusterHost) {
        // Initial NTP sync for everyone (instances boot disciplined once),
        // then the periodic chain if configured.
        for i in 0..self.nodes.len() {
            let node = &mut self.nodes[i];
            let (clock, ntp) = (&mut node.inst.clock, &mut node.inst.ntp);
            ntp.sync(clock, SimTime::ZERO, &mut self.rng_ntp);
        }
        if let Some(interval) = self.cfg.ntp_interval {
            sim.schedule_in(
                interval,
                Box::new(move |w: &mut Cluster, sim| w.ntp_tick(sim, interval)),
            );
        }

        // Heartbeats from t=0 (idle baseline needs them).
        sim.schedule_at(
            SimTime::ZERO,
            Box::new(|w: &mut Cluster, sim| w.heartbeat_tick(sim)),
        );

        // Users, staggered linearly over the ramp-up.
        let users = self.cfg.workload.concurrent_users;
        let ramp = self.phases.ramp_up;
        let start = self.phases.load_start();
        for u in 0..users {
            let at = start + SimDuration::from_micros(ramp.as_micros() * u as u64 / users as u64);
            sim.schedule_event_at(at, ClusterEvent::UserNextOp { user: u });
        }

        // Planned slave failures (availability experiments).
        for fault in self.cfg.faults.clone() {
            let fail_at = SimTime::ZERO + fault.fail_at;
            let slave = fault.slave;
            sim.schedule_at(
                fail_at,
                Box::new(move |w: &mut Cluster, sim| {
                    w.fail_slave(sim, slave);
                }),
            );
            if let Some(after) = fault.recover_after {
                sim.schedule_at(
                    fail_at + after,
                    Box::new(move |w: &mut Cluster, sim| {
                        w.replace_slave(sim, slave);
                    }),
                );
            }
        }

        // Planned master failure with automatic failover.
        if let Some(mf) = self.cfg.master_fault.clone() {
            let fail_at = SimTime::ZERO + mf.fail_at;
            sim.schedule_at(
                fail_at,
                Box::new(move |w: &mut Cluster, sim| {
                    w.fail_master(sim);
                }),
            );
            sim.schedule_at(
                fail_at + mf.detection_delay,
                Box::new(|w: &mut Cluster, sim| {
                    w.promote_best_slave(sim);
                }),
            );
        }

        // Staleness-driven autoscaling controller.
        if let Some(auto) = self.cfg.autoscale.clone() {
            let interval = auto.check_interval;
            sim.schedule_in(
                interval,
                Box::new(move |w: &mut Cluster, sim| {
                    w.autoscale_tick(sim, auto.clone());
                }),
            );
        }

        // Measurement window markers.
        sim.schedule_at(
            self.phases.steady_start(),
            Box::new(|w: &mut Cluster, sim| {
                let now = sim.now();
                for node in &mut w.nodes {
                    node.inst.cpu.reset_window(now);
                }
                w.stats.steady_peak_queue = vec![0; w.nodes.len()];
                w.obs.instant(Component::Cluster, 0, "steady_start", now);
            }),
        );
        sim.schedule_at(
            self.phases.steady_end(),
            Box::new(|w: &mut Cluster, sim| {
                let now = sim.now();
                w.stats.master_util = w.nodes[0].inst.cpu.utilization(now);
                w.stats.slave_utils = w.nodes[1..]
                    .iter()
                    .map(|n| n.inst.cpu.utilization(now))
                    .collect();
                w.obs.instant(Component::Cluster, 0, "steady_end", now);
            }),
        );

        // Observability sampler: periodic gauges for queue depths,
        // utilization, pool occupancy, relay backlogs, and staleness.
        if self.obs.is_enabled() {
            let interval = SimDuration::from_millis(self.cfg.obs.sample_interval_ms.max(1));
            sim.schedule_at(
                SimTime::ZERO,
                Box::new(move |w: &mut Cluster, sim| {
                    w.obs_sample_tick(sim, interval);
                }),
            );
        }
    }

    /// Periodic observability sample: one counter record per tracked gauge.
    /// Only scheduled when observability is enabled.
    fn obs_sample_tick(&mut self, sim: &mut dyn ClusterHost, interval: SimDuration) {
        let now = sim.now();
        for (i, node) in self.nodes.iter().enumerate() {
            let depth = node.queue.len() + usize::from(node.busy);
            let inst = i as u32;
            self.obs
                .counter(Component::Cpu, inst, "queue_depth", now, depth as f64);
            let util = node.inst.cpu.utilization(now);
            self.obs
                .counter(Component::Cpu, inst, "utilization", now, util);
            // Curated fleet-plane series: per-node utilization drives the
            // fleet rollups, so it is opted into the time-series store.
            self.obs
                .tsdb_record(Component::Cpu, inst, "utilization", now, util);
        }
        self.obs
            .counter(Component::Pool, 0, "active", now, self.pool.active() as f64);
        self.obs.counter(
            Component::Pool,
            0,
            "waiting",
            now,
            self.pool.waiting() as f64,
        );
        for s in 0..self.relays.len() {
            let inst = s as u32;
            let depth = self.relays[s].backlog() as f64;
            self.obs
                .counter(Component::Repl, inst, "relay_depth", now, depth);
            self.obs
                .tsdb_record(Component::Repl, inst, "relay_depth", now, depth);
            let stale = self.observed_staleness_ms(s);
            self.obs
                .counter(Component::Repl, inst, "staleness_ms", now, stale);
            self.obs
                .tsdb_record(Component::Repl, inst, "staleness_ms", now, stale);
            self.obs.counter(
                Component::Proxy,
                inst,
                "outstanding",
                now,
                self.proxy.slave_status(s).outstanding as f64,
            );
            // Head-of-queue relay age: how stale is the work this slave has
            // not even started, in master wall-clock terms.
            if let Some(ts) = self.relays[s].oldest_commit_ts_micros() {
                let now_wall = self.nodes[0].inst.clock.read(now).0;
                let age_ms = (now_wall - ts).max(0) as f64 / 1000.0;
                self.obs
                    .counter(Component::Repl, inst, "relay_age_ms", now, age_ms);
                self.obs
                    .tsdb_record(Component::Repl, inst, "relay_age_ms", now, age_ms);
            }
        }
        self.telemetry_sample_tick(now);
        if now + interval <= self.phases.hard_end() {
            sim.schedule_in(
                interval,
                Box::new(move |w: &mut Cluster, sim| {
                    w.obs_sample_tick(sim, interval);
                }),
            );
        }
    }

    /// Telemetry sampling (rides the observability sampler): ground-truth
    /// staleness counters, interval CPU utilizations, SLO rule evaluation,
    /// and alert instants. No-op unless telemetry is enabled.
    fn telemetry_sample_tick(&mut self, now: SimTime) {
        if self.telemetry.is_none() {
            return;
        }
        // Ground-truth staleness per slave — continuous, unlike the
        // 1 s-quantized heartbeat estimate, so the surge detector sees the
        // surge as it builds rather than in heartbeat-interval steps.
        let n_slaves = self.relays.len();
        let mut delay_ms = Vec::with_capacity(n_slaves);
        for s in 0..n_slaves {
            let st = if self.nodes[self.slave_node(s)].failed {
                0.0
            } else {
                self.true_staleness_ms(s, now)
            };
            delay_ms.push(st);
            self.obs
                .counter(Component::Repl, s as u32, "true_staleness_ms", now, st);
        }
        // Interval CPU utilization per node slot: difference cumulative
        // busy time between ticks. The steady-window reset zeroes the
        // accumulator; the clamp absorbs that as one zero-utilization tick.
        let cur_busy: Vec<f64> = self
            .nodes
            .iter()
            .map(|n| n.inst.cpu.busy_in_window().as_secs_f64())
            .collect();
        let tl = self.telemetry.as_mut().expect("checked above");
        if tl.prev_busy.len() != cur_busy.len() {
            // Membership changed (scale-out/failover): rebaseline, so the
            // first tick after the change reads zero for the new slots.
            tl.prev_busy = cur_busy.clone();
        }
        let elapsed = (now - tl.prev_at).as_secs_f64();
        let cpu_util: Vec<f64> = if elapsed > 0.0 {
            cur_busy
                .iter()
                .zip(&tl.prev_busy)
                .map(|(c, p)| (c - p).max(0.0) / elapsed)
                .collect()
        } else {
            vec![0.0; cur_busy.len()]
        };
        // Attribution rows in the bottleneck report's shape and labels, so
        // a surge's attribution names the same resource the post-run
        // `bottleneck_report()` would.
        let mut rows = Vec::with_capacity(cpu_util.len());
        for (i, &u) in cpu_util.iter().enumerate() {
            rows.push(ResourceUsage {
                comp: Component::Cpu,
                inst: i as u32,
                label: if i == 0 {
                    "master cpu".to_string()
                } else {
                    format!("slave{} cpu", i - 1)
                },
                utilization: u,
                peak_queue: self.nodes[i].queue.len() + usize::from(self.nodes[i].busy),
            });
        }
        let ops = tl.ops_completed;
        let ops_per_s = if elapsed > 0.0 {
            (ops - tl.prev_ops) as f64 / elapsed
        } else {
            0.0
        };
        let sla_now = self.consistency.as_ref().map_or(0, |l| l.sla_violations);
        let sla_rate = if elapsed > 0.0 {
            (sla_now - tl.prev_sla) as f64 / elapsed
        } else {
            0.0
        };
        let slave_zone = self.cfg.placement.slave_zone(self.cfg.master_zone);
        let rtt_ms = 2.0
            * self
                .net
                .base_one_way(Proximity::of(self.cfg.master_zone, slave_zone))
                .as_millis_f64();
        let rtt_class = self.cfg.placement.label(self.cfg.master_zone);
        let fired = tl.t.slo.observe(&SloSample {
            at: now,
            delay_ms: &delay_ms,
            cpu_util: &cpu_util,
            pool_waiting: self.pool.waiting() as f64,
            ops_per_s,
            sla_violation_rate: sla_rate,
            rows: &rows,
            rtt_ms,
            rtt_class: &rtt_class,
        });
        tl.prev_busy = cur_busy;
        tl.prev_at = now;
        tl.prev_ops = ops;
        tl.prev_sla = sla_now;
        let wf_evicted = tl.t.waterfall.evicted;
        // Alert onsets land in the trace as cluster-level instants.
        for a in &fired {
            if a.kind == AlertKind::Fire {
                self.obs.instant(Component::Cluster, a.inst, a.rule, a.at);
            }
        }
        // Cumulative FIFO-evicted waterfall traces: a flat-zero series means
        // every staleness trace survived; any rise makes silent trace loss
        // visible (and names when the fan-out outran the inflight cap).
        self.obs
            .counter(Component::Cluster, 0, "wf_evicted", now, wf_evicted as f64);
        self.obs
            .tsdb_record(Component::Cluster, 0, "wf_evicted", now, wf_evicted as f64);
    }

    fn ntp_tick(&mut self, sim: &mut dyn ClusterHost, interval: SimDuration) {
        let now = sim.now();
        for node in &mut self.nodes {
            let (clock, ntp) = (&mut node.inst.clock, &mut node.inst.ntp);
            ntp.sync(clock, now, &mut self.rng_ntp);
        }
        if now + interval <= self.phases.hard_end() {
            sim.schedule_in(
                interval,
                Box::new(move |w: &mut Cluster, sim| w.ntp_tick(sim, interval)),
            );
        }
    }

    fn heartbeat_tick(&mut self, sim: &mut dyn ClusterHost) {
        self.enqueue_job(sim, 0, Job::Heartbeat);
        let interval = self.cfg.heartbeat_interval;
        if sim.now() + interval <= self.phases.hard_end() {
            sim.schedule_in(
                interval,
                Box::new(|w: &mut Cluster, sim| w.heartbeat_tick(sim)),
            );
        }
    }

    // ------------------------------------------------------------------
    // Users
    // ------------------------------------------------------------------

    fn user_next_op(&mut self, sim: &mut dyn ClusterHost, user: u32) {
        if sim.now() >= self.phases.load_end() {
            return; // ramp-down: user retires
        }
        let op = self.gen.generate(self.cfg.mix);
        let issued = sim.now();
        match self.pool.acquire(issued) {
            Acquire::Ready => self.dispatch(sim, user, op, issued),
            Acquire::Queued(t) => {
                self.obs.incr(Component::Pool, 0, "checkout_waits", 1);
                if self.phases.in_steady(issued) {
                    self.stats.steady_peak_waiting =
                        self.stats.steady_peak_waiting.max(self.pool.waiting());
                }
                self.parked.insert(t, (user, op, issued));
            }
        }
    }

    fn dispatch(&mut self, sim: &mut dyn ClusterHost, user: u32, op: Operation, issued: SimTime) {
        self.dispatch_with_wait(sim, user, op, issued, 0.0);
    }

    /// Dispatch one operation, routing reads through the consistency layer
    /// when one is configured. `waited_ms` accumulates across
    /// wait-for-catchup parks of the same read (0 on first attempt).
    fn dispatch_with_wait(
        &mut self,
        sim: &mut dyn ClusterHost,
        user: u32,
        op: Operation,
        issued: SimTime,
        waited_ms: f64,
    ) {
        let class = match op.class {
            OpClass::Read => ProxyClass::Read,
            OpClass::Write => ProxyClass::Write,
        };
        let route = match (&mut self.consistency, class) {
            (Some(layer), ProxyClass::Read) => {
                let now_ms = sim.now().as_millis_f64();
                let session = layer.sessions.token(user as usize);
                match layer
                    .cfg
                    .decide_read(&mut self.proxy, &layer.wm, session, now_ms, waited_ms)
                {
                    ReadDecision::Route(r) => r,
                    ReadDecision::RedirectMaster => {
                        layer.redirects_master += 1;
                        self.obs
                            .incr(Component::Proxy, 0, "consistency_redirect_master", 1);
                        Route::Master
                    }
                    ReadDecision::WaitRetry { recheck_ms } => {
                        layer.waits += 1;
                        layer.wait_ms_total += recheck_ms;
                        self.obs.incr(Component::Proxy, 0, "consistency_waits", 1);
                        let next_waited = waited_ms + recheck_ms;
                        sim.schedule_event_in(
                            SimDuration::from_millis_f64(recheck_ms),
                            ClusterEvent::DispatchWithWait {
                                user,
                                op,
                                issued,
                                waited_ms: next_waited,
                            },
                        );
                        return;
                    }
                }
            }
            _ => self.proxy.route(class),
        };
        let (node_idx, routed_slave) = match route {
            Route::Master => {
                if self.nodes[0].failed {
                    // Failover in progress: park until promotion completes.
                    self.awaiting_master.push((user, op, issued));
                    return;
                }
                self.obs.incr(Component::Proxy, 0, "routed_to_master", 1);
                (0, None)
            }
            Route::Slave(s) => {
                self.obs.incr(Component::Proxy, s as u32, "routed_reads", 1);
                (self.slave_node(s), Some(s))
            }
        };
        // Telemetry: open a causal trace for every master-routed write.
        // The proxy's routing decision happens here, at `sim.now()`.
        let trace = match self.telemetry.as_mut() {
            Some(tl) if op.class == OpClass::Write && routed_slave.is_none() => {
                tl.t.waterfall.begin_write(issued, sim.now())
            }
            _ => 0,
        };
        let delay = self
            .net
            .delay(self.client_zone, self.nodes[node_idx].inst.zone());
        sim.schedule_event_in(
            delay,
            ClusterEvent::EnqueueJob {
                node: node_idx,
                job: Job::ClientOp {
                    user,
                    op,
                    issued,
                    routed_slave,
                    trace,
                },
            },
        );
    }

    /// Entry point for a sharded front-end: inject one operation into this
    /// tree, identified by an opaque `id` the host correlates on completion.
    /// Mirrors `dispatch_with_wait`, except the finished op is reported via
    /// `ClusterHost::notify_front` instead of driving a user loop. Injected
    /// reads share one tree-wide session token, and a `WaitRetry` decision
    /// degrades to a master redirect — the front holds no per-leg retry
    /// timer, so waiting is traded for the master's fresh copy.
    pub(crate) fn inject_op(&mut self, sim: &mut dyn ClusterHost, id: u64, op: Operation) {
        let class = match op.class {
            OpClass::Read => ProxyClass::Read,
            OpClass::Write => ProxyClass::Write,
        };
        let route = match (&mut self.consistency, class) {
            (Some(layer), ProxyClass::Read) => {
                let now_ms = sim.now().as_millis_f64();
                let decision =
                    layer
                        .cfg
                        .decide_read(&mut self.proxy, &layer.wm, &layer.injected, now_ms, 0.0);
                match decision {
                    ReadDecision::Route(r) => r,
                    ReadDecision::RedirectMaster | ReadDecision::WaitRetry { .. } => {
                        layer.redirects_master += 1;
                        self.obs
                            .incr(Component::Proxy, 0, "consistency_redirect_master", 1);
                        Route::Master
                    }
                }
            }
            _ => self.proxy.route(class),
        };
        let (node_idx, routed_slave) = match route {
            Route::Master => {
                if self.nodes[0].failed {
                    // Failover in progress: park until promotion completes.
                    self.awaiting_master_injected.push((id, op));
                    return;
                }
                self.obs.incr(Component::Proxy, 0, "routed_to_master", 1);
                (0, None)
            }
            Route::Slave(s) => {
                self.obs.incr(Component::Proxy, s as u32, "routed_reads", 1);
                (self.slave_node(s), Some(s))
            }
        };
        let now = sim.now();
        // Telemetry: injected writes open their causal trace at injection —
        // the front's routing hop already happened, so issue == route time.
        let trace = match self.telemetry.as_mut() {
            Some(tl) if op.class == OpClass::Write && routed_slave.is_none() => {
                tl.t.waterfall.begin_write(now, now)
            }
            _ => 0,
        };
        let delay = self
            .net
            .delay(self.client_zone, self.nodes[node_idx].inst.zone());
        sim.schedule_event_in(
            delay,
            ClusterEvent::EnqueueJob {
                node: node_idx,
                job: Job::Injected {
                    id,
                    op,
                    routed_slave,
                    trace,
                },
            },
        );
    }

    /// [`Self::inject_op`] pinned to the master, bypassing the balancer and
    /// the consistency router — the sharded front's all-legs-filtered
    /// fallback: when every scatter leg was dropped by the staleness
    /// filter, the read re-runs against this tree's master, whose copy is
    /// fresh by definition. Parks like any master-routed op while a
    /// failover is in progress.
    pub(crate) fn inject_op_master(&mut self, sim: &mut dyn ClusterHost, id: u64, op: Operation) {
        if self.nodes[0].failed {
            self.awaiting_master_injected.push((id, op));
            return;
        }
        self.obs.incr(Component::Proxy, 0, "routed_to_master", 1);
        let now = sim.now();
        let trace = match self.telemetry.as_mut() {
            Some(tl) if op.class == OpClass::Write => tl.t.waterfall.begin_write(now, now),
            _ => 0,
        };
        let delay = self.net.delay(self.client_zone, self.nodes[0].inst.zone());
        sim.schedule_event_in(
            delay,
            ClusterEvent::EnqueueJob {
                node: 0,
                job: Job::Injected {
                    id,
                    op,
                    routed_slave: None,
                    trace,
                },
            },
        );
    }

    // ------------------------------------------------------------------
    // Node job queue
    // ------------------------------------------------------------------

    fn enqueue_job(&mut self, sim: &mut dyn ClusterHost, node: usize, job: Job) {
        self.nodes[node].queue.push_back(job);
        if self.phases.in_steady(sim.now()) {
            if let Some(peak) = self.stats.steady_peak_queue.get_mut(node) {
                let depth = self.nodes[node].queue.len() + usize::from(self.nodes[node].busy);
                *peak = (*peak).max(depth);
            }
        }
        self.try_start(sim, node);
    }

    fn try_start(&mut self, sim: &mut dyn ClusterHost, node_idx: usize) {
        if self.nodes[node_idx].busy {
            return;
        }
        if self.nodes[node_idx].failed {
            // A failed VM serves nothing; drop queued work. Client ops get
            // an immediate error response so their users retry elsewhere.
            let dropped: Vec<Job> = self.nodes[node_idx].queue.drain(..).collect();
            for job in dropped {
                match job {
                    Job::ClientOp {
                        user, op, issued, ..
                    } => self.retry_elsewhere(sim, user, op, issued),
                    // Injected ops re-route through the proxy, which has
                    // already marked this replica dead.
                    Job::Injected { id, op, .. } => self.inject_op(sim, id, op),
                    _ => {}
                }
            }
            return;
        }
        let job = loop {
            let Some(job) = self.nodes[node_idx].queue.pop_front() else {
                return;
            };
            // One Apply job is enqueued per delivered event, but a group-
            // commit batch consumes several events at once; wake-ups whose
            // event was already drained by an earlier batch are skipped.
            // With `apply_workers == 1` batches have size 1 and this guard
            // never fires — the serial pipeline is untouched.
            if let Job::Apply { slave } = &job {
                if self.relays[*slave].peek_next().is_none() {
                    continue;
                }
            }
            break job;
        };
        self.nodes[node_idx].busy = true;
        let now = sim.now();
        let gen = self.nodes[node_idx].gen;

        match job {
            Job::ClientOp {
                user,
                op,
                issued,
                routed_slave,
                trace,
            } => {
                let done = self.start_client_service(node_idx, &op, routed_slave, trace, now);
                sim.schedule_event_at(
                    done,
                    ClusterEvent::ClientOpDone {
                        node_idx,
                        gen,
                        user,
                        class: op.class,
                        issued,
                        routed_slave,
                        trace,
                    },
                );
            }
            Job::Injected {
                id,
                op,
                routed_slave,
                trace,
            } => {
                let done = self.start_client_service(node_idx, &op, routed_slave, trace, now);
                sim.schedule_event_at(
                    done,
                    ClusterEvent::InjectedOpDone {
                        node_idx,
                        gen,
                        id,
                        class: op.class,
                        routed_slave,
                        trace,
                    },
                );
            }
            Job::Apply { slave } => {
                // Plan the group-commit batch: a contiguous prefix of at
                // most `apply_workers` pairwise-non-conflicting events.
                // Serial apply (workers == 1) bypasses the planner entirely.
                let (batch_len, bound) = if self.apply_workers > 1 {
                    let engine = &self.nodes[node_idx].engine;
                    let relay = &self.relays[slave];
                    let plan = self
                        .sched
                        .plan_batch(relay.iter(), |t| engine.pk_index_of(t));
                    (plan.len, Some(plan.bound))
                } else {
                    (1, None)
                };
                let node = &mut self.nodes[node_idx];
                let now_micros = node.inst.clock.read(now).0;
                let mut results = Vec::with_capacity(batch_len);
                let mut first_lsn = Lsn(0);
                let mut last_lsn = Lsn(0);
                for i in 0..batch_len {
                    let ev = self.relays[slave]
                        .pop_next()
                        .expect("apply job implies a queued relay event");
                    // The batch applies functionally in LSN order and only
                    // becomes visible when its CPU demand completes — the
                    // in-order commit the watermarks rely on.
                    let res = node
                        .engine
                        .apply_event(&ev, now_micros)
                        .unwrap_or_else(|e| {
                            panic!("slave {slave} apply of {:?} failed: {e}", ev.lsn)
                        });
                    self.relays[slave].mark_applied(ev.lsn);
                    results.push(res);
                    if i == 0 {
                        first_lsn = ev.lsn;
                    }
                    last_lsn = ev.lsn;
                }
                self.stats.apply_batches += 1;
                self.stats.apply_events += batch_len as u64;
                // Every event's row work is charged in full; the batch
                // shares one dispatch overhead and one commit. A singleton
                // batch is float-identical to the serial path.
                let demand_us = self.cost.apply_batch_demand_us(&results);
                let done = node
                    .inst
                    .cpu
                    .submit(now, SimDuration::from_micros(demand_us.round() as u64));
                if let Some(tl) = self.telemetry.as_mut() {
                    for lsn in first_lsn.0..=last_lsn.0 {
                        tl.t.waterfall.on_apply_start(slave, lsn, now);
                    }
                }
                if self.obs.is_enabled() {
                    self.obs
                        .span(Component::Repl, slave as u32, "apply", now, done);
                    let id = self.demand_sketch_id(node_idx, SK_APPLY, "demand_apply_us");
                    self.obs.observe_sketch_id(id, demand_us);
                    if let Some(bound) = bound {
                        // Parallel apply: decompose the batch into per-worker
                        // spans (one per event, real per-event demand), name
                        // what closed the batch, and measure each worker's
                        // in-order-commit wait — the time its event sat done
                        // but invisible while the batch's LSN-order commit
                        // waited on the slowest sibling.
                        let batch_id = self.stats.apply_batches;
                        let slave_u = slave as u32;
                        let bound_counter = match bound {
                            amdb_apply::BatchBound::Drained => "apply_batch_drained",
                            amdb_apply::BatchBound::Conflict => "apply_conflict_bounded",
                            amdb_apply::BatchBound::Capacity => "apply_capacity_bounded",
                            amdb_apply::BatchBound::Barrier => "apply_barrier",
                        };
                        self.obs.incr(Component::Repl, slave_u, bound_counter, 1);
                        // Service start: `done` minus the batch demand (the
                        // CPU may have queued the job behind earlier work).
                        let start =
                            SimTime::from_micros(done.as_micros() - demand_us.round() as u64);
                        self.obs.flow(
                            FlowPhase::Start,
                            Component::Repl,
                            slave_u,
                            "apply_batch",
                            start,
                            batch_id,
                        );
                        for (w, res) in results.iter().enumerate() {
                            let worker_inst = slave_u * 100 + w as u32;
                            let ev_us = self.cost.apply_demand_us(res);
                            let w_end =
                                SimTime::from_micros(start.as_micros() + ev_us.round() as u64);
                            self.obs.span(
                                Component::Repl,
                                worker_inst,
                                "apply_worker",
                                start,
                                w_end,
                            );
                            self.obs.flow(
                                FlowPhase::Step,
                                Component::Repl,
                                worker_inst,
                                "apply_batch",
                                w_end,
                                batch_id,
                            );
                            let wait_ms = (done - w_end).as_millis_f64();
                            self.obs.observe_sketch(
                                Component::Repl,
                                slave_u,
                                "apply_commit_wait_ms",
                                wait_ms,
                            );
                            self.obs.tsdb_observe(
                                Component::Repl,
                                worker_inst,
                                "apply_worker_busy_us",
                                done,
                                ev_us,
                            );
                        }
                        self.obs.flow(
                            FlowPhase::End,
                            Component::Repl,
                            slave_u,
                            "apply_batch",
                            done,
                            batch_id,
                        );
                        self.obs.tsdb_observe(
                            Component::Repl,
                            slave_u,
                            "apply_batch_len",
                            done,
                            batch_len as f64,
                        );
                    }
                }
                sim.schedule_event_at(
                    done,
                    ClusterEvent::ApplyDone {
                        node_idx,
                        gen,
                        slave,
                        first_lsn,
                        last_lsn,
                    },
                );
            }
            Job::Heartbeat => {
                let (sql, params) = self.hb.next_insert();
                let id = match params[0] {
                    amdb_sql::Value::Int(i) => i,
                    _ => unreachable!(),
                };
                self.stats.hb_emitted.push((id, now));
                let node = &mut self.nodes[node_idx];
                node.session.now_micros = node.inst.clock.read(now).0;
                let res = node
                    .engine
                    .execute(&mut node.session, &sql, &params)
                    .unwrap_or_else(|e| panic!("heartbeat insert failed: {e}"));
                let mut demand_us = self.cost.statement_demand_us(&res, true) + self.cost.commit_us;
                let fanout = match self.shared_log.as_ref() {
                    Some(sl) => sl.log.config().replicas,
                    None => self.relays.len(),
                };
                demand_us += self.cost.ship_demand_us() * fanout as f64;
                let done = node
                    .inst
                    .cpu
                    .submit(now, SimDuration::from_micros(demand_us.round() as u64));
                self.obs.span(Component::Repl, 0, "heartbeat", now, done);
                sim.schedule_event_at(done, ClusterEvent::MasterJobDone { node_idx, gen });
            }
        }
    }

    /// Execute an operation's statements functionally and return the total
    /// CPU demand in µs (statements + per-op commit + shipping for writes).
    fn exec_client_op(&mut self, node_idx: usize, op: &Operation, now: SimTime) -> f64 {
        let node = &mut self.nodes[node_idx];
        node.session.now_micros = node.inst.clock.read(now).0;
        let mut demand_us = 0.0;
        for (sql, params) in &op.statements {
            let res = node
                .engine
                .execute(&mut node.session, sql, params)
                .unwrap_or_else(|e| panic!("op '{}' failed: {e}\nSQL: {sql}", op.name));
            demand_us += self.cost.statement_demand_us(&res, res.rows_affected > 0);
        }
        if op.class == OpClass::Write {
            demand_us += self.cost.commit_us;
            // Binlog dump threads consume master CPU per slave per event.
            // Under the shared log the master appends to the log replicas
            // instead and slaves tail the log service — its commit cost is
            // independent of the slave count (the disaggregation offload).
            let (published, fanout) = match self.shared_log.as_ref() {
                Some(sl) => (sl.published_upto, sl.log.config().replicas),
                None => (self.shipped_upto, self.relays.len()),
            };
            let new_events = node.engine.binlog().head().0 - published.0;
            demand_us += self.cost.ship_demand_us() * new_events as f64 * fanout as f64;
        }
        demand_us
    }

    /// Begin functional service of a client-visible operation on `node_idx`:
    /// telemetry/consistency service-start accounting, functional statement
    /// execution, and CPU submission. Returns the completion time. Shared by
    /// user-loop ops (`Job::ClientOp`) and front-injected ops
    /// (`Job::Injected`), which differ only in their completion events.
    fn start_client_service(
        &mut self,
        node_idx: usize,
        op: &Operation,
        routed_slave: Option<usize>,
        trace: u64,
        now: SimTime,
    ) -> SimTime {
        // Telemetry: a slave-served read observes everything the
        // slave has applied — close the first-read leg of any write
        // trace it newly covers (service start is where statements
        // execute functionally).
        if self.telemetry.is_some() {
            if let Some(s) = routed_slave {
                let upto = self.relays[s].applied_upto().0;
                if let Some(tl) = self.telemetry.as_mut() {
                    tl.t.waterfall.on_slave_read(s, upto, now);
                }
            }
        }
        // Consistency accounting: the *true* staleness a slave read
        // observes is fixed here, at service start, where statements
        // execute functionally. Pure measurement — no events, no RNG.
        if self.consistency.is_some() && op.class == OpClass::Read {
            if let Some(s) = routed_slave {
                let st_ms = self.true_staleness_ms(s, now);
                let steady = self.phases.in_steady(now);
                if let Some(layer) = self.consistency.as_mut() {
                    layer.served_staleness.push(st_ms);
                    if let ConsistencyPolicy::BoundedStaleness { max_ms } = layer.cfg.policy {
                        if st_ms > max_ms {
                            layer.sla_violations += 1;
                            if steady {
                                layer.sla_violations_steady += 1;
                            }
                            self.obs.incr(
                                Component::Proxy,
                                s as u32,
                                "consistency_sla_violation",
                                1,
                            );
                        }
                    }
                }
            }
        }
        let lsn_before = if trace != 0 {
            self.nodes[node_idx].engine.binlog().head().0
        } else {
            0
        };
        let demand_us = self.exec_client_op(node_idx, op, now);
        if trace != 0 {
            let lsn_after = self.nodes[node_idx].engine.binlog().head().0;
            if let Some(tl) = self.telemetry.as_mut() {
                tl.t.waterfall
                    .on_service_start(trace, now, lsn_before, lsn_after);
            }
        }
        let done = self.nodes[node_idx]
            .inst
            .cpu
            .submit(now, SimDuration::from_micros(demand_us.round() as u64));
        if self.obs.is_enabled() {
            let (span, which, hist) = match op.class {
                OpClass::Read => ("serve_read", SK_READ, "demand_read_us"),
                OpClass::Write => ("serve_write", SK_WRITE, "demand_write_us"),
            };
            self.obs
                .span(Component::Cpu, node_idx as u32, span, now, done);
            let id = self.demand_sketch_id(node_idx, which, hist);
            self.obs.observe_sketch_id(id, demand_us);
        }
        done
    }

    // ------------------------------------------------------------------
    // Completions
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn client_op_done(
        &mut self,
        sim: &mut dyn ClusterHost,
        node_idx: usize,
        gen: u64,
        user: u32,
        class: OpClass,
        issued: SimTime,
        routed_slave: Option<usize>,
        trace: u64,
    ) {
        if self.nodes[node_idx].gen != gen {
            // The node at this slot was swapped/replaced mid-service
            // (failover). The op's functional work already happened; just
            // deliver the response so the user's loop continues.
            let now = sim.now();
            self.schedule_response(sim, now, user, class, issued, routed_slave);
            return;
        }
        self.nodes[node_idx].busy = false;
        let now = sim.now();

        // Session guarantees: record what this completed op established.
        // Both marks are conservative over-approximations (the serving
        // replica's watermark, not the exact rows touched).
        if self.consistency.is_some() {
            let seq = match (class, routed_slave) {
                (OpClass::Read, Some(s)) => self.relays[s].applied_upto().0,
                _ => self.nodes[0].engine.binlog().head().0,
            };
            if let Some(layer) = self.consistency.as_mut() {
                let token = layer.sessions.token_mut(user as usize);
                match class {
                    OpClass::Write => token.observe_write(seq),
                    OpClass::Read => token.observe_read(seq),
                }
            }
        }

        if node_idx == 0 {
            // Telemetry: the write commits here; its binlog events become
            // visible to shipping. The flow arrow starts at the commit.
            if trace != 0 {
                let committed = self
                    .telemetry
                    .as_mut()
                    .and_then(|tl| tl.t.waterfall.on_commit(trace, now));
                if committed.is_some() {
                    self.obs
                        .flow(FlowPhase::Start, Component::Cpu, 0, "writeset", now, trace);
                }
            }
            // Master job: commit point — ship new binlog events.
            let deliveries = self.ship_new(sim);
            // Shared-log backend: a write is acknowledged at its quorum
            // instant, whatever the ReplMode — durability lives in the log
            // service, not in slave receipt/apply acks.
            if class == OpClass::Write {
                if let Some(q_at) = self
                    .shared_log
                    .as_ref()
                    .and_then(|sl| sl.last_publish_quorum)
                {
                    self.schedule_response(sim, q_at, user, class, issued, routed_slave);
                    self.try_start(sim, node_idx);
                    return;
                }
            }
            match (class, self.mode) {
                (OpClass::Write, ReplMode::SemiSync) if !deliveries.is_empty() => {
                    // Respond when the first receipt ack returns.
                    let mut first_ack = SimTime::from_micros(u64::MAX);
                    for &(s, d) in &deliveries {
                        let back = self
                            .net
                            .delay(self.nodes[self.slave_node(s)].inst.zone(), self.client_zone);
                        first_ack = first_ack.min(d + back);
                    }
                    let at = first_ack.max(now);
                    sim.schedule_event_at(
                        at,
                        ClusterEvent::Respond {
                            user,
                            class,
                            issued,
                            routed_slave,
                        },
                    );
                    self.try_start(sim, node_idx);
                    return;
                }
                (OpClass::Write, ReplMode::Sync) if !self.relays.is_empty() => {
                    // Respond when every live slave has applied this write.
                    let last_lsn = Lsn(self.shipped_upto.0.saturating_sub(1));
                    let mut acked = vec![false; self.relays.len()];
                    // Slaves that have already applied past it (possible for
                    // read-only ops that logged nothing) ack immediately;
                    // failed slaves cannot be waited on.
                    for (s, r) in self.relays.iter().enumerate() {
                        if r.applied_upto() > last_lsn || self.nodes[s + 1].failed {
                            acked[s] = true;
                        }
                    }
                    if acked.iter().all(|&a| a) {
                        self.schedule_response(sim, now, user, class, issued, routed_slave);
                    } else {
                        self.pending_sync.push(SyncWait {
                            user,
                            issued,
                            routed_slave,
                            class,
                            last_lsn,
                            acked,
                            latest_ack: now,
                        });
                    }
                    self.try_start(sim, node_idx);
                    return;
                }
                _ => {}
            }
        }

        self.schedule_response(sim, now, user, class, issued, routed_slave);
        self.try_start(sim, node_idx);
    }

    /// Completion of a front-injected op: mirrors `client_op_done`, but the
    /// finished op flows back to the host front instead of a user loop, and
    /// writes always respond at commit — the sharded front's durability
    /// contract is async regardless of `ReplMode`, because a scatter leg
    /// cannot block on per-tree sync acks without a front-side ack protocol
    /// (documented in DESIGN.md §14).
    #[allow(clippy::too_many_arguments)]
    fn injected_op_done(
        &mut self,
        sim: &mut dyn ClusterHost,
        node_idx: usize,
        gen: u64,
        id: u64,
        class: OpClass,
        routed_slave: Option<usize>,
        trace: u64,
    ) {
        if self.nodes[node_idx].gen != gen {
            // Slot swapped mid-service (failover); the functional work is
            // done, so just deliver the completion to the front.
            let now = sim.now();
            self.injected_response(sim, now, id, routed_slave);
            return;
        }
        self.nodes[node_idx].busy = false;
        let now = sim.now();

        // Session guarantees for the tree-wide injected token.
        if self.consistency.is_some() {
            let seq = match (class, routed_slave) {
                (OpClass::Read, Some(s)) => self.relays[s].applied_upto().0,
                _ => self.nodes[0].engine.binlog().head().0,
            };
            if let Some(layer) = self.consistency.as_mut() {
                match class {
                    OpClass::Write => layer.injected.observe_write(seq),
                    OpClass::Read => layer.injected.observe_read(seq),
                }
            }
        }

        if node_idx == 0 {
            if trace != 0 {
                let committed = self
                    .telemetry
                    .as_mut()
                    .and_then(|tl| tl.t.waterfall.on_commit(trace, now));
                if committed.is_some() {
                    self.obs
                        .flow(FlowPhase::Start, Component::Cpu, 0, "writeset", now, trace);
                }
            }
            // Master job: commit point — ship new binlog events.
            self.ship_new(sim);
        }

        self.injected_response(sim, now, id, routed_slave);
        self.try_start(sim, node_idx);
    }

    /// Deliver an injected op's completion to the host front after the
    /// serving-replica→client network hop (mirrors `schedule_response`).
    fn injected_response(
        &mut self,
        sim: &mut dyn ClusterHost,
        at: SimTime,
        id: u64,
        routed_slave: Option<usize>,
    ) {
        let from = match routed_slave {
            Some(s) => self.nodes[self.slave_node(s)].inst.zone(),
            None => self.nodes[0].inst.zone(),
        };
        let staleness_ms = match routed_slave {
            Some(s) => self.observed_staleness_ms(s),
            None => 0.0,
        };
        let back = self.net.delay(from, self.client_zone);
        let respond_at = at.max(sim.now()) + back;
        sim.notify_front(
            respond_at,
            InjectedDone {
                id,
                routed_slave,
                staleness_ms,
            },
        );
    }

    fn schedule_response(
        &mut self,
        sim: &mut dyn ClusterHost,
        at: SimTime,
        user: u32,
        class: OpClass,
        issued: SimTime,
        routed_slave: Option<usize>,
    ) {
        let from = match routed_slave {
            Some(s) => self.nodes[self.slave_node(s)].inst.zone(),
            None => self.nodes[0].inst.zone(),
        };
        let back = self.net.delay(from, self.client_zone);
        let respond_at = at.max(sim.now()) + back;
        sim.schedule_event_at(
            respond_at,
            ClusterEvent::Respond {
                user,
                class,
                issued,
                routed_slave,
            },
        );
    }

    fn respond(
        &mut self,
        sim: &mut dyn ClusterHost,
        user: u32,
        class: OpClass,
        issued: SimTime,
        routed_slave: Option<usize>,
    ) {
        let now = sim.now();
        let latency_ms = (now - issued).as_millis_f64();
        if let Some(s) = routed_slave {
            self.proxy.read_done(s, latency_ms);
        }
        if let Some(tl) = self.telemetry.as_mut() {
            tl.ops_completed += 1;
            // Bounded-memory client latency percentiles per serving replica
            // (instance 0 = master, s+1 = slave s), alongside the exact
            // steady-window sample vector kept for the final report.
            let inst = routed_slave.map_or(0, |s| s as u32 + 1);
            self.obs
                .observe_sketch(Component::Proxy, inst, "client_latency_ms", latency_ms);
        }
        if self.phases.in_steady(now) {
            self.stats.steady_ops += 1;
            match class {
                OpClass::Read => {
                    self.stats.steady_reads += 1;
                    if routed_slave.is_some() {
                        self.stats.steady_slave_reads += 1;
                    }
                }
                OpClass::Write => self.stats.steady_writes += 1,
            }
            self.stats.latencies_ms.push(latency_ms);
        }
        // Return the connection; hand it straight to a parked user if any.
        if let Some(ticket) = self.pool.release(now) {
            if let Some((u2, op2, issued2)) = self.parked.remove(&ticket) {
                // The parked user queued at `issued2`; the handoff ends its
                // checkout wait.
                self.obs.observe_sketch(
                    Component::Pool,
                    0,
                    "checkout_wait_ms",
                    (now - issued2).as_millis_f64(),
                );
                self.dispatch(sim, u2, op2, issued2);
            }
        }
        // Think, then next op.
        let think = SimDuration::from_secs_f64(
            self.rng_think
                .exp(self.cfg.workload.think_time.as_secs_f64()),
        );
        sim.schedule_event_in(think, ClusterEvent::UserNextOp { user });
    }

    fn master_job_done(&mut self, sim: &mut dyn ClusterHost, node_idx: usize, gen: u64) {
        if self.nodes[node_idx].gen != gen {
            return; // deposed master's heartbeat: nothing to ship
        }
        self.nodes[node_idx].busy = false;
        self.ship_new(sim);
        self.try_start(sim, node_idx);
    }

    fn apply_done(
        &mut self,
        sim: &mut dyn ClusterHost,
        node_idx: usize,
        gen: u64,
        slave: usize,
        first_lsn: Lsn,
        last_lsn: Lsn,
    ) {
        if self.nodes[node_idx].gen != gen {
            return; // slot re-occupied since this apply started
        }
        self.nodes[node_idx].busy = false;
        // Telemetry: the whole batch commits here, in LSN order — close the
        // apply and end-to-end legs of every event in it, and end each flow
        // arrow. (Serial apply: a one-event range, exactly the old shape.)
        if self.telemetry.is_some() {
            let now = sim.now();
            for lsn in first_lsn.0..=last_lsn.0 {
                let hit = self
                    .telemetry
                    .as_mut()
                    .and_then(|tl| tl.t.waterfall.on_applied(slave, lsn, now));
                if let Some(trace) = hit {
                    self.obs.flow(
                        FlowPhase::End,
                        Component::Repl,
                        slave as u32,
                        "writeset",
                        now,
                        trace,
                    );
                }
            }
        }
        // The slave's SQL thread finished one event: advance its watermark.
        // `backlogged` gates the apply-rate EWMA to busy periods; after a
        // failover reset the relay's own cursor (not the in-flight job's
        // old-epoch LSN) is authoritative.
        if self.consistency.is_some() {
            let seq = self.relays[slave].applied_upto().0;
            let backlogged = self.relays[slave].backlog() > 0;
            let now_ms = sim.now().as_millis_f64();
            if let Some(layer) = self.consistency.as_mut() {
                layer.wm.note_applied(slave, seq, now_ms, backlogged);
            }
        }
        // Sync-mode acks.
        if self.mode == ReplMode::Sync && !self.pending_sync.is_empty() {
            let now = sim.now();
            let back = self
                .net
                .delay(self.nodes[node_idx].inst.zone(), self.client_zone);
            let mut completed = Vec::new();
            for (i, wait) in self.pending_sync.iter_mut().enumerate() {
                if !wait.acked[slave] && last_lsn >= wait.last_lsn {
                    wait.acked[slave] = true;
                    wait.latest_ack = wait.latest_ack.max(now + back);
                    if wait.acked.iter().all(|&a| a) {
                        completed.push(i);
                    }
                }
            }
            for i in completed.into_iter().rev() {
                let wait = self.pending_sync.swap_remove(i);
                let at = wait.latest_ack;
                let (user, class, issued, routed) =
                    (wait.user, wait.class, wait.issued, wait.routed_slave);
                sim.schedule_event_at(
                    at.max(now),
                    ClusterEvent::Respond {
                        user,
                        class,
                        issued,
                        routed_slave: routed,
                    },
                );
            }
        }
        self.try_start(sim, node_idx);
    }

    // ------------------------------------------------------------------
    // Shipping
    // ------------------------------------------------------------------

    /// Ship all unshipped binlog events to every slave. Returns the
    /// per-slave delivery times of this batch.
    ///
    /// Under the shared-log backend this instead *publishes* the new events
    /// to the log service and returns no deliveries — slaves receive the
    /// batch when its quorum forms (see [`Self::log_ack`]).
    fn ship_new(&mut self, sim: &mut dyn ClusterHost) -> Vec<(usize, SimTime)> {
        if self.shared_log.is_some() {
            self.publish_to_log(sim);
            return Vec::new();
        }
        let head = self.nodes[0].engine.binlog().head();
        // GTID-style watermarks: stamp every newly committed sequence with
        // the commit (= ship-point) time. Monotone no-op when nothing is new.
        if let Some(layer) = self.consistency.as_mut() {
            layer.wm.note_master_seq(head.0, sim.now().as_millis_f64());
        }
        if head == self.shipped_upto || self.relays.is_empty() {
            self.shipped_upto = head;
            return Vec::new();
        }
        let events: Vec<BinlogEvent> = self.nodes[0].engine.binlog_from(self.shipped_upto).to_vec();
        self.shipped_upto = head;
        let master_zone = self.nodes[0].inst.zone();
        let mut deliveries = Vec::with_capacity(self.relays.len());
        for s in 0..self.relays.len() {
            if self.nodes[self.slave_node(s)].failed {
                continue; // no I/O thread to ship to; resync happens on replace
            }
            let zone = self.nodes[self.slave_node(s)].inst.zone();
            let mut at = sim.now() + self.net.delay(master_zone, zone);
            // FIFO channel: batches may not overtake each other.
            if at < self.chan_clear[s] {
                at = self.chan_clear[s];
            }
            self.chan_clear[s] = at;
            deliveries.push((s, at));
            let evs = events.clone();
            let epoch = self.repl_epoch;
            sim.schedule_event_at(
                at,
                ClusterEvent::Deliver {
                    slave: s,
                    epoch,
                    events: evs,
                },
            );
        }
        deliveries
    }

    fn deliver(
        &mut self,
        sim: &mut dyn ClusterHost,
        slave: usize,
        epoch: u64,
        events: Vec<BinlogEvent>,
    ) {
        if epoch != self.repl_epoch {
            return; // shipped by a master deposed since; its log is void
        }
        // A replaced slave's relay silently discards duplicates from
        // deliveries that were in flight before the failure; apply jobs are
        // enqueued only for events actually accepted.
        let before = self.relays[slave].queued();
        let recv_before = self.relays[slave].received_upto().0;
        self.relays[slave].receive(events);
        let n = self.relays[slave].queued() - before;
        // Telemetry: each newly accepted event reached this slave's relay —
        // close the network leg of its trace and step the flow arrow.
        if self.telemetry.is_some() && n > 0 {
            let now = sim.now();
            let recv_after = self.relays[slave].received_upto().0;
            for lsn in (recv_before + 1)..=recv_after {
                let hit = self
                    .telemetry
                    .as_mut()
                    .and_then(|tl| tl.t.waterfall.on_deliver(slave, lsn, now));
                if let Some(trace) = hit {
                    self.obs.flow(
                        FlowPhase::Step,
                        Component::Repl,
                        slave as u32,
                        "writeset",
                        now,
                        trace,
                    );
                }
            }
        }
        self.stats.peak_relay_backlog = self
            .stats
            .peak_relay_backlog
            .max(self.relays[slave].backlog());
        self.obs.gauge(
            Component::Repl,
            slave as u32,
            "relay_backlog",
            self.relays[slave].backlog() as f64,
        );
        let node_idx = self.slave_node(slave);
        for _ in 0..n {
            self.enqueue_job(sim, node_idx, Job::Apply { slave });
        }
    }

    // ------------------------------------------------------------------
    // Shared-log backend: publish → quorum → tail delivery
    // ------------------------------------------------------------------

    /// Publish the master's new binlog events to the shared log: append
    /// them, compute each log replica's ack instant analytically from its
    /// fault timeline (retry/timeout/backoff, with an application-level
    /// re-send after the transport budget under a sustained partition), and
    /// schedule the [`ClusterEvent::LogAck`] stream. The quorum instant —
    /// the write's durability point and client-ack gate — is the quorum-th
    /// smallest ack, clamped monotone across batches (FIFO appends).
    fn publish_to_log(&mut self, sim: &mut dyn ClusterHost) {
        let head = self.nodes[0].engine.binlog().head();
        let published = self
            .shared_log
            .as_ref()
            .expect("publish_to_log is gated on the shared-log backend")
            .published_upto;
        if head == published {
            self.shared_log
                .as_mut()
                .expect("probed above")
                .last_publish_quorum = None;
            return;
        }
        let events = self.nodes[0].engine.binlog_from(published).to_vec();
        let now = sim.now();
        let now_us = now.as_micros();

        let sl = self.shared_log.as_mut().expect("probed above");
        sl.published_upto = head;
        sl.log.append(events.len() as u64);
        debug_assert_eq!(
            sl.log.appended_upto(),
            head,
            "log and binlog LSN spaces stay aligned"
        );
        sl.stats.appends += 1;
        sl.stats.records += events.len() as u64;
        sl.pending.extend(events);

        let service_us = sl.log.config().append_service_us;
        let policy = sl.log.config().retry;
        let quorum = sl.log.config().quorum;
        let mut ack_instants: Vec<u64> = Vec::with_capacity(sl.timelines.len());
        for r in 0..sl.timelines.len() {
            // Analytic ack with re-send: when the bounded transport retry
            // sequence gives up (sustained partition), the master buffers
            // the append and re-sends once the replica heals — durability
            // needs only the quorum, but the replica is not abandoned.
            let mut sent_us = now_us;
            let acked = loop {
                let ack = ack_time_us(&sl.timelines[r], &policy, sent_us, service_us);
                sl.stats.ack_retries += u64::from(ack.attempts.saturating_sub(1));
                match ack.acked_at_us {
                    Some(t) => break Some(t),
                    None => {
                        let give_up = sent_us.saturating_add(policy.give_up_after_us());
                        match sl.timelines[r].next_up(give_up) {
                            Some(up) => {
                                sl.stats.ack_resends += 1;
                                sent_us = up;
                            }
                            None => break None, // down forever (synthetic)
                        }
                    }
                }
            };
            let Some(t) = acked else { continue };
            // FIFO per replica: a log replica persists appends in order.
            let at = SimTime::from_micros(t).max(sl.ack_clear[r]);
            sl.ack_clear[r] = at;
            ack_instants.push(at.as_micros());
            sim.schedule_event_at(
                at,
                ClusterEvent::LogAck {
                    replica: r,
                    upto: head,
                },
            );
        }
        ack_instants.sort_unstable();
        let quorum_at = if ack_instants.len() >= quorum {
            SimTime::from_micros(ack_instants[quorum - 1])
        } else {
            // A quorum of replicas is partitioned past every retry: the
            // append cannot become durable now. Bounded give-up — ack the
            // client at the end of the retry budget and count the failure
            // (an availability event; durability is at risk only if the
            // master also dies before the partitions heal).
            sl.stats.quorum_failures += 1;
            now + SimDuration::from_micros(policy.give_up_after_us())
        };
        let quorum_at = quorum_at.max(sl.last_quorum_at);
        sl.last_quorum_at = quorum_at;
        sl.last_publish_quorum = Some(quorum_at);
        let wait_ms = (quorum_at - now).as_millis_f64();
        sl.stats.quorum_waits.push(wait_ms);
        if self.obs.is_enabled() {
            self.obs
                .span(Component::Repl, 0, "quorum_wait", now, quorum_at);
            self.obs
                .observe_sketch(Component::Repl, 0, "quorum_wait_ms", wait_ms);
            let lag = head.0
                - self
                    .shared_log
                    .as_ref()
                    .expect("probed above")
                    .durable_upto
                    .0;
            self.obs
                .tsdb_observe(Component::Repl, 0, "log_durable_lag", now, lag as f64);
        }
    }

    /// A log replica's ack lands: advance the untimed quorum state machine,
    /// and when the durable prefix moves, release the newly durable events —
    /// stamp the consistency watermark (quorum durability is the master
    /// sequence under this backend) and deliver the batch to every live
    /// slave's relay (the log tail the read replicas follow).
    fn log_ack(&mut self, sim: &mut dyn ClusterHost, replica: usize, upto: Lsn) {
        let now = sim.now();
        let sl = self
            .shared_log
            .as_mut()
            .expect("LogAck events only exist under the shared-log backend");
        let result = sl.log.ack(replica, upto);
        let counter = match result {
            AckResult::Durable(_) => "log_ack_durable",
            AckResult::Pending => "log_ack_pending",
            AckResult::DuplicateIgnored => "log_ack_duplicate",
            AckResult::LateAfterQuorum => "log_ack_late",
            AckResult::ReplicaDown => "log_ack_lost",
        };
        let newly_durable = match result {
            AckResult::Durable(d) if d > sl.durable_upto => {
                sl.durable_upto = d;
                let take = sl.pending.iter().take_while(|ev| ev.lsn < d).count();
                Some(sl.pending.drain(..take).collect::<Vec<BinlogEvent>>())
            }
            _ => None,
        };
        self.obs.incr(Component::Repl, replica as u32, counter, 1);
        if let Some(events) = newly_durable {
            let durable = self.shared_log.as_ref().expect("probed above").durable_upto;
            if let Some(layer) = self.consistency.as_mut() {
                layer.wm.note_master_seq(durable.0, now.as_millis_f64());
            }
            if self.obs.is_enabled() {
                self.obs.tsdb_observe(
                    Component::Repl,
                    0,
                    "log_durable_upto",
                    now,
                    durable.0 as f64,
                );
            }
            self.deliver_durable(sim, events);
        }
    }

    /// Fan the newly durable log events out to every live slave's relay —
    /// the slaves' log-tail stream. Reuses the FIFO shipping channels and
    /// the ordinary [`ClusterEvent::Deliver`] → apply pipeline, so the
    /// watermark, waterfall, and apply-scheduler planes see exactly the
    /// events a binlog backend would have sent, just gated on quorum.
    fn deliver_durable(&mut self, sim: &mut dyn ClusterHost, events: Vec<BinlogEvent>) {
        if events.is_empty() || self.relays.is_empty() {
            return;
        }
        // The log service lives in the master's zone (the paper's placement
        // keeps the write path local; cross-zone cost falls on the tails).
        let log_zone = self.cfg.master_zone;
        for s in 0..self.relays.len() {
            if self.nodes[self.slave_node(s)].failed {
                continue; // no tailer; a replacement reattaches via its relay cursor
            }
            let zone = self.nodes[self.slave_node(s)].inst.zone();
            let mut at = sim.now() + self.net.delay(log_zone, zone);
            if at < self.chan_clear[s] {
                at = self.chan_clear[s];
            }
            self.chan_clear[s] = at;
            let epoch = self.repl_epoch;
            sim.schedule_event_at(
                at,
                ClusterEvent::Deliver {
                    slave: s,
                    epoch,
                    events: events.clone(),
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Membership: failures, replacement, autoscaling
    // ------------------------------------------------------------------

    /// A client op was aimed at a node that failed before serving it; the
    /// driver reroutes it through the proxy (counting it as a retry).
    fn retry_elsewhere(
        &mut self,
        sim: &mut dyn ClusterHost,
        user: u32,
        op: Operation,
        issued: SimTime,
    ) {
        // The original routing decremented nothing; outstanding counts for
        // the dead slave are reset by fail_slave. Re-dispatch afresh.
        self.dispatch(sim, user, op, issued);
    }

    /// Kill slave `s`: it stops serving reads and applying writesets.
    pub fn fail_slave(&mut self, sim: &mut dyn ClusterHost, s: usize) {
        let node_idx = self.slave_node(s);
        if self.nodes[node_idx].failed {
            return;
        }
        self.nodes[node_idx].failed = true;
        self.proxy.set_alive(s, false);
        self.obs
            .instant(Component::Cluster, s as u32, "slave_failed", sim.now());
        self.events_log
            .push((sim.now(), format!("slave {s} failed")));
        // Drain its queue now (in-flight CPU job, if any, still completes —
        // modelling responses already on the wire).
        self.try_start(sim, node_idx);
    }

    /// Replace a failed slave: launch a fresh VM in the same zone, seed it
    /// from a master snapshot, and re-enter rotation after the initial sync.
    pub fn replace_slave(&mut self, sim: &mut dyn ClusterHost, s: usize) {
        let node_idx = self.slave_node(s);
        let zone = self.cfg.placement.slave_zone(self.cfg.master_zone);
        let inst = match self.cfg.pin_slave_host {
            Some(m) => self.provider.launch_on_host(zone, InstanceType::Small, m),
            None => self.provider.launch(zone, InstanceType::Small),
        };
        // Snapshot of the master's current state; replication resumes from
        // the current binlog head.
        let engine = self.nodes[0].engine.fork(ForkRole::Slave);
        let head = self.nodes[0].engine.binlog().head();
        let gen = self.nodes[node_idx].gen + 1;
        self.nodes[node_idx] = Node::new(inst, engine);
        self.nodes[node_idx].gen = gen;
        self.relays[s] = RelayQueue::starting_at(head);
        self.chan_clear[s] = sim.now();
        if let Some(layer) = self.consistency.as_mut() {
            layer.wm.reset_slave(s, head.0);
        }
        self.obs
            .instant(Component::Cluster, s as u32, "slave_replaced", sim.now());
        self.events_log.push((
            sim.now(),
            format!("slave {s} replaced (resync from {head})"),
        ));
        // It can serve reads immediately: the snapshot is current as of now.
        self.proxy.set_alive(s, true);
    }

    /// Kill the master. Writes start parking; reads keep flowing to slaves
    /// (stale, as async replication promises). Sync/semi-sync writes still
    /// waiting for acks are answered immediately (their commit outcome on
    /// the dead master is already fixed; clients observe an error-and-retry
    /// as a completed interaction here).
    pub fn fail_master(&mut self, sim: &mut dyn ClusterHost) {
        if self.nodes[0].failed {
            return;
        }
        self.nodes[0].failed = true;
        self.master_failed_at = Some(sim.now());
        self.obs
            .instant(Component::Cluster, 0, "master_failed", sim.now());
        self.events_log.push((sim.now(), "master failed".into()));
        for wait in std::mem::take(&mut self.pending_sync) {
            let (user, class, issued, routed) =
                (wait.user, wait.class, wait.issued, wait.routed_slave);
            let now = sim.now();
            sim.schedule_at(
                now,
                Box::new(move |w: &mut Cluster, sim| {
                    w.respond(sim, user, class, issued, routed);
                }),
            );
        }
        // Drop queued master work (heartbeats pause; client writes that were
        // already queued re-enter dispatch and park).
        self.try_start(sim, 0);
    }

    /// Automatic failover: promote the most up-to-date slave to master,
    /// count the lost writes, resynchronize every other slave from the new
    /// master's snapshot, and release parked writes.
    pub fn promote_best_slave(&mut self, sim: &mut dyn ClusterHost) {
        debug_assert!(self.nodes[0].failed, "promotion without a dead master");
        if self.shared_log.is_some() {
            // Shared-log backend: the log — not the master — is the
            // authority. Recovery is a reattach, not a rebuild.
            self.reattach_from_log(sim);
            return;
        }
        let Some(best) = (0..self.relays.len())
            .filter(|&s| !self.nodes[self.slave_node(s)].failed)
            .max_by_key(|&s| self.relays[s].applied_upto())
        else {
            return; // no live slave to promote; writes stay parked
        };

        // §II data loss: everything the old master logged beyond what the
        // promoted slave had applied is gone.
        let old_head = self.nodes[0].engine.binlog().head();
        self.lost_writes += old_head
            .0
            .saturating_sub(self.relays[best].applied_upto().0);

        // Swap the promoted node into slot 0; the dead master takes its
        // slave slot (and stays failed until/unless replaced). Both slots'
        // generations bump so completion events for jobs that were in
        // flight across the swap detect they are stale; the promotion
        // restarts service on both slots (busy flags reset, queues
        // re-dispatched below).
        let best_node = self.slave_node(best);
        self.nodes.swap(0, best_node);
        self.nodes[0].gen += 1;
        self.nodes[0].failed = false;
        self.nodes[0].busy = false;
        self.nodes[best_node].gen += 1;
        self.nodes[best_node].busy = false;
        self.nodes[0].engine.promote_to_master(self.cfg.format);
        self.proxy.set_alive(best, false); // that slot now holds the corpse

        // The promoted node's queued work (it was serving reads) and the
        // corpse's queued work both re-enter dispatch.
        for node in [0usize, best_node] {
            let orphans: Vec<Job> = self.nodes[node].queue.drain(..).collect();
            for job in orphans {
                match job {
                    Job::ClientOp {
                        user,
                        op,
                        issued,
                        routed_slave,
                        ..
                    } => {
                        if let Some(rs) = routed_slave {
                            self.proxy.read_done(rs, 1.0);
                        }
                        self.dispatch(sim, user, op, issued);
                    }
                    Job::Injected {
                        id,
                        op,
                        routed_slave,
                        ..
                    } => {
                        if let Some(rs) = routed_slave {
                            self.proxy.read_done(rs, 1.0);
                        }
                        self.inject_op(sim, id, op);
                    }
                    _ => {}
                }
            }
        }

        // New replication stream: fresh binlog, fresh epoch; every live
        // slave resyncs from a snapshot of the new master. The old sequence
        // space is void, and with it every session guarantee (lost writes
        // cannot be read-your-writes'd back into existence).
        if let Some(layer) = self.consistency.as_mut() {
            layer.wm.reset_all(0);
            layer.sessions.reset_all();
            layer.injected = SessionToken::new();
        }
        self.repl_epoch += 1;
        self.shipped_upto = Lsn(0);
        // The old sequence space is void — drop every trace keyed on it.
        if let Some(tl) = self.telemetry.as_mut() {
            let n = self.relays.len();
            tl.t.waterfall.on_epoch_reset(n);
        }
        for s in 0..self.relays.len() {
            self.relays[s] = RelayQueue::starting_at(Lsn(0));
            self.chan_clear[s] = sim.now();
            let node = self.slave_node(s);
            if !self.nodes[node].failed {
                let snapshot = self.nodes[0].engine.fork(ForkRole::Slave);
                self.nodes[node].engine = snapshot;
                // Queued reads must not be dropped silently — their users
                // would hang; push them back through the proxy.
                let orphans: Vec<Job> = self.nodes[node].queue.drain(..).collect();
                for job in orphans {
                    match job {
                        Job::ClientOp {
                            user,
                            op,
                            issued,
                            routed_slave,
                            ..
                        } => {
                            if let Some(rs) = routed_slave {
                                self.proxy.read_done(rs, 1.0);
                            }
                            self.dispatch(sim, user, op, issued);
                        }
                        Job::Injected {
                            id,
                            op,
                            routed_slave,
                            ..
                        } => {
                            if let Some(rs) = routed_slave {
                                self.proxy.read_done(rs, 1.0);
                            }
                            self.inject_op(sim, id, op);
                        }
                        _ => {}
                    }
                }
            }
        }
        // Honest rebuild cost: while a slave resyncs from the new master's
        // snapshot it cannot serve reads. `failover_resync` models the
        // snapshot-transfer + catch-up window (None keeps the historical
        // instant-resync behaviour and its committed baselines).
        let mut recovered_at = sim.now();
        if let Some(resync) = self.cfg.failover_resync {
            for s in 0..self.relays.len() {
                let node = self.slave_node(s);
                if s != best && !self.nodes[node].failed {
                    recovered_at = sim.now() + resync;
                    self.proxy.set_alive(s, false);
                    self.events_log
                        .push((sim.now(), format!("slave {s} out of rotation (resync)")));
                    sim.schedule_in(
                        resync,
                        Box::new(move |w: &mut Cluster, sim| {
                            w.proxy.set_alive(s, true);
                            w.events_log
                                .push((sim.now(), format!("slave {s} resynced, in rotation")));
                        }),
                    );
                }
            }
        }
        if let Some(failed_at) = self.master_failed_at.take() {
            self.recovery_ms = Some((recovered_at - failed_at).as_millis_f64());
        }
        self.obs
            .instant(Component::Cluster, best as u32, "slave_promoted", sim.now());
        self.events_log.push((
            sim.now(),
            format!(
                "slave {best} promoted to master ({} write event(s) lost)",
                self.lost_writes
            ),
        ));

        // Release parked writes.
        for (user, op, issued) in std::mem::take(&mut self.awaiting_master) {
            self.dispatch(sim, user, op, issued);
        }
        for (id, op) in std::mem::take(&mut self.awaiting_master_injected) {
            self.inject_op(sim, id, op);
        }
    }

    /// Shared-log failover: promote the most caught-up live slave and
    /// *reattach* it to the log at the last durable-quorum LSN. The log —
    /// not the dead master — is the database: every quorum-acked write
    /// survives (`lost_writes` counts only the never-acked tail past the
    /// published/durable frontier), the LSN space continues, and therefore
    /// the watermark table, session tokens, and replication epoch all
    /// survive too — no snapshot resync, no `reset_all`.
    fn reattach_from_log(&mut self, sim: &mut dyn ClusterHost) {
        let Some(best) = (0..self.relays.len())
            .filter(|&s| !self.nodes[self.slave_node(s)].failed)
            .max_by_key(|&s| self.relays[s].applied_upto())
        else {
            return; // no live slave to promote; writes stay parked
        };
        let now = sim.now();
        let published = self
            .shared_log
            .as_ref()
            .expect("reattach_from_log is gated on the shared-log backend")
            .published_upto;

        // Writes the dead master committed locally but never published to
        // the log are gone — and were never client-acked (the quorum gate
        // fires only after publish). Everything up to `published` is in the
        // log or in flight to it; the reattach replays it below.
        let old_head = self.nodes[0].engine.binlog().head();
        self.lost_writes += old_head.0.saturating_sub(published.0);

        // Catch the promoted slave up from the log: the tail
        // [applied_upto(best), published) replays from the corpse's binlog
        // (same record bytes the log holds — the sim keeps one copy).
        let applied_best = self.relays[best].applied_upto();
        let missing: Vec<BinlogEvent> = self.nodes[0]
            .engine
            .binlog_from(applied_best)
            .iter()
            .filter(|ev| ev.lsn < published)
            .cloned()
            .collect();

        let best_node = self.slave_node(best);
        self.nodes.swap(0, best_node);
        self.nodes[0].gen += 1;
        self.nodes[0].failed = false;
        self.nodes[0].busy = false;
        self.nodes[best_node].gen += 1;
        self.nodes[best_node].busy = false;

        // Replay the durable tail functionally, then promote at the
        // published LSN so the new master's binlog continues the space.
        let mut replay_demand_us = 0.0;
        let now_micros = self.nodes[0].inst.clock.read(now).0;
        for ev in &missing {
            let res = self.nodes[0]
                .engine
                .apply_event(ev, now_micros)
                .unwrap_or_else(|e| panic!("reattach replay of {:?} failed: {e}", ev.lsn));
            replay_demand_us += self.cost.apply_demand_us(&res);
        }
        self.nodes[0]
            .engine
            .promote_to_master_at(self.cfg.format, published);
        self.relays[best] = RelayQueue::starting_at(published);
        self.chan_clear[best] = now;
        self.proxy.set_alive(best, false); // that slot now holds the corpse
        if let Some(layer) = self.consistency.as_mut() {
            // The slot now holds the dead node; its watermark restarts when
            // a replacement attaches. No global reset: the LSN space lives.
            layer.wm.reset_slave(best, published.0);
        }

        // Both swapped slots' queued work re-enters dispatch (reads that
        // were queued on the promoted slave reroute; the corpse's queue
        // drains the same way the binlog path does it).
        for node in [0usize, best_node] {
            let orphans: Vec<Job> = self.nodes[node].queue.drain(..).collect();
            for job in orphans {
                match job {
                    Job::ClientOp {
                        user,
                        op,
                        issued,
                        routed_slave,
                        ..
                    } => {
                        if let Some(rs) = routed_slave {
                            self.proxy.read_done(rs, 1.0);
                        }
                        self.dispatch(sim, user, op, issued);
                    }
                    Job::Injected {
                        id,
                        op,
                        routed_slave,
                        ..
                    } => {
                        if let Some(rs) = routed_slave {
                            self.proxy.read_done(rs, 1.0);
                        }
                        self.inject_op(sim, id, op);
                    }
                    _ => {}
                }
            }
        }

        // Charge the replay to the new master's CPU: parked writes released
        // below queue behind it on the FIFO core, exactly the recovery
        // window the experiments measure.
        let replay_done = if replay_demand_us > 0.0 {
            self.nodes[0].inst.cpu.submit(
                now,
                SimDuration::from_micros(replay_demand_us.round() as u64),
            )
        } else {
            now
        };
        if let Some(failed_at) = self.master_failed_at.take() {
            self.recovery_ms = Some((replay_done - failed_at).as_millis_f64());
        }
        {
            let sl = self.shared_log.as_mut().expect("probed above");
            sl.recovery = Some((published, missing.len() as u64));
            // The new master publishes from `published`; acks already in
            // flight for ≤ published are still valid (same LSN space).
            sl.pending.retain(|ev| ev.lsn >= published);
        }

        self.obs
            .instant(Component::Cluster, best as u32, "slave_reattached", now);
        self.events_log.push((
            now,
            format!(
                "slave {best} promoted via log reattach at lsn {} ({} event(s) replayed, {} lost)",
                published.0,
                missing.len(),
                self.lost_writes
            ),
        ));

        // Release parked writes; they run after the replay drains.
        for (user, op, issued) in std::mem::take(&mut self.awaiting_master) {
            self.dispatch(sim, user, op, issued);
        }
        for (id, op) in std::mem::take(&mut self.awaiting_master_injected) {
            self.inject_op(sim, id, op);
        }
    }

    /// Record a per-leg read completion in this tree's proxy latency EWMA —
    /// the sharded front calls this once per scatter leg so each tree's
    /// latency-aware balancer sees the latencies it actually produced.
    pub(crate) fn note_read_done(&mut self, s: usize, latency_ms: f64) {
        self.proxy.read_done(s, latency_ms);
    }

    /// Launch an additional slave (scale-out). Returns its index.
    pub fn add_slave(&mut self, sim: &mut dyn ClusterHost, sync_duration: SimDuration) -> usize {
        let zone = self.cfg.placement.slave_zone(self.cfg.master_zone);
        let inst = match self.cfg.pin_slave_host {
            Some(m) => self.provider.launch_on_host(zone, InstanceType::Small, m),
            None => self.provider.launch(zone, InstanceType::Small),
        };
        let engine = self.nodes[0].engine.fork(ForkRole::Slave);
        let head = self.nodes[0].engine.binlog().head();
        self.nodes.push(Node::new(inst, engine));
        self.relays.push(RelayQueue::starting_at(head));
        self.chan_clear.push(sim.now());
        if let Some(layer) = self.consistency.as_mut() {
            layer.wm.push_slave(head.0);
        }
        let s = self.proxy.add_slave();
        debug_assert_eq!(s + 2, self.nodes.len(), "proxy and node lists in step");
        if let Some(tl) = self.telemetry.as_mut() {
            let n = self.relays.len();
            tl.t.waterfall.ensure_slaves(n);
        }
        self.obs
            .instant(Component::Cluster, s as u32, "slave_launched", sim.now());
        self.events_log
            .push((sim.now(), format!("slave {s} launched (autoscale)")));
        // Serve reads once the initial sync window elapses.
        sim.schedule_in(
            sync_duration,
            Box::new(move |w: &mut Cluster, sim| {
                w.proxy.set_alive(s, true);
                w.events_log
                    .push((sim.now(), format!("slave {s} in rotation")));
            }),
        );
        s
    }

    /// Observed staleness of slave `s` in milliseconds, estimated from the
    /// heartbeat stream: how far behind the newest issued heartbeat its
    /// applied heartbeats are. This is exactly the signal an
    /// application-managed controller can compute from its own tables.
    fn observed_staleness_ms(&self, s: usize) -> f64 {
        let issued = self.hb.issued();
        if issued == 0 {
            return 0.0;
        }
        // Applied heartbeats = rows in the slave's heartbeat table.
        let applied = self.nodes[self.slave_node(s)]
            .engine
            .table_rows("heartbeat")
            .unwrap_or(0) as i64;
        let behind = (issued - applied).max(0) as f64;
        behind * self.cfg.heartbeat_interval.as_millis_f64()
    }

    /// The *true* staleness of slave `s` right now (ms): the age of the
    /// oldest master-committed writeset it has not applied, 0 when fully
    /// caught up. Unlike `observed_staleness_ms` (heartbeat granularity,
    /// application-visible) this reads the master binlog directly — it is
    /// the ground truth the watermark estimator is judged against, and it
    /// sees writesets still in flight to the relay. Commit timestamps are
    /// master-clock stamps mapped back to sim time; the clock offset is
    /// tens of ms, bounded and identical across a sweep.
    fn true_staleness_ms(&self, s: usize, now: SimTime) -> f64 {
        let applied = self.relays[s].applied_upto();
        match self.nodes[0].engine.binlog_from(applied).first() {
            None => 0.0,
            Some(ev) => {
                let sim_us = (ev.commit_ts_micros - WALL_EPOCH_MICROS).max(0) as u64;
                let committed = SimTime::from_micros(sim_us);
                if now > committed {
                    (now - committed).as_millis_f64()
                } else {
                    0.0
                }
            }
        }
    }

    fn autoscale_tick(&mut self, sim: &mut dyn ClusterHost, auto: crate::config::AutoscaleConfig) {
        let now = sim.now();
        if now < self.phases.load_end() {
            let worst = (0..self.relays.len())
                .filter(|&s| !self.nodes[self.slave_node(s)].failed)
                .map(|s| self.observed_staleness_ms(s))
                .fold(0.0f64, f64::max);
            let cooled = now >= self.last_scale_action + auto.cooldown;
            if worst > auto.staleness_slo_ms && self.relays.len() < auto.max_slaves && cooled {
                self.last_scale_action = now;
                self.add_slave(sim, auto.sync_duration);
            }
            sim.schedule_in(
                auto.check_interval,
                Box::new(move |w: &mut Cluster, sim| {
                    w.autoscale_tick(sim, auto.clone());
                }),
            );
        }
    }

    /// Membership timeline (failures, replacements, scale-outs).
    pub fn events_log(&self) -> &[(SimTime, String)] {
        &self.events_log
    }

    /// Current number of attached slaves (grows under autoscaling).
    pub fn current_slaves(&self) -> usize {
        self.relays.len()
    }

    // ------------------------------------------------------------------
    // Final measurement
    // ------------------------------------------------------------------

    /// Assemble the run report (after the simulation has drained).
    pub fn report(&mut self, sim_events: u64) -> RunReport {
        let phases = self.phases;
        let steady_secs = (phases.steady_end() - phases.steady_start()).as_secs_f64();

        // Replication delay per slave, via the heartbeat tables.
        let n_slaves_now = self.relays.len();
        let mut delays = Vec::with_capacity(n_slaves_now);
        let hb_emitted = self.stats.hb_emitted.clone();
        let steady_emitted: Vec<i64> = hb_emitted
            .iter()
            .filter(|(_, t)| phases.in_steady(*t))
            .map(|&(id, _)| id)
            .collect();
        for s in 0..n_slaves_now {
            if self.nodes[s + 1].failed {
                // A dead (or deposed-master) slot measures nothing.
                delays.push(DelayReport {
                    baseline_ms: None,
                    loaded_ms: None,
                    relative_ms: None,
                    loaded_samples: 0,
                    missing_samples: steady_emitted.len(),
                });
                continue;
            }
            let (master, rest) = self.nodes.split_at_mut(1);
            let samples = collect_samples(&mut master[0].engine, &mut rest[s].engine)
                .expect("heartbeat tables exist on every replica");
            let mut idle = Vec::new();
            let mut loaded = Vec::new();
            for sample in &samples {
                // Map the master-local commit timestamp back to sim time;
                // clock offsets are tens of ms against minute-scale windows.
                let sim_us = (sample.master_ts_micros - WALL_EPOCH_MICROS).max(0) as u64;
                let t = SimTime::from_micros(sim_us);
                if phases.in_idle(t) {
                    idle.push(sample.delay_ms());
                } else if phases.in_steady(t) {
                    loaded.push(sample.delay_ms());
                }
            }
            let baseline = trimmed_mean(&idle, 0.05);
            let loaded_mean = trimmed_mean(&loaded, 0.05);
            delays.push(DelayReport {
                baseline_ms: baseline,
                loaded_ms: loaded_mean,
                relative_ms: match (loaded_mean, baseline) {
                    (Some(l), Some(b)) => Some(l - b),
                    _ => None,
                },
                loaded_samples: loaded.len(),
                missing_samples: steady_emitted.len().saturating_sub(loaded.len()),
            });
        }

        RunReport {
            users: self.cfg.workload.concurrent_users,
            n_slaves: self.cfg.n_slaves,
            final_slaves: n_slaves_now,
            membership_events: self
                .events_log
                .iter()
                .map(|(t, e)| (t.as_secs_f64(), e.clone()))
                .collect(),
            lost_writes: self.lost_writes,
            steady_ops: self.stats.steady_ops,
            steady_reads: self.stats.steady_reads,
            steady_writes: self.stats.steady_writes,
            steady_slave_reads: self.stats.steady_slave_reads,
            throughput_ops_s: self.stats.steady_ops as f64 / steady_secs,
            latency_ms: Summary::of(&self.stats.latencies_ms),
            master_utilization: self.stats.master_util,
            slave_utilizations: self.stats.slave_utils.clone(),
            delays,
            reads_per_slave: self.proxy.reads_per_slave().to_vec(),
            peak_relay_backlog: self.stats.peak_relay_backlog,
            apply_batches: self.stats.apply_batches,
            apply_events: self.stats.apply_events,
            pool_stats: (self.pool.total_acquired(), self.pool.total_waited()),
            consistency: self.consistency.as_ref().map(|l| ConsistencyReport {
                policy: l.cfg.policy.label(),
                fallback: l.cfg.fallback.label(),
                redirects_master: l.redirects_master,
                waits: l.waits,
                wait_ms_total: l.wait_ms_total,
                sla_violations: l.sla_violations,
                sla_violations_steady: l.sla_violations_steady,
                served_staleness_mean_ms: l.served_staleness.mean(),
                served_staleness_max_ms: l.served_staleness.max(),
                served_staleness_samples: l.served_staleness.count(),
            }),
            shared_log: self.shared_log.as_ref().map(|sl| {
                let horizon_us = self.phases.hard_end().as_micros();
                SharedLogReport {
                    appends: sl.stats.appends,
                    records: sl.stats.records,
                    durable_lsn: sl.durable_upto.0,
                    published_lsn: sl.published_upto.0,
                    quorum_wait_mean_ms: sl.stats.quorum_waits.mean(),
                    quorum_wait_max_ms: sl.stats.quorum_waits.max(),
                    ack_retries: sl.stats.ack_retries,
                    ack_resends: sl.stats.ack_resends,
                    quorum_failures: sl.stats.quorum_failures,
                    replica_downtime_ms: sl
                        .timelines
                        .iter()
                        .map(|tl| tl.downtime_us(horizon_us) as f64 / 1_000.0)
                        .collect(),
                    recovery: sl.recovery.map(|(lsn, replayed)| (lsn.0, replayed)),
                }
            }),
            recovery_ms: self.recovery_ms,
            sim_events,
        }
    }

    /// Direct engine access (node 0 is the master) for tests and examples.
    pub fn engine_mut(&mut self, node: usize) -> &mut Engine {
        &mut self.nodes[node].engine
    }

    /// The relay queue of slave `s`.
    pub fn relay(&self, s: usize) -> &RelayQueue {
        &self.relays[s]
    }

    /// The observability recorder ([`Obs::Null`] unless enabled in config).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable recorder access (custom timelines recording their own marks).
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Detach the recorder, leaving [`Obs::Null`] behind. Call after the
    /// run to export traces without keeping the whole world alive.
    pub fn take_obs(&mut self) -> Obs {
        std::mem::take(&mut self.obs)
    }

    /// The live telemetry bundle (`None` unless `cfg.telemetry.enabled`).
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref().map(|tl| &tl.t)
    }

    /// Detach the telemetry bundle after the run (waterfall + alerts).
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.telemetry.take().map(|tl| tl.t)
    }

    /// Steady-window bottleneck attribution: one row per CPU (master and
    /// each slave slot) plus the connection pool, naming the saturated
    /// resource. Meaningful once the steady window has ended (utilizations
    /// are captured by the `steady_end` marker).
    pub fn bottleneck_report(&self) -> BottleneckReport {
        let mut rep = BottleneckReport::with_default_threshold();
        rep.push(ResourceUsage {
            comp: Component::Cpu,
            inst: 0,
            label: "master cpu".to_string(),
            utilization: self.stats.master_util,
            peak_queue: self.stats.steady_peak_queue.first().copied().unwrap_or(0),
        });
        for (s, &util) in self.stats.slave_utils.iter().enumerate() {
            rep.push(ResourceUsage {
                comp: Component::Cpu,
                inst: (s + 1) as u32,
                label: format!("slave{s} cpu"),
                utilization: util,
                peak_queue: self
                    .stats
                    .steady_peak_queue
                    .get(s + 1)
                    .copied()
                    .unwrap_or(0),
            });
        }
        // Pool "utilization": peak checkouts over capacity. Saturation here
        // means users queue for connections before any CPU is even asked.
        let (peak_active, _) = self.pool.peaks();
        let capacity = if self.cfg.pool_max_active == 0 {
            self.cfg.workload.concurrent_users as usize
        } else {
            self.cfg.pool_max_active
        };
        rep.push(ResourceUsage {
            comp: Component::Pool,
            inst: 0,
            label: "connection pool".to_string(),
            utilization: if capacity > 0 {
                peak_active as f64 / capacity as f64
            } else {
                0.0
            },
            peak_queue: self.stats.steady_peak_waiting,
        });
        rep
    }
}

/// Execute one full benchmark run for `cfg` and return its report.
pub fn run_cluster(cfg: ClusterConfig) -> RunReport {
    let mut sim: S = Sim::new();
    let mut world = Cluster::new(cfg);
    world.schedule_timeline(&mut sim);
    sim.run(&mut world);
    let events = sim.events_executed();
    world.report(events)
}

/// Like [`run_cluster`], but also returns the observability recorder and the
/// steady-window bottleneck report. Forces `cfg.obs.enabled = true`.
pub fn run_cluster_observed(mut cfg: ClusterConfig) -> (RunReport, Obs, BottleneckReport) {
    cfg.obs.enabled = true;
    let mut sim: S = Sim::new();
    let mut world = Cluster::new(cfg);
    world.schedule_timeline(&mut sim);
    sim.run(&mut world);
    let events = sim.events_executed();
    let report = world.report(events);
    let bottleneck = world.bottleneck_report();
    (report, world.take_obs(), bottleneck)
}

/// Like [`run_cluster_observed`], but with telemetry enabled too: causal
/// write tracing (the staleness waterfall) and the SLO/alert engine.
/// Forces `cfg.telemetry.enabled = true` (which implies observability).
pub fn run_cluster_telemetry(
    mut cfg: ClusterConfig,
) -> (RunReport, Obs, BottleneckReport, Telemetry) {
    cfg.telemetry.enabled = true;
    let mut sim: S = Sim::new();
    let mut world = Cluster::new(cfg);
    world.schedule_timeline(&mut sim);
    sim.run(&mut world);
    let events = sim.events_executed();
    let report = world.report(events);
    let bottleneck = world.bottleneck_report();
    let telemetry = world.take_telemetry().expect("telemetry was enabled");
    (report, world.take_obs(), bottleneck, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdb_cloudstone::{DataSize, WorkloadConfig};

    fn quick_cfg(users: u32, slaves: usize) -> ClusterConfig {
        ClusterConfig::builder()
            .slaves(slaves)
            .workload(WorkloadConfig::quick(users))
            .data_size(DataSize { scale: 30 })
            .seed(7)
            .build()
    }

    #[test]
    fn small_run_completes_and_reports() {
        let r = run_cluster(quick_cfg(10, 2));
        assert!(r.steady_ops > 0, "ops completed in steady window");
        assert!(r.throughput_ops_s > 0.5, "got {}", r.throughput_ops_s);
        assert_eq!(r.delays.len(), 2);
        assert_eq!(r.n_slaves, 2);
        assert!(r.latency_ms.is_some());
        for d in &r.delays {
            assert!(d.baseline_ms.is_some(), "idle heartbeats measured");
            assert!(d.loaded_ms.is_some(), "steady heartbeats measured");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_cluster(quick_cfg(8, 1));
        let b = run_cluster(quick_cfg(8, 1));
        assert_eq!(a.steady_ops, b.steady_ops);
        assert_eq!(a.sim_events, b.sim_events);
        assert_eq!(
            a.delays[0].loaded_ms.unwrap(),
            b.delays[0].loaded_ms.unwrap()
        );
    }

    #[test]
    fn reads_are_distributed_and_writes_hit_master() {
        let r = run_cluster(quick_cfg(12, 3));
        let total_reads: u64 = r.reads_per_slave.iter().sum();
        assert!(total_reads > 0);
        assert!(
            r.reads_per_slave.iter().all(|&c| c > 0),
            "round-robin spreads reads: {:?}",
            r.reads_per_slave
        );
        assert!(r.steady_writes > 0);
    }

    #[test]
    fn replicas_converge_after_drain() {
        let cfg = quick_cfg(10, 2);
        let mut sim: S = Sim::new();
        let mut world = Cluster::new(cfg);
        world.schedule_timeline(&mut sim);
        sim.run(&mut world);
        // After drain every relay must be empty and replica row counts match
        // the master exactly (eventual consistency reached).
        for s in 0..2 {
            assert_eq!(world.relay(s).backlog(), 0, "slave {s} drained");
        }
        for table in ["users", "events", "comments", "attendees", "heartbeat"] {
            let m = world.engine_mut(0).table_rows(table);
            for node in 1..=2 {
                assert_eq!(
                    m,
                    world.engine_mut(node).table_rows(table),
                    "table {table} diverged on node {node}"
                );
            }
        }
    }

    #[test]
    fn more_users_more_throughput_below_saturation() {
        let lo = run_cluster(quick_cfg(5, 2));
        let hi = run_cluster(quick_cfg(15, 2));
        assert!(
            hi.throughput_ops_s > lo.throughput_ops_s * 1.5,
            "closed loop scales below saturation: {} vs {}",
            lo.throughput_ops_s,
            hi.throughput_ops_s
        );
    }

    #[test]
    fn sync_mode_still_converges() {
        let mut cfg = quick_cfg(6, 2);
        cfg.mode = ReplMode::Sync;
        let r = run_cluster(cfg);
        assert!(r.steady_ops > 0);
        assert!(r.steady_writes > 0, "sync writes completed");
    }

    #[test]
    fn semisync_mode_completes() {
        let mut cfg = quick_cfg(6, 2);
        cfg.mode = ReplMode::SemiSync;
        let r = run_cluster(cfg);
        assert!(r.steady_writes > 0);
    }

    #[test]
    fn zero_slaves_runs_reads_on_master() {
        let r = run_cluster(quick_cfg(5, 0));
        assert!(r.steady_ops > 0);
        assert!(r.delays.is_empty());
    }

    #[test]
    fn default_config_keeps_observability_off() {
        let world = Cluster::new(quick_cfg(5, 1));
        assert!(!world.obs().is_enabled(), "obs must be opt-in");
    }

    #[test]
    fn observed_run_traces_all_layers() {
        let (r, obs, bn) = run_cluster_observed(quick_cfg(10, 2));
        assert!(r.steady_ops > 0, "observed run still completes");
        let rec = obs.recorder().expect("recorder present when observed");
        assert!(!rec.records().is_empty());
        let comps: std::collections::BTreeSet<&str> = rec
            .records()
            .iter()
            .map(|x| x.component().as_str())
            .collect();
        for c in ["cpu", "pool", "proxy", "repl", "sql", "cluster"] {
            let present =
                comps.contains(c) || rec.registry().iter().any(|(k, _)| k.comp.as_str() == c);
            assert!(present, "component {c} missing from trace and registry");
        }
        // master + 2 slaves + pool
        assert_eq!(bn.rows().len(), 4);
        assert!(bn.rows().iter().any(|row| row.label == "master cpu"));
    }

    #[test]
    fn observed_run_matches_unobserved_results() {
        // Observability must not perturb the simulation: same seed, same
        // physics, with and without the recorder.
        let plain = run_cluster(quick_cfg(8, 2));
        let (observed, _, _) = run_cluster_observed(quick_cfg(8, 2));
        assert_eq!(plain.steady_ops, observed.steady_ops);
        assert_eq!(plain.steady_writes, observed.steady_writes);
        assert_eq!(
            plain.delays[0].loaded_ms, observed.delays[0].loaded_ms,
            "replication delays identical under observation"
        );
        // Telemetry is measurement-only too: tracing every write and
        // running the SLO engine must leave the workload results untouched.
        let (telem, _, _, t) = run_cluster_telemetry(quick_cfg(8, 2));
        assert_eq!(plain.steady_ops, telem.steady_ops);
        assert_eq!(plain.steady_writes, telem.steady_writes);
        assert_eq!(plain.latency_ms, telem.latency_ms);
        assert_eq!(
            plain.delays[0].loaded_ms, telem.delays[0].loaded_ms,
            "replication delays identical under telemetry"
        );
        assert!(t.waterfall.committed > 0, "writes were traced");
    }

    #[test]
    fn telemetry_traces_full_write_pipeline() {
        let (_, obs, _, t) = run_cluster_telemetry(quick_cfg(8, 2));
        // Every leg of the waterfall saw traffic on both slaves.
        assert_eq!(t.waterfall.n_slaves(), 2);
        for leg in t.waterfall.legs() {
            assert!(leg.applied > 0, "writesets applied on each slave");
            assert!(leg.network_ms.count() > 0);
            assert!(leg.queue_ms.count() > 0);
            assert!(leg.apply_ms.count() > 0);
            assert!(leg.e2e_ms.count() > 0);
        }
        assert!(t.waterfall.client().commit_ms.count() > 0);
        // The causal chain reaches the trace as flow records, and the
        // chrome export renders them.
        let rec = obs.recorder().expect("telemetry implies observability");
        let flows = rec
            .records()
            .iter()
            .filter(|r| matches!(r, amdb_obs::Record::Flow { .. }))
            .count();
        assert!(flows > 0, "flow records present");
        let json = obs.chrome_trace().unwrap();
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        // Sketch registry rows exist for the migrated probes.
        let summary = rec.registry().summary_table().render();
        assert!(summary.contains("client_latency_ms"));
        assert!(summary.contains("demand_write_us"));
    }

    #[test]
    fn telemetry_sketch_agrees_with_exact_percentiles() {
        // The proxy's client-latency sketch and the report's exact sample
        // vector measure different windows (sketch = whole run, report =
        // steady window), so compare the sketch against itself via its
        // error contract: p50 ≤ p95 ≤ p99 ≤ max, and the mean is finite.
        let (report, obs, _, _) = run_cluster_telemetry(quick_cfg(8, 1));
        let rec = obs.recorder().unwrap();
        let mut total = amdb_metrics::QuantileSketch::latency();
        for (key, metric) in rec.registry().iter() {
            if key.name == "client_latency_ms" {
                if let amdb_obs::Metric::Sketch(s) = metric {
                    total.merge(s);
                }
            }
        }
        assert!(total.count() > 0);
        let p50 = total.percentile(50.0).unwrap();
        let p95 = total.percentile(95.0).unwrap();
        let p99 = total.percentile(99.0).unwrap();
        assert!(p50 <= p95 && p95 <= p99 && p99 <= total.max().unwrap());
        // The steady-window exact median lies within the sketch's full-run
        // range — a sanity link between the two measurement paths.
        let exact = report.latency_ms.unwrap();
        assert!(exact.median >= total.min().unwrap() && exact.median <= total.max().unwrap());
    }
}
