//! Run results.

use amdb_metrics::Summary;

/// Replication-delay measurements for one slave.
#[derive(Debug, Clone)]
pub struct DelayReport {
    /// Trimmed-mean measured delay with no load (idle window), ms. Includes
    /// the master↔slave clock offset — the paper's baseline term.
    pub baseline_ms: Option<f64>,
    /// Trimmed-mean measured delay in the steady window, ms.
    pub loaded_ms: Option<f64>,
    /// The paper's *average relative replication delay*: loaded − baseline,
    /// which cancels the clock offset (§IV-B.1).
    pub relative_ms: Option<f64>,
    /// Heartbeats matched in the loaded window.
    pub loaded_samples: usize,
    /// Heartbeats emitted in the steady window that never applied before the
    /// drain cap (their delay exceeds the measured values).
    pub missing_samples: usize,
}

/// Consistency-layer statistics for one run (present only when the run was
/// configured with a consistency policy, `ClusterConfig::consistency`).
#[derive(Debug, Clone)]
pub struct ConsistencyReport {
    /// Active policy label (e.g. `bounded(250ms)`).
    pub policy: String,
    /// Active fallback label (e.g. `redirect-to-master`).
    pub fallback: String,
    /// Reads the policy layer redirected to the master because live slaves
    /// existed but none qualified (distinct from the proxy's no-slave-alive
    /// fallback).
    pub redirects_master: u64,
    /// Wait-for-catchup parks issued (one read can park repeatedly).
    pub waits: u64,
    /// Total time reads spent parked waiting for catch-up (ms).
    pub wait_ms_total: f64,
    /// Slave-served reads whose *true* staleness at service start exceeded
    /// the bound (BoundedStaleness only) — the estimator let them through.
    pub sla_violations: u64,
    /// ... of which inside the steady window.
    pub sla_violations_steady: u64,
    /// Mean true staleness over all slave-served reads (ms).
    pub served_staleness_mean_ms: Option<f64>,
    /// Worst true staleness any slave-served read observed (ms).
    pub served_staleness_max_ms: Option<f64>,
    /// Number of slave-served reads measured.
    pub served_staleness_samples: u64,
}

impl ConsistencyReport {
    /// Share of steady-window reads that violated the staleness bound.
    pub fn violation_rate(&self, steady_reads: u64) -> f64 {
        if steady_reads == 0 {
            0.0
        } else {
            self.sla_violations_steady as f64 / steady_reads as f64
        }
    }
}

/// Shared-log service statistics for one run (present only when the run was
/// configured with `ClusterConfig::backend(BackendKind::SharedLog)`).
#[derive(Debug, Clone)]
pub struct SharedLogReport {
    /// Append batches the master published to the log service.
    pub appends: u64,
    /// Log records (binlog events) published.
    pub records: u64,
    /// Quorum-durable prefix at end of run.
    pub durable_lsn: u64,
    /// Published (appended) prefix at end of run.
    pub published_lsn: u64,
    /// Mean wait from publish to quorum durability (ms).
    pub quorum_wait_mean_ms: Option<f64>,
    /// Worst publish→quorum wait (ms).
    pub quorum_wait_max_ms: Option<f64>,
    /// Transport-level append retries (timeout + backoff re-attempts).
    pub ack_retries: u64,
    /// Application-level re-sends after the transport retry budget gave up
    /// (sustained partitions; the replica was re-fed after healing).
    pub ack_resends: u64,
    /// Appends that could not reach quorum inside the full retry budget.
    pub quorum_failures: u64,
    /// Per-log-replica scheduled downtime over the run horizon (ms).
    pub replica_downtime_ms: Vec<f64>,
    /// Failover reattach, if one happened: (reattach LSN, events replayed
    /// on the promoted slave to reach it).
    pub recovery: Option<(u64, u64)>,
}

/// The outcome of one full benchmark run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Concurrent users configured.
    pub users: u32,
    /// Number of slaves configured at launch.
    pub n_slaves: usize,
    /// Number of slaves attached at the end of the run (autoscaling may have
    /// grown it).
    pub final_slaves: usize,
    /// Membership timeline: `(t_seconds, event)` for failures, replacements
    /// and scale-outs.
    pub membership_events: Vec<(f64, String)>,
    /// Writes committed on a failed master that no surviving replica had
    /// applied — the asynchronous-replication data-loss window of §II.
    pub lost_writes: u64,
    /// Operations completed inside the steady window.
    pub steady_ops: u64,
    /// ... of which reads.
    pub steady_reads: u64,
    /// ... of which writes.
    pub steady_writes: u64,
    /// ... of the reads, how many a slave served (the rest hit the master
    /// via proxy fallback or a consistency redirect).
    pub steady_slave_reads: u64,
    /// End-to-end throughput over the steady window (operations/second) —
    /// the y-axis of Figs 2 and 3.
    pub throughput_ops_s: f64,
    /// End-to-end operation latency summary over the steady window (ms).
    pub latency_ms: Option<Summary>,
    /// Master CPU utilization over the steady window (can exceed 1.0 when
    /// offered demand outstrips capacity).
    pub master_utilization: f64,
    /// Per-slave CPU utilization over the steady window.
    pub slave_utilizations: Vec<f64>,
    /// Per-slave replication delay (Figs 5 and 6).
    pub delays: Vec<DelayReport>,
    /// Reads routed per slave by the proxy.
    pub reads_per_slave: Vec<u64>,
    /// Peak relay backlog (events) observed across slaves.
    pub peak_relay_backlog: u64,
    /// Apply batches dispatched across all slaves over the whole run.
    /// Equals [`Self::apply_events`] with the serial apply thread
    /// (`apply_workers == 1`); smaller when group commit batches events.
    pub apply_batches: u64,
    /// Binlog events applied across all slaves over the whole run.
    pub apply_events: u64,
    /// Pool statistics: (total acquired, total that had to wait).
    pub pool_stats: (u64, u64),
    /// Consistency-layer statistics (None unless the run opted in).
    pub consistency: Option<ConsistencyReport>,
    /// Shared-log service statistics (None unless the run used the
    /// shared-log backend).
    pub shared_log: Option<SharedLogReport>,
    /// Failure → fully-recovered window of the (single) master failover, ms.
    /// Statement backend: promotion + snapshot resync (`failover_resync`).
    /// Shared-log backend: promotion + durable-tail replay.
    pub recovery_ms: Option<f64>,
    /// Events executed by the simulation kernel (diagnostics).
    pub sim_events: u64,
}

impl RunReport {
    /// Mean relative replication delay across slaves (ms) — each sub-figure
    /// of Figs 5/6 plots this per slave count.
    pub fn avg_relative_delay_ms(&self) -> Option<f64> {
        let vals: Vec<f64> = self.delays.iter().filter_map(|d| d.relative_ms).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Highest slave utilization (the saturation indicator for slaves).
    pub fn max_slave_utilization(&self) -> f64 {
        self.slave_utilizations
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delay(rel: Option<f64>) -> DelayReport {
        DelayReport {
            baseline_ms: Some(3.0),
            loaded_ms: rel.map(|r| r + 3.0),
            relative_ms: rel,
            loaded_samples: 10,
            missing_samples: 0,
        }
    }

    #[test]
    fn avg_relative_delay_skips_missing() {
        let r = RunReport {
            users: 100,
            n_slaves: 3,
            final_slaves: 3,
            membership_events: vec![],
            lost_writes: 0,
            steady_ops: 0,
            steady_reads: 0,
            steady_writes: 0,
            steady_slave_reads: 0,
            throughput_ops_s: 0.0,
            latency_ms: None,
            master_utilization: 0.0,
            slave_utilizations: vec![0.5, 0.9, 0.2],
            delays: vec![delay(Some(10.0)), delay(None), delay(Some(20.0))],
            reads_per_slave: vec![],
            peak_relay_backlog: 0,
            apply_batches: 0,
            apply_events: 0,
            pool_stats: (0, 0),
            consistency: None,
            shared_log: None,
            recovery_ms: None,
            sim_events: 0,
        };
        assert_eq!(r.avg_relative_delay_ms(), Some(15.0));
        assert_eq!(r.max_slave_utilization(), 0.9);
    }
}
