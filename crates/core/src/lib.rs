//! # amdb-core — the application-managed replicated database tier
//!
//! This crate is the paper's *system*: a master-slave replicated database
//! tier whose replicas run in virtual machines of a (simulated) public
//! cloud, fronted by a connection pool and a read/write-splitting proxy, and
//! driven by the modified Cloudstone workload — the full three-layer
//! experiment setup of §III-B, as a library.
//!
//! The main entry points:
//!
//! * [`ClusterConfig`] / [`ClusterBuilder`] — describe a deployment: number
//!   of slaves, their geographic placement, read/write mix, data size,
//!   workload, replication mode/format, balancing policy, and all
//!   calibration knobs;
//! * [`run_cluster`] — execute one full benchmark run (idle baseline →
//!   ramp-up → measured steady stage → ramp-down → drain) in simulated time
//!   and return a [`RunReport`] with end-to-end throughput, latency,
//!   per-slave replication delay (absolute and *relative*, the paper's
//!   headline staleness metric), utilizations and routing statistics;
//! * [`Cluster`] — the simulation world itself, for callers who want to
//!   script custom timelines.
//!
//! Everything is deterministic in `ClusterConfig::seed`.

pub mod cluster;
pub mod config;
pub mod report;
pub mod sharded;

pub use amdb_consistency::{ConsistencyConfig, ConsistencyPolicy, FallbackPolicy, SeqSource};
pub use amdb_obs::ObsConfig;
pub use amdb_repl::{BackendKind, FaultTimeline, LogStoreConfig, RetryPolicy};
pub use amdb_telemetry::{Telemetry, TelemetryConfig};
pub use cluster::{run_cluster, run_cluster_observed, run_cluster_telemetry, Cluster};
pub use config::{
    AutoscaleConfig, BalancerKind, ClusterBuilder, ClusterConfig, FaultPlan, LogFaultPlan,
    MasterFaultPlan, Placement, WorkloadKind,
};
pub use report::{ConsistencyReport, DelayReport, RunReport, SharedLogReport};
pub use sharded::{
    run_sharded_cluster, run_sharded_observed, run_sharded_telemetry, run_sharded_with_template,
    FleetObsBundle, ShardedConfig, ShardedReport,
};
