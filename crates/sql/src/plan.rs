//! Heuristic access-path planning: index selection from WHERE / ON clauses.
//!
//! The planner is deliberately MySQL-5-era in spirit: for each table access
//! it picks, in order of preference, a primary-key point lookup, a secondary
//! index point lookup, a primary-key range, a secondary index range, or a
//! full scan. Join lookups reuse the same machinery with the "constant" side
//! allowed to reference columns of already-bound tables.

use crate::ast::{BinOp, Expr};
use crate::storage::Table;

/// How the executor should locate candidate rows for one table access.
#[derive(Debug, Clone, PartialEq)]
pub enum Path {
    /// Scan every row.
    FullScan,
    /// Primary key equality: `pk = key`.
    PkEq { key: Expr },
    /// Secondary-index equality on `column`: `col = key`.
    IndexEq { column: usize, key: Expr },
    /// Primary key range.
    PkRange {
        lo: Option<(Expr, bool)>,
        hi: Option<(Expr, bool)>,
    },
    /// Secondary-index range on `column`. Bounds are `(expr, inclusive)`.
    IndexRange {
        column: usize,
        lo: Option<(Expr, bool)>,
        hi: Option<(Expr, bool)>,
    },
}

impl Path {
    /// Human-readable plan description (EXPLAIN-style; used in tests).
    pub fn describe(&self) -> String {
        match self {
            Path::FullScan => "full scan".into(),
            Path::PkEq { .. } => "pk eq".into(),
            Path::IndexEq { column, .. } => format!("index eq col{column}"),
            Path::PkRange { .. } => "pk range".into(),
            Path::IndexRange { column, .. } => format!("index range col{column}"),
        }
    }
}

/// Split a boolean expression into top-level AND conjuncts.
pub fn split_conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn rec<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary(a, BinOp::And, b) = e {
            rec(a, out);
            rec(b, out);
        } else {
            out.push(e);
        }
    }
    rec(expr, &mut out);
    out
}

/// Does `expr` reference any column *of this binding*? A column belongs to
/// the binding when its qualifier names the binding, or when it is
/// unqualified and the table's schema has a column of that name.
fn references_binding(expr: &Expr, binding: &str, table: &Table) -> bool {
    let mut found = false;
    expr.walk(&mut |e| {
        if let Expr::Column { qualifier, name } = e {
            let belongs = match qualifier {
                Some(q) => q.eq_ignore_ascii_case(binding),
                None => table.schema().column_index(name).is_some(),
            };
            if belongs {
                found = true;
            }
        }
    });
    found
}

/// If `expr` is a column of this binding, return its column index.
fn own_column(expr: &Expr, binding: &str, table: &Table) -> Option<usize> {
    if let Expr::Column { qualifier, name } = expr {
        let qualifies = match qualifier {
            Some(q) => q.eq_ignore_ascii_case(binding),
            None => true,
        };
        if qualifies {
            return table.schema().column_index(name);
        }
    }
    None
}

/// A sargable conjunct: `column <op> key` where `key` does not reference the
/// binding (so it can be evaluated before scanning the table).
#[derive(Debug, Clone)]
struct Sarg {
    column: usize,
    op: BinOp,
    key: Expr,
}

fn extract_sargs(filter: &Expr, binding: &str, table: &Table) -> Vec<Sarg> {
    let mut sargs = Vec::new();
    for conj in split_conjuncts(filter) {
        let (lhs, op, rhs) = match conj {
            Expr::Binary(a, op, b)
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
                ) =>
            {
                (a.as_ref(), *op, b.as_ref())
            }
            Expr::Between { expr, lo, hi } => {
                // col BETWEEN lo AND hi -> two sargs.
                if let Some(col) = own_column(expr, binding, table) {
                    if !references_binding(lo, binding, table)
                        && !references_binding(hi, binding, table)
                    {
                        sargs.push(Sarg {
                            column: col,
                            op: BinOp::GtEq,
                            key: (**lo).clone(),
                        });
                        sargs.push(Sarg {
                            column: col,
                            op: BinOp::LtEq,
                            key: (**hi).clone(),
                        });
                    }
                }
                continue;
            }
            _ => continue,
        };
        // col <op> key
        if let Some(col) = own_column(lhs, binding, table) {
            if !references_binding(rhs, binding, table) {
                sargs.push(Sarg {
                    column: col,
                    op,
                    key: rhs.clone(),
                });
                continue;
            }
        }
        // key <op> col (flip)
        if let Some(col) = own_column(rhs, binding, table) {
            if !references_binding(lhs, binding, table) {
                let flipped = match op {
                    BinOp::Eq => BinOp::Eq,
                    BinOp::Lt => BinOp::Gt,
                    BinOp::LtEq => BinOp::GtEq,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::GtEq => BinOp::LtEq,
                    _ => unreachable!(),
                };
                sargs.push(Sarg {
                    column: col,
                    op: flipped,
                    key: lhs.clone(),
                });
            }
        }
    }
    sargs
}

/// Choose the access path for one table given a filter (WHERE for the base
/// table, ON for a join target). `binding` is the alias the table is bound
/// under in the query.
pub fn choose_path(table: &Table, binding: &str, filter: Option<&Expr>) -> Path {
    let Some(filter) = filter else {
        return Path::FullScan;
    };
    let sargs = extract_sargs(filter, binding, table);
    if sargs.is_empty() {
        return Path::FullScan;
    }
    let pk_col = table.schema().pk_index();

    // 1. PK equality.
    if let Some(pk) = pk_col {
        if let Some(s) = sargs.iter().find(|s| s.column == pk && s.op == BinOp::Eq) {
            return Path::PkEq { key: s.key.clone() };
        }
    }
    // 2. Secondary-index equality.
    for s in &sargs {
        if s.op == BinOp::Eq && table.index_on(s.column).is_some() {
            return Path::IndexEq {
                column: s.column,
                key: s.key.clone(),
            };
        }
    }
    // 3. PK range.
    if let Some(pk) = pk_col {
        let (lo, hi) = range_bounds(&sargs, pk);
        if lo.is_some() || hi.is_some() {
            return Path::PkRange { lo, hi };
        }
    }
    // 4. Secondary-index range.
    for s in &sargs {
        if table.index_on(s.column).is_some() {
            let (lo, hi) = range_bounds(&sargs, s.column);
            if lo.is_some() || hi.is_some() {
                return Path::IndexRange {
                    column: s.column,
                    lo,
                    hi,
                };
            }
        }
    }
    Path::FullScan
}

type OptBound = Option<(Expr, bool)>;

fn range_bounds(sargs: &[Sarg], column: usize) -> (OptBound, OptBound) {
    let mut lo: OptBound = None;
    let mut hi: OptBound = None;
    for s in sargs.iter().filter(|s| s.column == column) {
        match s.op {
            BinOp::Gt => lo = lo.or(Some((s.key.clone(), false))),
            BinOp::GtEq => lo = lo.or(Some((s.key.clone(), true))),
            BinOp::Lt => hi = hi.or(Some((s.key.clone(), false))),
            BinOp::LtEq => hi = hi.or(Some((s.key.clone(), true))),
            BinOp::Eq => {
                lo = Some((s.key.clone(), true));
                hi = Some((s.key.clone(), true));
            }
            _ => {}
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::schema::{Column, TableSchema};
    use crate::value::DataType;

    fn table_with_index() -> Table {
        let schema = TableSchema::new(
            "events",
            vec![
                Column::new("id", DataType::Int).primary_key(),
                Column::new("created_by", DataType::Int),
                Column::new("title", DataType::Text),
            ],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.create_index("idx_created_by", 1, false).unwrap();
        t
    }

    fn where_of(sql: &str) -> Expr {
        match parse(sql).unwrap() {
            crate::ast::Statement::Select(s) => s.filter.unwrap(),
            _ => panic!(),
        }
    }

    #[test]
    fn pk_eq_preferred() {
        let t = table_with_index();
        let f = where_of("SELECT * FROM events WHERE title = 'x' AND id = 5");
        assert_eq!(choose_path(&t, "events", Some(&f)).describe(), "pk eq");
    }

    #[test]
    fn index_eq_when_no_pk_predicate() {
        let t = table_with_index();
        let f = where_of("SELECT * FROM events WHERE created_by = 3");
        assert_eq!(
            choose_path(&t, "events", Some(&f)).describe(),
            "index eq col1"
        );
    }

    #[test]
    fn flipped_operands_recognized() {
        let t = table_with_index();
        let f = where_of("SELECT * FROM events WHERE 5 = id");
        assert_eq!(choose_path(&t, "events", Some(&f)).describe(), "pk eq");
    }

    #[test]
    fn pk_range_from_inequalities() {
        let t = table_with_index();
        let f = where_of("SELECT * FROM events WHERE id > 10 AND id <= 20");
        match choose_path(&t, "events", Some(&f)) {
            Path::PkRange { lo, hi } => {
                assert!(!lo.unwrap().1, "lo exclusive");
                assert!(hi.unwrap().1, "hi inclusive");
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn between_becomes_range() {
        let t = table_with_index();
        let f = where_of("SELECT * FROM events WHERE id BETWEEN 1 AND 9");
        assert!(matches!(
            choose_path(&t, "events", Some(&f)),
            Path::PkRange { .. }
        ));
    }

    #[test]
    fn unindexed_predicate_full_scans() {
        let t = table_with_index();
        let f = where_of("SELECT * FROM events WHERE title = 'x'");
        assert_eq!(choose_path(&t, "events", Some(&f)), Path::FullScan);
    }

    #[test]
    fn foreign_column_key_is_usable_for_join_lookup() {
        // ON e.created_by = u.id — planning access to `e`, the key `u.id`
        // is foreign and therefore evaluable before the lookup.
        let t = table_with_index();
        let f = where_of("SELECT * FROM x WHERE e.created_by = u.id");
        match choose_path(&t, "e", Some(&f)) {
            Path::IndexEq { column: 1, key } => {
                assert!(matches!(key, Expr::Column { .. }));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn own_column_on_both_sides_not_sargable() {
        let t = table_with_index();
        let f = where_of("SELECT * FROM events WHERE id = created_by");
        assert_eq!(choose_path(&t, "events", Some(&f)), Path::FullScan);
    }

    #[test]
    fn or_disables_sargs() {
        let t = table_with_index();
        let f = where_of("SELECT * FROM events WHERE id = 1 OR created_by = 2");
        assert_eq!(choose_path(&t, "events", Some(&f)), Path::FullScan);
    }

    #[test]
    fn conjuncts_split() {
        let f = where_of("SELECT * FROM t WHERE a = 1 AND b = 2 AND (c = 3 OR d = 4)");
        assert_eq!(split_conjuncts(&f).len(), 3);
    }
}
