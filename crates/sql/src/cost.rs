//! CPU cost model: what executing a statement costs the owning VM.
//!
//! The simulation runs queries functionally (instantly, in host time) and
//! separately charges the VM's FIFO CPU a *demand* so that queueing,
//! saturation, and replication-apply backlogs emerge. The demand model is
//! deliberately simple — a per-statement overhead plus per-row-examined and
//! per-row-written terms and a commit charge — with constants calibrated at
//! the experiment level so that the paper's observed saturation points land
//! where they did on m1.small instances (see `amdb-experiments::calib` and
//! EXPERIMENTS.md for the derivation).
//!
//! All outputs are in microseconds of *reference-speed* CPU time; the VM's
//! speed factor divides it at submission (see `amdb_sim::FifoCpu`).

use crate::exec::QueryResult;

/// Cost-model constants (µs of reference CPU).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixed per-statement overhead: parse, plan, protocol handling.
    pub stmt_overhead_us: f64,
    /// Per row examined by the executor (index probes, scans, join rows).
    pub per_row_examined_us: f64,
    /// Per row inserted/updated/deleted (index maintenance, logging).
    pub per_row_written_us: f64,
    /// Per-transaction commit charge on the master (fsync/group-commit
    /// analogue — EBS-backed fsync dominates small writes on m1.small).
    /// Charged once per operation by the harness, not per statement.
    pub commit_us: f64,
    /// Per-event commit charge on slaves. Replicas run with relaxed
    /// durability (the `innodb_flush_log_at_trx_commit=0` convention), so
    /// this is far below `commit_us` — which is what lets apply throughput
    /// exceed master write throughput and the slave fan-out scale.
    pub slave_commit_us: f64,
    /// Per-slave charge on the master for shipping one event (binlog read +
    /// network send) — the reason the master saturates slightly earlier as
    /// slaves are added.
    pub ship_per_event_us: f64,
    /// Per-event apply overhead on a slave, in addition to the statement's
    /// own execution cost.
    pub apply_overhead_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated for the paper's m1.small MySQL servers; see
        // EXPERIMENTS.md ("Calibration") for how these were derived from the
        // observed saturation points.
        Self {
            stmt_overhead_us: 1_500.0,
            per_row_examined_us: 1_550.0,
            per_row_written_us: 2_500.0,
            commit_us: 70_000.0,
            slave_commit_us: 2_000.0,
            ship_per_event_us: 300.0,
            apply_overhead_us: 1_200.0,
        }
    }
}

impl CostModel {
    /// Demand of executing one statement, given its result. `is_write` adds
    /// the per-row write term; the per-transaction [`Self::commit_us`] is
    /// charged separately, once per operation.
    pub fn statement_demand_us(&self, res: &QueryResult, is_write: bool) -> f64 {
        let mut us = self.stmt_overhead_us + self.per_row_examined_us * res.rows_examined as f64;
        if is_write {
            us += self.per_row_written_us * res.rows_affected as f64;
        }
        us
    }

    /// Demand charged to the master for shipping one binlog event to one
    /// slave.
    pub fn ship_demand_us(&self) -> f64 {
        self.ship_per_event_us
    }

    /// Demand of applying one shipped event on a slave: apply-thread
    /// overhead, the event's own row work, and the relaxed slave commit.
    /// No client-protocol overhead and no fsync-grade commit — slave applies
    /// are an order of magnitude cheaper than the original master write.
    pub fn apply_demand_us(&self, res: &QueryResult) -> f64 {
        self.apply_overhead_us
            + self.per_row_examined_us * res.rows_examined as f64
            + self.per_row_written_us * res.rows_affected as f64
            + self.slave_commit_us
    }

    /// Demand of applying a *group-commit batch* of shipped events planned
    /// by `amdb-apply`: every event's row work is still paid in full (one
    /// CPU core, so parallel workers add no raw capacity), but the batch
    /// shares a single apply-thread dispatch and a single relaxed commit —
    /// the amortization that multi-threaded apply actually buys on a
    /// saturated slave.
    ///
    /// A one-event batch delegates to [`Self::apply_demand_us`] so the
    /// `workers = 1` pipeline is *float-identical* (not merely close) to the
    /// classic serial apply thread — f64 addition order matters for the
    /// byte-identical-results contract.
    pub fn apply_batch_demand_us(&self, results: &[QueryResult]) -> f64 {
        match results {
            [] => 0.0,
            [one] => self.apply_demand_us(one),
            many => {
                let mut us = self.apply_overhead_us;
                for res in many {
                    us += self.per_row_examined_us * res.rows_examined as f64
                        + self.per_row_written_us * res.rows_affected as f64;
                }
                us + self.slave_commit_us
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(examined: u64, affected: u64) -> QueryResult {
        QueryResult {
            rows_examined: examined,
            rows_affected: affected,
            ..QueryResult::default()
        }
    }

    #[test]
    fn read_cost_scales_with_rows_examined() {
        let m = CostModel::default();
        let small = m.statement_demand_us(&result(10, 0), false);
        let big = m.statement_demand_us(&result(1000, 0), false);
        assert!(big > small);
        assert!((big - small - 990.0 * m.per_row_examined_us).abs() < 1e-9);
    }

    #[test]
    fn write_statement_adds_row_term_but_not_commit() {
        let m = CostModel::default();
        let read = m.statement_demand_us(&result(5, 0), false);
        let write = m.statement_demand_us(&result(5, 1), true);
        assert!((write - read - m.per_row_written_us).abs() < 1e-9);
    }

    #[test]
    fn apply_is_much_cheaper_than_master_write() {
        let m = CostModel::default();
        let master_write = m.statement_demand_us(&result(1, 1), true) + m.commit_us;
        let apply = m.apply_demand_us(&result(0, 1));
        assert!(
            apply * 5.0 < master_write,
            "apply {apply} vs master write {master_write}"
        );
    }

    #[test]
    fn singleton_batch_is_float_identical_to_serial_apply() {
        let m = CostModel::default();
        let res = result(3, 2);
        assert_eq!(
            m.apply_batch_demand_us(std::slice::from_ref(&res))
                .to_bits(),
            m.apply_demand_us(&res).to_bits(),
            "workers=1 must reproduce the serial path bit-for-bit"
        );
        assert_eq!(m.apply_batch_demand_us(&[]), 0.0);
    }

    #[test]
    fn batch_amortizes_overhead_and_commit_only() {
        let m = CostModel::default();
        let batch = [result(0, 1), result(0, 1), result(0, 1), result(0, 1)];
        let batched = m.apply_batch_demand_us(&batch);
        let serial: f64 = batch.iter().map(|r| m.apply_demand_us(r)).sum();
        let saved = serial - batched;
        let expected = 3.0 * (m.apply_overhead_us + m.slave_commit_us);
        assert!(
            (saved - expected).abs() < 1e-9,
            "batch of 4 saves exactly 3 dispatch+commit charges (saved {saved})"
        );
        assert!(
            batched > m.apply_demand_us(&batch[0]),
            "row work is never discounted"
        );
    }

    #[test]
    fn costs_are_positive() {
        let m = CostModel::default();
        assert!(m.statement_demand_us(&result(0, 0), false) > 0.0);
        assert!(m.ship_demand_us() > 0.0);
    }
}
