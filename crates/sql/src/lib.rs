//! # amdb-sql — in-memory relational engine with a binary log
//!
//! The reproduction's stand-in for MySQL. The paper's database tier is a set
//! of MySQL replicas kept in sync by shipping the master's binary log —
//! statement-based, which is why its heartbeat trick works: the replicated
//! `INSERT` re-evaluates the timestamp function *on each slave*, committing
//! the slave's local time next to the master-assigned global id (§III-A).
//!
//! This crate implements the pieces of MySQL the paper's setup exercises:
//!
//! * a SQL subset — `CREATE TABLE` / `CREATE INDEX` / `DROP TABLE`,
//!   `INSERT`, `SELECT` (joins, `WHERE`, `GROUP BY`, aggregates, `ORDER BY`,
//!   `LIMIT`), `UPDATE`, `DELETE`, and transaction control;
//! * an execution pipeline: lexer → recursive-descent parser → AST →
//!   heuristic planner (index selection) → executor over in-memory tables
//!   with B-tree primary and secondary indexes, fronted by a per-engine
//!   statement→plan [`cache`] so repeated statement texts (including every
//!   statement-format binlog event a slave re-applies) skip the parser;
//! * sessions with autocommit or explicit transactions and rollback via undo
//!   logs;
//! * a binary log with **statement-based** and **row-based** event formats,
//!   binary-encoded (see [`binlog`]), consumed by `amdb-repl`;
//! * a microsecond `NOW_MICROS()` function bound to the *session clock* —
//!   the engine itself has no ambient time source, mirroring the paper's
//!   user-defined microsecond timestamp UDF (their fix for MySQL bug #8523,
//!   whose built-in `NOW()` only resolves to seconds);
//! * a [`cost`] model reporting the CPU demand of each executed statement so
//!   the simulation can charge the owning VM.
//!
//! Execution is *functionally real*: replicas genuinely diverge until
//! writesets are applied, so staleness measured by the heartbeat experiment
//! is measured from actual table contents, not a model.

pub mod ast;
pub mod binlog;
pub mod cache;
pub mod cost;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod schema;
pub mod storage;
pub mod value;

pub use binlog::{Binlog, BinlogEvent, BinlogFormat, EventPayload, Lsn};
pub use cache::{CacheStats, CachedPlan, PlanCache};
pub use engine::{Engine, ForkRole, Session};
pub use error::SqlError;
pub use exec::QueryResult;
pub use schema::{Column, TableSchema};
pub use value::{DataType, Value};

/// Shorthand result type for engine operations.
pub type Result<T> = std::result::Result<T, SqlError>;
