//! Query execution: SELECT pipelines, DML, undo logging, row-change capture.

use crate::ast::*;
use crate::error::SqlError;
use crate::expr::{eval, truth, ColumnResolver, EvalCtx, NoColumns, Truth};
use crate::plan::{choose_path, Path};
use crate::storage::{RowId, Table};
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// The table catalog: lower-cased table name → table.
pub type Catalog = BTreeMap<String, Table>;

/// Look up a table (case-insensitive).
pub fn get_table<'a>(catalog: &'a Catalog, name: &str) -> Result<&'a Table, SqlError> {
    catalog
        .get(&name.to_ascii_lowercase())
        .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
}

/// Look up a table mutably (case-insensitive).
pub fn get_table_mut<'a>(catalog: &'a mut Catalog, name: &str) -> Result<&'a mut Table, SqlError> {
    catalog
        .get_mut(&name.to_ascii_lowercase())
        .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
}

/// The result of executing one statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Output column names (SELECT only).
    pub columns: Vec<String>,
    /// Result rows (SELECT only).
    pub rows: Vec<Vec<Value>>,
    /// Rows inserted/updated/deleted.
    pub rows_affected: u64,
    /// Auto-increment id assigned by the last INSERT, if any.
    pub last_insert_id: Option<i64>,
    /// Rows fetched from storage while executing — the executor's work
    /// measure, consumed by the cost model.
    pub rows_examined: u64,
}

/// Undo information for transaction rollback, in execution order.
#[derive(Debug, Clone)]
pub struct UndoEntry {
    pub table: String,
    pub undo: Undo,
}

/// One reversible mutation.
#[derive(Debug, Clone)]
pub enum Undo {
    /// Row was inserted; undo deletes it.
    Inserted(RowId),
    /// Row was updated; undo restores the old image.
    Updated(RowId, Vec<Value>),
    /// Row was deleted; undo re-inserts the old image.
    Deleted(RowId, Vec<Value>),
}

/// A captured row mutation for row-based binlogging.
#[derive(Debug, Clone, PartialEq)]
pub struct RowChange {
    pub table: String,
    pub kind: RowChangeKind,
}

/// Kind of row mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum RowChangeKind {
    Insert {
        row: Vec<Value>,
    },
    Update {
        before: Vec<Value>,
        after: Vec<Value>,
    },
    Delete {
        row: Vec<Value>,
    },
}

/// Output of a write statement: result plus undo and row-change logs.
#[derive(Debug, Clone, Default)]
pub struct WriteOutcome {
    pub result: QueryResult,
    pub undo: Vec<UndoEntry>,
    pub changes: Vec<RowChange>,
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

/// One bound table in a FROM clause.
struct Binding {
    name: String,
    columns: Vec<String>,
}

/// Row scope across all FROM bindings; `None` = NULL-extended (LEFT JOIN) or
/// not yet bound.
struct Scope<'a> {
    bindings: &'a [Binding],
    rows: &'a [Option<Vec<Value>>],
}

impl ColumnResolver for Scope<'_> {
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Value, SqlError> {
        match qualifier {
            Some(q) => {
                let (i, b) = self
                    .bindings
                    .iter()
                    .enumerate()
                    .find(|(_, b)| b.name.eq_ignore_ascii_case(q))
                    .ok_or_else(|| SqlError::UnknownColumn(format!("{q}.{name}")))?;
                let col = b
                    .columns
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(name))
                    .ok_or_else(|| SqlError::UnknownColumn(format!("{q}.{name}")))?;
                Ok(match &self.rows[i] {
                    Some(row) => row[col].clone(),
                    None => Value::Null,
                })
            }
            None => {
                let mut hit: Option<(usize, usize)> = None;
                for (i, b) in self.bindings.iter().enumerate() {
                    if let Some(col) = b.columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                        if hit.is_some() {
                            return Err(SqlError::UnknownColumn(format!(
                                "ambiguous column '{name}'"
                            )));
                        }
                        hit = Some((i, col));
                    }
                }
                let (i, col) = hit.ok_or_else(|| SqlError::UnknownColumn(name.to_string()))?;
                Ok(match &self.rows[i] {
                    Some(row) => row[col].clone(),
                    None => Value::Null,
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Candidate iteration (access paths)
// ---------------------------------------------------------------------------

/// Materialize candidate row ids for a table access, preferring the given
/// path and gracefully falling back to a full scan when a key expression
/// cannot be evaluated in the current scope.
fn candidates(
    table: &Table,
    path: &Path,
    ctx: &EvalCtx,
    scope: &Scope<'_>,
) -> Result<Vec<RowId>, SqlError> {
    let eval_key = |key: &Expr| -> Result<Option<Value>, SqlError> {
        match eval(key, ctx, scope) {
            Ok(v) => Ok(Some(v)),
            Err(SqlError::UnknownColumn(_)) => Ok(None), // not evaluable yet
            Err(e) => Err(e),
        }
    };
    let full = |t: &Table| t.scan().map(|(rid, _)| rid).collect::<Vec<_>>();

    Ok(match path {
        Path::FullScan => full(table),
        Path::PkEq { key } => match eval_key(key)? {
            Some(v) if !v.is_null() => table.pk_lookup(&v).into_iter().collect(),
            Some(_) => Vec::new(),
            None => full(table),
        },
        Path::IndexEq { column, key } => match eval_key(key)? {
            Some(v) if !v.is_null() => {
                let ix = table.index_on(*column).expect("planned index exists");
                ix.lookup_eq(&v).to_vec()
            }
            Some(_) => Vec::new(),
            None => full(table),
        },
        Path::PkRange { lo, hi } => match eval_bounds(lo, hi, ctx, scope)? {
            Some((lo_b, hi_b)) => match table.pk_range(as_bound(&lo_b), as_bound(&hi_b)) {
                Some(iter) => iter.collect(),
                None => full(table),
            },
            None => full(table),
        },
        Path::IndexRange { column, lo, hi } => match eval_bounds(lo, hi, ctx, scope)? {
            Some((lo_b, hi_b)) => {
                let ix = table.index_on(*column).expect("planned index exists");
                ix.lookup_range(as_bound(&lo_b), as_bound(&hi_b)).collect()
            }
            None => full(table),
        },
    })
}

type EvaluatedBound = Option<(Value, bool)>;

fn eval_bounds(
    lo: &Option<(Expr, bool)>,
    hi: &Option<(Expr, bool)>,
    ctx: &EvalCtx,
    scope: &Scope<'_>,
) -> Result<Option<(EvaluatedBound, EvaluatedBound)>, SqlError> {
    let one = |b: &Option<(Expr, bool)>| -> Result<Option<EvaluatedBound>, SqlError> {
        match b {
            None => Ok(Some(None)),
            Some((e, incl)) => match eval(e, ctx, scope) {
                Ok(v) if v.is_null() => Ok(Some(None)), // NULL bound: unbounded side
                Ok(v) => Ok(Some(Some((v, *incl)))),
                Err(SqlError::UnknownColumn(_)) => Ok(None),
                Err(e) => Err(e),
            },
        }
    };
    match (one(lo)?, one(hi)?) {
        (Some(l), Some(h)) => Ok(Some((l, h))),
        _ => Ok(None),
    }
}

fn as_bound(b: &EvaluatedBound) -> Bound<&Value> {
    match b {
        None => Bound::Unbounded,
        Some((v, true)) => Bound::Included(v),
        Some((v, false)) => Bound::Excluded(v),
    }
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

/// Execute a SELECT against the catalog.
pub fn exec_select(
    catalog: &Catalog,
    sel: &SelectStmt,
    ctx: &EvalCtx,
) -> Result<QueryResult, SqlError> {
    // Bind FROM sources.
    struct Source<'a> {
        binding: String,
        table: &'a Table,
        kind: JoinKind,
        on: Option<Expr>,
        path: Path,
    }

    let mut sources: Vec<Source> = Vec::new();
    if let Some(from) = &sel.from {
        let base_table = get_table(catalog, &from.base.table)?;
        let base_binding = from.base.binding().to_string();
        let base_path = choose_path(base_table, &base_binding, sel.filter.as_ref());
        sources.push(Source {
            binding: base_binding,
            table: base_table,
            kind: JoinKind::Inner,
            on: None,
            path: base_path,
        });
        for j in &from.joins {
            let t = get_table(catalog, &j.table.table)?;
            let binding = j.table.binding().to_string();
            let path = choose_path(t, &binding, Some(&j.on));
            sources.push(Source {
                binding,
                table: t,
                kind: j.kind,
                on: Some(j.on.clone()),
                path,
            });
        }
    }

    let bindings: Vec<Binding> = sources
        .iter()
        .map(|s| Binding {
            name: s.binding.clone(),
            columns: s
                .table
                .schema()
                .columns
                .iter()
                .map(|c| c.name.clone())
                .collect(),
        })
        .collect();

    // Output columns.
    let mut out_cols: Vec<String> = Vec::new();
    let mut item_exprs: Vec<(Expr, String)> = Vec::new(); // (expr, name) expanded
    for (i, item) in sel.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (bi, b) in bindings.iter().enumerate() {
                    for c in &b.columns {
                        out_cols.push(c.clone());
                        item_exprs.push((
                            Expr::Column {
                                qualifier: Some(bindings[bi].name.clone()),
                                name: c.clone(),
                            },
                            c.clone(),
                        ));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    Expr::Func { name, .. } => name.to_ascii_lowercase(),
                    _ => format!("col{}", i + 1),
                });
                out_cols.push(name.clone());
                item_exprs.push((expr.clone(), name));
            }
        }
    }

    let aggregate_mode = !sel.group_by.is_empty()
        || item_exprs.iter().any(|(e, _)| e.contains_aggregate())
        || sel.having.is_some();
    if sel.having.is_some() && sel.group_by.is_empty() {
        return Err(SqlError::Unsupported(
            "HAVING requires GROUP BY in this engine".into(),
        ));
    }

    // Collect all emitted scope rows, applying WHERE.
    let mut rows_examined: u64 = 0;
    let mut emitted: Vec<Vec<Option<Vec<Value>>>> = Vec::new();

    if sources.is_empty() {
        emitted.push(Vec::new());
    } else {
        // Iterative nested-loop join over a stack of candidate lists.
        #[allow(clippy::too_many_arguments)]
        fn recurse(
            sources: &[Source<'_>],
            bindings: &[Binding],
            idx: usize,
            scope_rows: &mut Vec<Option<Vec<Value>>>,
            ctx: &EvalCtx,
            filter: Option<&Expr>,
            rows_examined: &mut u64,
            emitted: &mut Vec<Vec<Option<Vec<Value>>>>,
        ) -> Result<(), SqlError> {
            if idx == sources.len() {
                if let Some(f) = filter {
                    let scope = Scope {
                        bindings,
                        rows: scope_rows,
                    };
                    if truth(&eval(f, ctx, &scope)?) != Truth::True {
                        return Ok(());
                    }
                }
                emitted.push(scope_rows.clone());
                return Ok(());
            }
            let src = &sources[idx];
            let cands = {
                let scope = Scope {
                    bindings,
                    rows: scope_rows,
                };
                candidates(src.table, &src.path, ctx, &scope)?
            };
            let mut matched = false;
            for rid in cands {
                let row = src.table.get(rid).expect("candidate rid valid").clone();
                *rows_examined += 1;
                scope_rows[idx] = Some(row);
                // Re-check the ON predicate (the path may be a superset).
                if let Some(on) = &src.on {
                    let scope = Scope {
                        bindings,
                        rows: scope_rows,
                    };
                    if truth(&eval(on, ctx, &scope)?) != Truth::True {
                        scope_rows[idx] = None;
                        continue;
                    }
                }
                matched = true;
                recurse(
                    sources,
                    bindings,
                    idx + 1,
                    scope_rows,
                    ctx,
                    filter,
                    rows_examined,
                    emitted,
                )?;
                scope_rows[idx] = None;
            }
            if !matched && src.kind == JoinKind::Left {
                scope_rows[idx] = None;
                recurse(
                    sources,
                    bindings,
                    idx + 1,
                    scope_rows,
                    ctx,
                    filter,
                    rows_examined,
                    emitted,
                )?;
            }
            Ok(())
        }

        let mut scope_rows: Vec<Option<Vec<Value>>> = vec![None; sources.len()];
        recurse(
            &sources,
            &bindings,
            0,
            &mut scope_rows,
            ctx,
            sel.filter.as_ref(),
            &mut rows_examined,
            &mut emitted,
        )?;
    }

    // Project (and aggregate).
    // Each output row carries its sort keys, computed pre-projection.
    let mut result_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::new(); // (sort_keys, out_row)

    let order_key_exprs: Vec<&OrderKey> = sel.order_by.iter().collect();

    let compute_sort_keys =
        |out_row: &[Value], scope: &dyn ColumnResolver| -> Result<Vec<Value>, SqlError> {
            let mut keys = Vec::with_capacity(order_key_exprs.len());
            for ok in &order_key_exprs {
                // Alias / output-name reference?
                if let Expr::Column {
                    qualifier: None,
                    name,
                } = &ok.expr
                {
                    if let Some(pos) = out_cols.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                        keys.push(out_row[pos].clone());
                        continue;
                    }
                }
                keys.push(eval(&ok.expr, ctx, scope)?);
            }
            Ok(keys)
        };

    if aggregate_mode {
        let specs = collect_agg_specs(&item_exprs, &sel.order_by, sel.having.as_ref());
        // group key -> (accumulators, representative scope)
        // (group key, accumulators, representative scope rows)
        type Group = (Vec<Value>, Vec<AggAcc>, Vec<Option<Vec<Value>>>);
        let mut groups: Vec<Group> = Vec::new();
        let mut group_index: BTreeMap<String, usize> = BTreeMap::new();

        for scope_rows in &emitted {
            let scope = Scope {
                bindings: &bindings,
                rows: scope_rows,
            };
            let mut key = Vec::with_capacity(sel.group_by.len());
            for g in &sel.group_by {
                key.push(eval(g, ctx, &scope)?);
            }
            let key_str = key
                .iter()
                .map(|v| format!("{v:?}"))
                .collect::<Vec<_>>()
                .join("\u{1}");
            let gi = *group_index.entry(key_str).or_insert_with(|| {
                groups.push((
                    key.clone(),
                    specs.iter().map(AggAcc::new).collect(),
                    scope_rows.clone(),
                ));
                groups.len() - 1
            });
            for (acc, spec) in groups[gi].1.iter_mut().zip(&specs) {
                acc.update(spec, ctx, &scope)?;
            }
        }
        // A global aggregate over zero rows still yields one group.
        if groups.is_empty() && sel.group_by.is_empty() {
            groups.push((
                Vec::new(),
                specs.iter().map(AggAcc::new).collect(),
                vec![None; bindings.len()],
            ));
        }

        for (_key, accs, rep_rows) in &groups {
            let scope = Scope {
                bindings: &bindings,
                rows: rep_rows,
            };
            let agg_values: Vec<Value> = accs.iter().map(|a| a.finish()).collect();
            // HAVING filters whole groups; aggregates inside it substitute.
            if let Some(h) = &sel.having {
                let rewritten = substitute_aggs(h, &specs, &agg_values);
                if truth(&eval(&rewritten, ctx, &scope)?) != Truth::True {
                    continue;
                }
            }
            let mut out_row = Vec::with_capacity(item_exprs.len());
            for (e, _) in &item_exprs {
                let rewritten = substitute_aggs(e, &specs, &agg_values);
                out_row.push(eval(&rewritten, ctx, &scope)?);
            }
            // Sort keys may contain aggregates too.
            let mut keys = Vec::with_capacity(order_key_exprs.len());
            for ok in &order_key_exprs {
                if let Expr::Column {
                    qualifier: None,
                    name,
                } = &ok.expr
                {
                    if let Some(pos) = out_cols.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                        keys.push(out_row[pos].clone());
                        continue;
                    }
                }
                let rewritten = substitute_aggs(&ok.expr, &specs, &agg_values);
                keys.push(eval(&rewritten, ctx, &scope)?);
            }
            result_rows.push((keys, out_row));
        }
    } else {
        for scope_rows in &emitted {
            let scope = Scope {
                bindings: &bindings,
                rows: scope_rows,
            };
            let mut out_row = Vec::with_capacity(item_exprs.len());
            for (e, _) in &item_exprs {
                out_row.push(eval(e, ctx, &scope)?);
            }
            let keys = compute_sort_keys(&out_row, &scope)?;
            result_rows.push((keys, out_row));
        }
    }

    // DISTINCT: keep the first occurrence of each projected row.
    if sel.distinct {
        let mut seen = std::collections::HashSet::new();
        result_rows.retain(|(_, row)| {
            let key = row
                .iter()
                .map(|v| format!("{v:?}"))
                .collect::<Vec<_>>()
                .join("\u{1}");
            seen.insert(key)
        });
    }

    // ORDER BY.
    if !sel.order_by.is_empty() {
        result_rows.sort_by(|(ka, _), (kb, _)| {
            for (i, ok) in sel.order_by.iter().enumerate() {
                let ord = ka[i].index_cmp(&kb[i]);
                let ord = if ok.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // OFFSET / LIMIT.
    let offset = sel.offset.unwrap_or(0) as usize;
    let rows: Vec<Vec<Value>> = result_rows
        .into_iter()
        .map(|(_, r)| r)
        .skip(offset)
        .take(sel.limit.map(|l| l as usize).unwrap_or(usize::MAX))
        .collect();

    Ok(QueryResult {
        columns: out_cols,
        rows,
        rows_affected: 0,
        last_insert_id: None,
        rows_examined,
    })
}

/// Execute an EXPLAIN: report each table access with its chosen path,
/// mirroring the planner decisions `exec_select` would make.
pub fn explain_select(catalog: &Catalog, sel: &SelectStmt) -> Result<QueryResult, SqlError> {
    let mut res = QueryResult {
        columns: vec!["table".into(), "binding".into(), "access".into()],
        ..QueryResult::default()
    };
    let Some(from) = &sel.from else {
        res.rows.push(vec![
            Value::Text("(no table)".into()),
            Value::Null,
            Value::Text("constant".into()),
        ]);
        return Ok(res);
    };
    let base = get_table(catalog, &from.base.table)?;
    let base_binding = from.base.binding();
    let path = choose_path(base, base_binding, sel.filter.as_ref());
    res.rows.push(vec![
        Value::Text(from.base.table.clone()),
        Value::Text(base_binding.to_string()),
        Value::Text(path.describe()),
    ]);
    for j in &from.joins {
        let t = get_table(catalog, &j.table.table)?;
        let binding = j.table.binding();
        let path = choose_path(t, binding, Some(&j.on));
        res.rows.push(vec![
            Value::Text(j.table.table.clone()),
            Value::Text(binding.to_string()),
            Value::Text(path.describe()),
        ]);
    }
    Ok(res)
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct AggSpec {
    name: String,
    arg: Option<Expr>,
    star: bool,
}

fn collect_agg_specs(
    items: &[(Expr, String)],
    order_by: &[OrderKey],
    having: Option<&Expr>,
) -> Vec<AggSpec> {
    let mut specs: Vec<AggSpec> = Vec::new();
    let mut add_from = |e: &Expr| {
        e.walk(&mut |node| {
            if let Expr::Func { name, args, star } = node {
                if is_aggregate_name(name) {
                    let spec = AggSpec {
                        name: name.to_ascii_uppercase(),
                        arg: args.first().cloned(),
                        star: *star,
                    };
                    if !specs.contains(&spec) {
                        specs.push(spec);
                    }
                }
            }
        });
    };
    for (e, _) in items {
        add_from(e);
    }
    for ok in order_by {
        add_from(&ok.expr);
    }
    if let Some(h) = having {
        add_from(h);
    }
    specs
}

/// Replace aggregate calls with their computed values.
fn substitute_aggs(e: &Expr, specs: &[AggSpec], values: &[Value]) -> Expr {
    if let Expr::Func { name, args, star } = e {
        if is_aggregate_name(name) {
            let spec = AggSpec {
                name: name.to_ascii_uppercase(),
                arg: args.first().cloned(),
                star: *star,
            };
            if let Some(i) = specs.iter().position(|s| *s == spec) {
                return Expr::Literal(values[i].clone());
            }
        }
    }
    match e {
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(substitute_aggs(inner, specs, values))),
        Expr::Binary(a, op, b) => Expr::Binary(
            Box::new(substitute_aggs(a, specs, values)),
            *op,
            Box::new(substitute_aggs(b, specs, values)),
        ),
        Expr::Func { name, args, star } => Expr::Func {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| substitute_aggs(a, specs, values))
                .collect(),
            star: *star,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(substitute_aggs(expr, specs, values)),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(substitute_aggs(expr, specs, values)),
            pattern: Box::new(substitute_aggs(pattern, specs, values)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(substitute_aggs(expr, specs, values)),
            list: list
                .iter()
                .map(|i| substitute_aggs(i, specs, values))
                .collect(),
            negated: *negated,
        },
        Expr::Between { expr, lo, hi } => Expr::Between {
            expr: Box::new(substitute_aggs(expr, specs, values)),
            lo: Box::new(substitute_aggs(lo, specs, values)),
            hi: Box::new(substitute_aggs(hi, specs, values)),
        },
        other => other.clone(),
    }
}

#[derive(Debug, Clone)]
enum AggAcc {
    Count(i64),
    Sum { sum: f64, any: bool, int: bool },
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggAcc {
    fn new(spec: &AggSpec) -> AggAcc {
        match spec.name.as_str() {
            "COUNT" => AggAcc::Count(0),
            "SUM" => AggAcc::Sum {
                sum: 0.0,
                any: false,
                int: true,
            },
            "AVG" => AggAcc::Avg { sum: 0.0, n: 0 },
            "MIN" => AggAcc::Min(None),
            "MAX" => AggAcc::Max(None),
            other => unreachable!("non-aggregate {other}"),
        }
    }

    fn update(
        &mut self,
        spec: &AggSpec,
        ctx: &EvalCtx,
        scope: &dyn ColumnResolver,
    ) -> Result<(), SqlError> {
        let arg_val = if spec.star {
            Some(Value::Int(1))
        } else if let Some(arg) = &spec.arg {
            Some(eval(arg, ctx, scope)?)
        } else {
            None
        };
        match self {
            AggAcc::Count(n) => match arg_val {
                Some(Value::Null) => {}
                Some(_) => *n += 1,
                None => return Err(SqlError::BadParameter("COUNT needs an argument".into())),
            },
            AggAcc::Sum { sum, any, int } => match arg_val {
                Some(Value::Null) | None => {}
                Some(Value::Int(i)) => {
                    *sum += i as f64;
                    *any = true;
                }
                Some(Value::Double(d)) => {
                    *sum += d;
                    *any = true;
                    *int = false;
                }
                Some(v) => {
                    return Err(SqlError::TypeMismatch(format!("SUM over {v:?}")));
                }
            },
            AggAcc::Avg { sum, n } => match arg_val {
                Some(Value::Null) | None => {}
                Some(Value::Int(i)) => {
                    *sum += i as f64;
                    *n += 1;
                }
                Some(Value::Double(d)) => {
                    *sum += d;
                    *n += 1;
                }
                Some(v) => {
                    return Err(SqlError::TypeMismatch(format!("AVG over {v:?}")));
                }
            },
            AggAcc::Min(cur) => {
                if let Some(v) = arg_val {
                    if !v.is_null()
                        && (cur.is_none()
                            || v.sql_cmp(cur.as_ref().expect("checked"))
                                == Some(std::cmp::Ordering::Less))
                    {
                        *cur = Some(v);
                    }
                }
            }
            AggAcc::Max(cur) => {
                if let Some(v) = arg_val {
                    if !v.is_null()
                        && (cur.is_none()
                            || v.sql_cmp(cur.as_ref().expect("checked"))
                                == Some(std::cmp::Ordering::Greater))
                    {
                        *cur = Some(v);
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Value {
        match self {
            AggAcc::Count(n) => Value::Int(*n),
            AggAcc::Sum { sum, any, int } => {
                if !any {
                    Value::Null
                } else if *int {
                    Value::Int(*sum as i64)
                } else {
                    Value::Double(*sum)
                }
            }
            AggAcc::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *n as f64)
                }
            }
            AggAcc::Min(v) | AggAcc::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

/// Execute an INSERT.
pub fn exec_insert(
    catalog: &mut Catalog,
    table_name: &str,
    columns: &[String],
    rows: &[Vec<Expr>],
    ctx: &EvalCtx,
) -> Result<WriteOutcome, SqlError> {
    let table = get_table_mut(catalog, table_name)?;
    let schema = table.schema().clone();

    // Map insert column list to schema positions.
    let positions: Vec<usize> = if columns.is_empty() {
        (0..schema.arity()).collect()
    } else {
        let mut out = Vec::with_capacity(columns.len());
        for c in columns {
            out.push(
                schema
                    .column_index(c)
                    .ok_or_else(|| SqlError::UnknownColumn(c.clone()))?,
            );
        }
        out
    };

    let mut outcome = WriteOutcome::default();
    for value_exprs in rows {
        if value_exprs.len() != positions.len() {
            return Err(SqlError::Constraint(format!(
                "INSERT has {} values for {} columns",
                value_exprs.len(),
                positions.len()
            )));
        }
        let mut full = vec![Value::Null; schema.arity()];
        for (pos, e) in positions.iter().zip(value_exprs) {
            full[*pos] = eval(e, ctx, &NoColumns)?;
        }
        let rid = table.insert(full)?;
        let stored = table.get(rid).expect("just inserted").clone();
        if let Some(pk) = schema.pk_index() {
            if schema.columns[pk].auto_increment {
                if let Value::Int(v) = stored[pk] {
                    outcome.result.last_insert_id = Some(v);
                }
            }
        }
        outcome.undo.push(UndoEntry {
            table: table_name.to_ascii_lowercase(),
            undo: Undo::Inserted(rid),
        });
        outcome.changes.push(RowChange {
            table: table_name.to_ascii_lowercase(),
            kind: RowChangeKind::Insert { row: stored },
        });
        outcome.result.rows_affected += 1;
    }
    Ok(outcome)
}

/// Shared row-matching for UPDATE and DELETE.
fn matching_rows(
    table: &Table,
    binding: &str,
    filter: Option<&Expr>,
    ctx: &EvalCtx,
    rows_examined: &mut u64,
) -> Result<Vec<RowId>, SqlError> {
    let path = choose_path(table, binding, filter);
    let bindings = [Binding {
        name: binding.to_string(),
        columns: table
            .schema()
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect(),
    }];
    let empty_rows = [None];
    let scope = Scope {
        bindings: &bindings,
        rows: &empty_rows,
    };
    let cands = candidates(table, &path, ctx, &scope)?;
    let mut out = Vec::new();
    for rid in cands {
        let row = table.get(rid).expect("candidate valid").clone();
        *rows_examined += 1;
        let rows_holder = [Some(row)];
        let scope = Scope {
            bindings: &bindings,
            rows: &rows_holder,
        };
        let keep = match filter {
            Some(f) => truth(&eval(f, ctx, &scope)?) == Truth::True,
            None => true,
        };
        if keep {
            out.push(rid);
        }
    }
    Ok(out)
}

/// Execute an UPDATE.
pub fn exec_update(
    catalog: &mut Catalog,
    table_name: &str,
    sets: &[(String, Expr)],
    filter: Option<&Expr>,
    ctx: &EvalCtx,
) -> Result<WriteOutcome, SqlError> {
    let table = get_table_mut(catalog, table_name)?;
    let schema = table.schema().clone();
    let mut set_positions = Vec::with_capacity(sets.len());
    for (c, _) in sets {
        set_positions.push(
            schema
                .column_index(c)
                .ok_or_else(|| SqlError::UnknownColumn(c.clone()))?,
        );
    }

    let mut outcome = WriteOutcome::default();
    let rids = matching_rows(
        table,
        table_name,
        filter,
        ctx,
        &mut outcome.result.rows_examined,
    )?;

    let bindings = [Binding {
        name: table_name.to_string(),
        columns: schema.columns.iter().map(|c| c.name.clone()).collect(),
    }];

    for rid in rids {
        let old = table.get(rid).expect("matched row valid").clone();
        let mut new_row = old.clone();
        {
            let rows_holder = [Some(old.clone())];
            let scope = Scope {
                bindings: &bindings,
                rows: &rows_holder,
            };
            for (pos, (_, e)) in set_positions.iter().zip(sets) {
                new_row[*pos] = eval(e, ctx, &scope)?;
            }
        }
        let old_row = table.update(rid, new_row)?;
        let stored = table.get(rid).expect("updated row valid").clone();
        outcome.undo.push(UndoEntry {
            table: table_name.to_ascii_lowercase(),
            undo: Undo::Updated(rid, old_row.clone()),
        });
        outcome.changes.push(RowChange {
            table: table_name.to_ascii_lowercase(),
            kind: RowChangeKind::Update {
                before: old_row,
                after: stored,
            },
        });
        outcome.result.rows_affected += 1;
    }
    Ok(outcome)
}

/// Execute a DELETE.
pub fn exec_delete(
    catalog: &mut Catalog,
    table_name: &str,
    filter: Option<&Expr>,
    ctx: &EvalCtx,
) -> Result<WriteOutcome, SqlError> {
    let table = get_table_mut(catalog, table_name)?;
    let mut outcome = WriteOutcome::default();
    let rids = matching_rows(
        table,
        table_name,
        filter,
        ctx,
        &mut outcome.result.rows_examined,
    )?;
    for rid in rids {
        let row = table.delete(rid).expect("matched row valid");
        outcome.undo.push(UndoEntry {
            table: table_name.to_ascii_lowercase(),
            undo: Undo::Deleted(rid, row.clone()),
        });
        outcome.changes.push(RowChange {
            table: table_name.to_ascii_lowercase(),
            kind: RowChangeKind::Delete { row },
        });
        outcome.result.rows_affected += 1;
    }
    Ok(outcome)
}
