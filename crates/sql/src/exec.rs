//! Query execution: SELECT pipelines, DML, undo logging, row-change capture.

use crate::ast::*;
use crate::error::SqlError;
use crate::expr::{eval, eval_cow, eval_truth, ColumnResolver, EvalCtx, NoColumns, Truth};
use crate::plan::{choose_path, Path};
use crate::storage::{RowId, Table};
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// The table catalog: lower-cased table name → table.
pub type Catalog = BTreeMap<String, Table>;

/// Catalog key for a table name: lower-cased, but borrowed when the name is
/// already lower-case (the overwhelmingly common case on the hot path, where
/// the per-statement allocation would otherwise add up).
pub fn table_key(name: &str) -> std::borrow::Cow<'_, str> {
    if name.bytes().any(|b| b.is_ascii_uppercase()) {
        std::borrow::Cow::Owned(name.to_ascii_lowercase())
    } else {
        std::borrow::Cow::Borrowed(name)
    }
}

/// Look up a table (case-insensitive).
pub fn get_table<'a>(catalog: &'a Catalog, name: &str) -> Result<&'a Table, SqlError> {
    catalog
        .get(table_key(name).as_ref())
        .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
}

/// Look up a table mutably (case-insensitive).
pub fn get_table_mut<'a>(catalog: &'a mut Catalog, name: &str) -> Result<&'a mut Table, SqlError> {
    catalog
        .get_mut(table_key(name).as_ref())
        .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
}

/// The result of executing one statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Output column names (SELECT only). Shared out of the cached plan —
    /// cloning a result header is a refcount bump, not a `Vec<String>`.
    pub columns: std::sync::Arc<[String]>,
    /// Result rows (SELECT only).
    pub rows: Vec<Vec<Value>>,
    /// Rows inserted/updated/deleted.
    pub rows_affected: u64,
    /// Auto-increment id assigned by the last INSERT, if any.
    pub last_insert_id: Option<i64>,
    /// Rows fetched from storage while executing — the executor's work
    /// measure, consumed by the cost model.
    pub rows_examined: u64,
}

/// Undo information for transaction rollback, in execution order.
#[derive(Debug, Clone)]
pub struct UndoEntry {
    pub table: String,
    pub undo: Undo,
}

/// One reversible mutation. Old images are the storage layer's shared
/// `Arc<[Value]>` handles, so logging undo never copies a row.
#[derive(Debug, Clone)]
pub enum Undo {
    /// Row was inserted; undo deletes it.
    Inserted(RowId),
    /// Row was updated; undo restores the old image.
    Updated(RowId, std::sync::Arc<[Value]>),
    /// Row was deleted; undo re-inserts the old image.
    Deleted(RowId, std::sync::Arc<[Value]>),
}

/// A captured row mutation for row-based binlogging.
#[derive(Debug, Clone, PartialEq)]
pub struct RowChange {
    pub table: String,
    pub kind: RowChangeKind,
}

/// Kind of row mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum RowChangeKind {
    Insert {
        row: Vec<Value>,
    },
    Update {
        before: Vec<Value>,
        after: Vec<Value>,
    },
    Delete {
        row: Vec<Value>,
    },
}

/// Output of a write statement: result plus undo and row-change logs.
#[derive(Debug, Clone, Default)]
pub struct WriteOutcome {
    pub result: QueryResult,
    pub undo: Vec<UndoEntry>,
    pub changes: Vec<RowChange>,
}

/// What a write statement must materialize beyond the data mutation itself.
/// Undo entries only matter inside an explicit transaction and row-change
/// images only when a master logs in row format; the dominant autocommit
/// statement-format path needs neither, so the executor skips the per-row
/// image clones entirely.
#[derive(Debug, Clone, Copy)]
pub struct Capture {
    /// Keep undo entries (session is inside an explicit transaction).
    pub undo: bool,
    /// Keep row-change images (row-format binlogging on a master).
    pub changes: bool,
}

impl Capture {
    /// Capture everything — the conservative default for direct callers.
    pub const ALL: Capture = Capture {
        undo: true,
        changes: true,
    };
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

/// One bound table in a FROM clause. Column names are the table's shared
/// list ([`Table::col_names`]): binding a table costs a refcount bump, not
/// one `String` clone per column.
#[derive(Debug, Clone)]
struct Binding {
    name: String,
    columns: std::sync::Arc<[String]>,
}

/// Row scope across all FROM bindings; `None` = NULL-extended (LEFT JOIN) or
/// not yet bound. Rows are *borrowed* from storage — the join pipeline never
/// clones a row to evaluate predicates or projections over it.
struct Scope<'a> {
    bindings: &'a [Binding],
    rows: &'a [Option<&'a [Value]>],
}

impl ColumnResolver for Scope<'_> {
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Value, SqlError> {
        match qualifier {
            Some(q) => {
                let (i, b) = self
                    .bindings
                    .iter()
                    .enumerate()
                    .find(|(_, b)| b.name.eq_ignore_ascii_case(q))
                    .ok_or_else(|| SqlError::UnknownColumn(format!("{q}.{name}")))?;
                let col = b
                    .columns
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(name))
                    .ok_or_else(|| SqlError::UnknownColumn(format!("{q}.{name}")))?;
                Ok(match self.rows[i] {
                    Some(row) => row[col].clone(),
                    None => Value::Null,
                })
            }
            None => {
                let mut hit: Option<(usize, usize)> = None;
                for (i, b) in self.bindings.iter().enumerate() {
                    if let Some(col) = b.columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                        if hit.is_some() {
                            return Err(SqlError::UnknownColumn(format!(
                                "ambiguous column '{name}'"
                            )));
                        }
                        hit = Some((i, col));
                    }
                }
                let (i, col) = hit.ok_or_else(|| SqlError::UnknownColumn(name.to_string()))?;
                Ok(match self.rows[i] {
                    Some(row) => row[col].clone(),
                    None => Value::Null,
                })
            }
        }
    }

    fn resolve_idx(&self, binding: usize, col: usize) -> Result<Value, SqlError> {
        Ok(match self.rows[binding] {
            Some(row) => row[col].clone(),
            None => Value::Null,
        })
    }

    fn resolve_idx_ref(&self, binding: usize, col: usize) -> Result<&Value, SqlError> {
        Ok(match self.rows[binding] {
            Some(row) => &row[col],
            None => &crate::expr::NULL_VALUE,
        })
    }
}

// ---------------------------------------------------------------------------
// Candidate iteration (access paths)
// ---------------------------------------------------------------------------

/// Candidate rows for one table access. Point lookups borrow the index's
/// posting list directly instead of materializing a fresh `Vec` per access —
/// on the index-nested-loop join path that is one allocation per outer row.
/// Full scans iterate storage directly, skipping both the row-id `Vec` and
/// the per-id B-tree lookup an id list would cost.
enum Cands<'t> {
    Empty,
    One(RowId),
    Slice(&'t [RowId]),
    Owned(Vec<RowId>),
    Scan,
}

impl Cands<'_> {
    /// Iterate `(rid, row)` pairs against the table the candidates came from.
    fn rows<'t>(&self, table: &'t Table) -> CandsIter<'t, '_> {
        match self {
            Cands::Empty => CandsIter::Ids(table, IdIter::One(None)),
            Cands::One(rid) => CandsIter::Ids(table, IdIter::One(Some(*rid))),
            Cands::Slice(s) => CandsIter::Ids(table, IdIter::Slice(s.iter())),
            Cands::Owned(v) => CandsIter::Ids(table, IdIter::Slice(v.iter())),
            Cands::Scan => CandsIter::Scan(table.scan_pairs()),
        }
    }
}

enum IdIter<'a> {
    One(Option<RowId>),
    Slice(std::slice::Iter<'a, RowId>),
}

impl Iterator for IdIter<'_> {
    type Item = RowId;
    fn next(&mut self) -> Option<RowId> {
        match self {
            IdIter::One(o) => o.take(),
            IdIter::Slice(it) => it.next().copied(),
        }
    }
}

enum CandsIter<'t, 'c> {
    Ids(&'t Table, IdIter<'c>),
    Scan(crate::storage::ScanIter<'t>),
}

impl<'t> Iterator for CandsIter<'t, '_> {
    type Item = (RowId, &'t [Value]);
    fn next(&mut self) -> Option<(RowId, &'t [Value])> {
        match self {
            CandsIter::Ids(table, ids) => {
                let rid = ids.next()?;
                Some((rid, table.get(rid).expect("candidate rid valid")))
            }
            CandsIter::Scan(it) => it.next(),
        }
    }
}

/// Produce candidate row ids for a table access, preferring the given
/// path and gracefully falling back to a full scan when a key expression
/// cannot be evaluated in the current scope.
fn candidates<'t>(
    table: &'t Table,
    path: &Path,
    ctx: &EvalCtx,
    scope: &Scope<'_>,
) -> Result<Cands<'t>, SqlError> {
    // Keys evaluate through the borrowing evaluator: an equality probe
    // against a `Text` literal or parameter must not clone the string just
    // to hash it.
    fn eval_key<'e>(
        key: &'e Expr,
        ctx: &'e EvalCtx,
        scope: &'e Scope<'_>,
    ) -> Result<Option<std::borrow::Cow<'e, Value>>, SqlError> {
        match eval_cow(key, ctx, scope) {
            Ok(v) => Ok(Some(v)),
            Err(SqlError::UnknownColumn(_)) => Ok(None), // not evaluable yet
            Err(e) => Err(e),
        }
    }
    Ok(match path {
        Path::FullScan => Cands::Scan,
        Path::PkEq { key } => match eval_key(key, ctx, scope)? {
            Some(v) if !v.is_null() => match table.pk_lookup(&v) {
                Some(rid) => Cands::One(rid),
                None => Cands::Empty,
            },
            Some(_) => Cands::Empty,
            None => Cands::Scan,
        },
        Path::IndexEq { column, key } => match eval_key(key, ctx, scope)? {
            Some(v) if !v.is_null() => {
                let ix = table.index_on(*column).expect("planned index exists");
                Cands::Slice(ix.lookup_eq(&v))
            }
            Some(_) => Cands::Empty,
            None => Cands::Scan,
        },
        Path::PkRange { lo, hi } => match eval_bounds(lo, hi, ctx, scope)? {
            Some((lo_b, hi_b)) => match table.pk_range(as_bound(&lo_b), as_bound(&hi_b)) {
                Some(iter) => Cands::Owned(iter.collect()),
                None => Cands::Scan,
            },
            None => Cands::Scan,
        },
        Path::IndexRange { column, lo, hi } => match eval_bounds(lo, hi, ctx, scope)? {
            Some((lo_b, hi_b)) => {
                let ix = table.index_on(*column).expect("planned index exists");
                Cands::Owned(ix.lookup_range(as_bound(&lo_b), as_bound(&hi_b)).collect())
            }
            None => Cands::Scan,
        },
    })
}

type EvaluatedBound = Option<(Value, bool)>;

fn eval_bounds(
    lo: &Option<(Expr, bool)>,
    hi: &Option<(Expr, bool)>,
    ctx: &EvalCtx,
    scope: &Scope<'_>,
) -> Result<Option<(EvaluatedBound, EvaluatedBound)>, SqlError> {
    let one = |b: &Option<(Expr, bool)>| -> Result<Option<EvaluatedBound>, SqlError> {
        match b {
            None => Ok(Some(None)),
            Some((e, incl)) => match eval(e, ctx, scope) {
                Ok(v) if v.is_null() => Ok(Some(None)), // NULL bound: unbounded side
                Ok(v) => Ok(Some(Some((v, *incl)))),
                Err(SqlError::UnknownColumn(_)) => Ok(None),
                Err(e) => Err(e),
            },
        }
    };
    match (one(lo)?, one(hi)?) {
        (Some(l), Some(h)) => Ok(Some((l, h))),
        _ => Ok(None),
    }
}

fn as_bound(b: &EvaluatedBound) -> Bound<&Value> {
    match b {
        None => Bound::Unbounded,
        Some((v, true)) => Bound::Included(v),
        Some((v, false)) => Bound::Excluded(v),
    }
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

/// One planned FROM source. The table is recorded by catalog key rather than
/// by reference so the plan owns no borrows and can be cached; execution
/// re-resolves the key against the live catalog.
#[derive(Debug, Clone)]
struct PlannedSource {
    /// Lower-cased catalog key.
    table_key: String,
    kind: JoinKind,
    on: Option<Expr>,
    path: Path,
}

/// A fully planned SELECT: resolved FROM sources with chosen access paths,
/// the expanded projection list, and the schema stamp of every table the
/// plan reads (for cache invalidation).
#[derive(Debug, Clone)]
pub struct SelectPlan {
    sources: Vec<PlannedSource>,
    bindings: Vec<Binding>,
    filter: Option<Expr>,
    out_cols: std::sync::Arc<[String]>,
    item_exprs: Vec<(Expr, String)>, // (expr, name) expanded
    aggregate_mode: bool,
    group_by: Vec<Expr>,
    having: Option<Expr>,
    order_by: Vec<OrderKey>,
    /// True when any ORDER BY key names an output column (alias); those
    /// keys read the projected row, so projection cannot be deferred past
    /// the sort.
    order_refs_output: bool,
    distinct: bool,
    limit: Option<u64>,
    offset: Option<u64>,
    deps: Vec<(String, u64)>,
}

impl SelectPlan {
    /// Tables this plan reads, as `(catalog key, schema serial at plan
    /// time)` pairs. A cached plan is stale once any serial has moved.
    pub fn deps(&self) -> &[(String, u64)] {
        &self.deps
    }
}

/// Rewrite every [`Expr::Column`] whose name resolves uniquely against the
/// plan's bindings into a positional [`Expr::Resolved`] reference. Name
/// resolution depends only on the bindings (never on row data), so this is a
/// pure fast path: per-plan scans replace per-row scans. Unknown and
/// ambiguous names are left as-is — [`Scope::resolve`] must still raise the
/// same error at the same point in execution.
fn resolve_columns(e: &mut Expr, bindings: &[Binding]) {
    match e {
        Expr::Column { qualifier, name } => {
            let hit = match qualifier {
                Some(q) => bindings
                    .iter()
                    .enumerate()
                    .find(|(_, b)| b.name.eq_ignore_ascii_case(q))
                    .and_then(|(i, b)| {
                        b.columns
                            .iter()
                            .position(|c| c.eq_ignore_ascii_case(name))
                            .map(|col| (i, col))
                    }),
                None => {
                    let mut hit = None;
                    let mut ambiguous = false;
                    for (i, b) in bindings.iter().enumerate() {
                        if let Some(col) =
                            b.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
                        {
                            ambiguous |= hit.is_some();
                            hit = Some((i, col));
                        }
                    }
                    if ambiguous {
                        None
                    } else {
                        hit
                    }
                }
            };
            if let Some((binding, col)) = hit {
                *e = Expr::Resolved { binding, col };
            }
        }
        Expr::Unary(_, inner) => resolve_columns(inner, bindings),
        Expr::Binary(a, _, b) => {
            resolve_columns(a, bindings);
            resolve_columns(b, bindings);
        }
        Expr::Func { args, .. } => {
            for a in args {
                resolve_columns(a, bindings);
            }
        }
        Expr::IsNull { expr, .. } => resolve_columns(expr, bindings),
        Expr::Like { expr, pattern, .. } => {
            resolve_columns(expr, bindings);
            resolve_columns(pattern, bindings);
        }
        Expr::InList { expr, list, .. } => {
            resolve_columns(expr, bindings);
            for i in list {
                resolve_columns(i, bindings);
            }
        }
        Expr::Between { expr, lo, hi } => {
            resolve_columns(expr, bindings);
            resolve_columns(lo, bindings);
            resolve_columns(hi, bindings);
        }
        Expr::Literal(_) | Expr::Param(_) | Expr::Resolved { .. } => {}
    }
}

/// Plan a SELECT: resolve tables, choose access paths, expand the
/// projection. Everything here depends only on catalog schemas and index
/// definitions, so the result stays valid until a schema-affecting DDL runs.
pub fn plan_select(catalog: &Catalog, sel: &SelectStmt) -> Result<SelectPlan, SqlError> {
    let mut sources: Vec<PlannedSource> = Vec::new();
    let mut bindings: Vec<Binding> = Vec::new();
    let mut deps: Vec<(String, u64)> = Vec::new();
    if let Some(from) = &sel.from {
        let base_table = get_table(catalog, &from.base.table)?;
        let base_binding = from.base.binding().to_string();
        sources.push(PlannedSource {
            table_key: from.base.table.to_ascii_lowercase(),
            kind: JoinKind::Inner,
            on: None,
            path: choose_path(base_table, &base_binding, sel.filter.as_ref()),
        });
        deps.push((
            from.base.table.to_ascii_lowercase(),
            base_table.schema_serial(),
        ));
        bindings.push(Binding {
            name: base_binding,
            columns: base_table.col_names(),
        });
        for j in &from.joins {
            let t = get_table(catalog, &j.table.table)?;
            let binding = j.table.binding().to_string();
            sources.push(PlannedSource {
                table_key: j.table.table.to_ascii_lowercase(),
                kind: j.kind,
                on: Some(j.on.clone()),
                path: choose_path(t, &binding, Some(&j.on)),
            });
            deps.push((j.table.table.to_ascii_lowercase(), t.schema_serial()));
            bindings.push(Binding {
                name: binding,
                columns: t.col_names(),
            });
        }
    }

    // Output columns.
    let mut out_cols: Vec<String> = Vec::new();
    let mut item_exprs: Vec<(Expr, String)> = Vec::new(); // (expr, name) expanded
    for (i, item) in sel.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (bi, b) in bindings.iter().enumerate() {
                    for c in b.columns.iter() {
                        out_cols.push(c.clone());
                        item_exprs.push((
                            Expr::Column {
                                qualifier: Some(bindings[bi].name.clone()),
                                name: c.clone(),
                            },
                            c.clone(),
                        ));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    Expr::Func { name, .. } => name.to_ascii_lowercase(),
                    _ => format!("col{}", i + 1),
                });
                out_cols.push(name.clone());
                item_exprs.push((expr.clone(), name));
            }
        }
    }

    let aggregate_mode = !sel.group_by.is_empty()
        || item_exprs.iter().any(|(e, _)| e.contains_aggregate())
        || sel.having.is_some();
    if sel.having.is_some() && sel.group_by.is_empty() {
        return Err(SqlError::Unsupported(
            "HAVING requires GROUP BY in this engine".into(),
        ));
    }

    let order_refs_output = sel.order_by.iter().any(|ok| {
        matches!(&ok.expr, Expr::Column { qualifier: None, name }
            if out_cols.iter().any(|c| c.eq_ignore_ascii_case(name)))
    });

    // Pre-resolve column names to positions everywhere except ORDER BY keys:
    // those resolve output aliases ahead of table columns, so they must stay
    // named until the projection exists.
    let mut filter = sel.filter.clone();
    if let Some(f) = &mut filter {
        resolve_columns(f, &bindings);
    }
    for src in &mut sources {
        if let Some(on) = &mut src.on {
            resolve_columns(on, &bindings);
        }
    }
    for (e, _) in &mut item_exprs {
        resolve_columns(e, &bindings);
    }
    let mut group_by = sel.group_by.clone();
    for g in &mut group_by {
        resolve_columns(g, &bindings);
    }
    let mut having = sel.having.clone();
    if let Some(h) = &mut having {
        resolve_columns(h, &bindings);
    }

    Ok(SelectPlan {
        sources,
        bindings,
        filter,
        out_cols: out_cols.into(),
        item_exprs,
        aggregate_mode,
        group_by,
        having,
        order_by: sel.order_by.clone(),
        order_refs_output,
        distinct: sel.distinct,
        limit: sel.limit,
        offset: sel.offset,
        deps,
    })
}

/// Execute a SELECT against the catalog (plan + execute in one step).
pub fn exec_select(
    catalog: &Catalog,
    sel: &SelectStmt,
    ctx: &EvalCtx,
) -> Result<QueryResult, SqlError> {
    let plan = plan_select(catalog, sel)?;
    exec_select_planned(catalog, &plan, ctx)
}

/// One aggregation group: accumulators plus the representative scope row
/// (the group's first, used to evaluate non-aggregate expressions).
type AggGroup<'t> = (Vec<AggAcc>, Vec<Option<&'t [Value]>>);

/// Execute a previously planned SELECT against the catalog.
pub fn exec_select_planned<'c>(
    catalog: &'c Catalog,
    plan: &SelectPlan,
    ctx: &EvalCtx,
) -> Result<QueryResult, SqlError> {
    // Re-resolve the planned tables against the live catalog.
    let mut tables: Vec<&'c Table> = Vec::with_capacity(plan.sources.len());
    for s in &plan.sources {
        tables.push(
            catalog
                .get(&s.table_key)
                .ok_or_else(|| SqlError::UnknownTable(s.table_key.clone()))?,
        );
    }
    let bindings = &plan.bindings;
    let out_cols = &plan.out_cols;
    let item_exprs = &plan.item_exprs;

    // Stream scope rows (with WHERE applied) into a per-mode sink. Rows are
    // borrowed straight out of storage; nothing is cloned until a sink
    // decides it must keep something.
    let mut rows_examined: u64 = 0;

    /// Sink receiving each surviving scope row from the join driver.
    type RowSink<'s, 't> = dyn FnMut(&[Option<&'t [Value]>]) -> Result<(), SqlError> + 's;

    // Nested-loop join over per-source candidate lists.
    #[allow(clippy::too_many_arguments)]
    fn recurse<'t>(
        sources: &[PlannedSource],
        tables: &[&'t Table],
        bindings: &[Binding],
        idx: usize,
        scope_rows: &mut Vec<Option<&'t [Value]>>,
        ctx: &EvalCtx,
        filter: Option<&Expr>,
        rows_examined: &mut u64,
        sink: &mut RowSink<'_, 't>,
    ) -> Result<(), SqlError> {
        if idx == sources.len() {
            if let Some(f) = filter {
                let scope = Scope {
                    bindings,
                    rows: scope_rows,
                };
                if eval_truth(f, ctx, &scope)? != Truth::True {
                    return Ok(());
                }
            }
            return sink(scope_rows);
        }
        let src = &sources[idx];
        let table = tables[idx];
        let cands = {
            let scope = Scope {
                bindings,
                rows: scope_rows,
            };
            candidates(table, &src.path, ctx, &scope)?
        };
        let mut matched = false;
        for (_rid, row) in cands.rows(table) {
            *rows_examined += 1;
            scope_rows[idx] = Some(row);
            // Re-check the ON predicate (the path may be a superset).
            if let Some(on) = &src.on {
                let scope = Scope {
                    bindings,
                    rows: scope_rows,
                };
                if eval_truth(on, ctx, &scope)? != Truth::True {
                    scope_rows[idx] = None;
                    continue;
                }
            }
            matched = true;
            recurse(
                sources,
                tables,
                bindings,
                idx + 1,
                scope_rows,
                ctx,
                filter,
                rows_examined,
                sink,
            )?;
            scope_rows[idx] = None;
        }
        if !matched && src.kind == JoinKind::Left {
            scope_rows[idx] = None;
            recurse(
                sources,
                tables,
                bindings,
                idx + 1,
                scope_rows,
                ctx,
                filter,
                rows_examined,
                sink,
            )?;
        }
        Ok(())
    }

    /// Drive the join, feeding each surviving scope row to `sink`.
    fn drive<'t>(
        plan: &SelectPlan,
        tables: &[&'t Table],
        ctx: &EvalCtx,
        rows_examined: &mut u64,
        sink: &mut RowSink<'_, 't>,
    ) -> Result<(), SqlError> {
        if plan.sources.is_empty() {
            // A FROM-less SELECT yields exactly one row over an empty scope;
            // the padding entry is never read (there are no bindings).
            return sink(&[None]);
        }
        let mut scope_rows: Vec<Option<&'t [Value]>> = vec![None; plan.sources.len()];
        recurse(
            &plan.sources,
            tables,
            &plan.bindings,
            0,
            &mut scope_rows,
            ctx,
            plan.filter.as_ref(),
            rows_examined,
            sink,
        )
    }

    // Project (and aggregate).
    // Each output row carries its sort keys, computed pre-projection.
    let mut result_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::new(); // (sort_keys, out_row)

    let order_key_exprs: Vec<&OrderKey> = plan.order_by.iter().collect();

    let compute_sort_keys =
        |out_row: &[Value], scope: &dyn ColumnResolver| -> Result<Vec<Value>, SqlError> {
            let mut keys = Vec::with_capacity(order_key_exprs.len());
            for ok in &order_key_exprs {
                // Alias / output-name reference?
                if let Expr::Column {
                    qualifier: None,
                    name,
                } = &ok.expr
                {
                    if let Some(pos) = out_cols.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                        keys.push(out_row[pos].clone());
                        continue;
                    }
                }
                keys.push(eval(&ok.expr, ctx, scope)?);
            }
            Ok(keys)
        };

    if plan.aggregate_mode {
        let specs = collect_agg_specs(item_exprs, &plan.order_by, plan.having.as_ref());
        // (accumulators, representative scope rows); output order is group
        // discovery order, so the index map can be an unordered HashMap.
        let mut groups: Vec<AggGroup<'c>> = Vec::new();
        let mut group_index: HashMap<GroupKey, usize> = HashMap::new();
        // Rows stream straight into accumulators; only each group's first row
        // is kept (as the group's representative scope). A global aggregate
        // (no GROUP BY) skips the key hashing entirely — one group, found
        // without a lookup.
        let global = plan.group_by.is_empty();
        let mut sink = |scope_rows: &[Option<&'c [Value]>]| -> Result<(), SqlError> {
            let scope = Scope {
                bindings,
                rows: scope_rows,
            };
            let gi = if global {
                if groups.is_empty() {
                    groups.push((specs.iter().map(AggAcc::new).collect(), scope_rows.to_vec()));
                }
                0
            } else {
                let mut key = Vec::with_capacity(plan.group_by.len());
                for g in &plan.group_by {
                    key.push(ValueKey::from(eval(g, ctx, &scope)?));
                }
                let key = GroupKey(key);
                match group_index.get(&key) {
                    Some(&gi) => gi,
                    None => {
                        groups.push((specs.iter().map(AggAcc::new).collect(), scope_rows.to_vec()));
                        group_index.insert(key, groups.len() - 1);
                        groups.len() - 1
                    }
                }
            };
            for (acc, spec) in groups[gi].0.iter_mut().zip(&specs) {
                acc.update(spec, ctx, &scope)?;
            }
            Ok(())
        };
        drive(plan, &tables, ctx, &mut rows_examined, &mut sink)?;
        // A global aggregate over zero rows still yields one group.
        if groups.is_empty() && global {
            groups.push((
                specs.iter().map(AggAcc::new).collect(),
                vec![None; bindings.len()],
            ));
        }

        for (accs, rep_rows) in &groups {
            let scope = Scope {
                bindings,
                rows: rep_rows,
            };
            let agg_values: Vec<Value> = accs.iter().map(|a| a.finish()).collect();
            // HAVING filters whole groups; aggregates inside it substitute.
            if let Some(h) = &plan.having {
                let rewritten = substitute_aggs(h, &specs, &agg_values);
                if eval_truth(&rewritten, ctx, &scope)? != Truth::True {
                    continue;
                }
            }
            let mut out_row = Vec::with_capacity(item_exprs.len());
            for (e, _) in item_exprs {
                let rewritten = substitute_aggs(e, &specs, &agg_values);
                out_row.push(eval(&rewritten, ctx, &scope)?);
            }
            // Sort keys may contain aggregates too.
            let mut keys = Vec::with_capacity(order_key_exprs.len());
            for ok in &order_key_exprs {
                if let Expr::Column {
                    qualifier: None,
                    name,
                } = &ok.expr
                {
                    if let Some(pos) = out_cols.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                        keys.push(out_row[pos].clone());
                        continue;
                    }
                }
                let rewritten = substitute_aggs(&ok.expr, &specs, &agg_values);
                keys.push(eval(&rewritten, ctx, &scope)?);
            }
            result_rows.push((keys, out_row));
        }
    } else {
        // Sorting needs every emitted row at once, so the non-aggregate path
        // materializes — but into one flat buffer of borrowed row slices
        // (chunks of `n_srcs`), not a Vec-per-row.
        let n_srcs = plan.sources.len().max(1);
        let mut flat: Vec<Option<&'c [Value]>> = Vec::new();
        let mut sink = |scope_rows: &[Option<&'c [Value]>]| -> Result<(), SqlError> {
            flat.extend_from_slice(scope_rows);
            Ok(())
        };
        drive(plan, &tables, ctx, &mut rows_examined, &mut sink)?;

        // Windowed fast path: with OFFSET/LIMIT, no DISTINCT, and sort keys
        // that don't read the projected row, sort the borrowed scope rows
        // first and project only the window's survivors — projection is the
        // expensive step (it clones every projected value).
        let windowed = (plan.limit.is_some() || plan.offset.is_some())
            && !plan.distinct
            && !plan.order_refs_output;
        if windowed {
            let mut keyed: Vec<(Vec<Value>, usize)> = Vec::with_capacity(flat.len() / n_srcs);
            for (i, scope_rows) in flat.chunks(n_srcs).enumerate() {
                let scope = Scope {
                    bindings,
                    rows: scope_rows,
                };
                let mut keys = Vec::with_capacity(order_key_exprs.len());
                for ok in &order_key_exprs {
                    keys.push(eval(&ok.expr, ctx, &scope)?);
                }
                keyed.push((keys, i));
            }
            if !plan.order_by.is_empty() {
                keyed.sort_by(|(ka, _), (kb, _)| cmp_sort_keys(&plan.order_by, ka, kb));
            }
            let offset = plan.offset.unwrap_or(0) as usize;
            let take = plan.limit.map(|l| l as usize).unwrap_or(usize::MAX);
            let mut rows = Vec::new();
            for (_, i) in keyed.into_iter().skip(offset).take(take) {
                let scope = Scope {
                    bindings,
                    rows: &flat[i * n_srcs..(i + 1) * n_srcs],
                };
                let mut out_row = Vec::with_capacity(item_exprs.len());
                for (e, _) in item_exprs {
                    out_row.push(eval(e, ctx, &scope)?);
                }
                rows.push(out_row);
            }
            return Ok(QueryResult {
                columns: out_cols.clone(),
                rows,
                rows_affected: 0,
                last_insert_id: None,
                rows_examined,
            });
        }

        for scope_rows in flat.chunks(n_srcs) {
            let scope = Scope {
                bindings,
                rows: scope_rows,
            };
            let mut out_row = Vec::with_capacity(item_exprs.len());
            for (e, _) in item_exprs {
                out_row.push(eval(e, ctx, &scope)?);
            }
            let keys = compute_sort_keys(&out_row, &scope)?;
            result_rows.push((keys, out_row));
        }
    }

    // DISTINCT: keep the first occurrence of each projected row.
    if plan.distinct {
        let mut seen: std::collections::HashSet<GroupKey> = std::collections::HashSet::new();
        result_rows.retain(|(_, row)| {
            seen.insert(GroupKey(
                row.iter().map(|v| ValueKey::from(v.clone())).collect(),
            ))
        });
    }

    // ORDER BY.
    if !plan.order_by.is_empty() {
        result_rows.sort_by(|(ka, _), (kb, _)| cmp_sort_keys(&plan.order_by, ka, kb));
    }

    // OFFSET / LIMIT.
    let offset = plan.offset.unwrap_or(0) as usize;
    let rows: Vec<Vec<Value>> = result_rows
        .into_iter()
        .map(|(_, r)| r)
        .skip(offset)
        .take(plan.limit.map(|l| l as usize).unwrap_or(usize::MAX))
        .collect();

    Ok(QueryResult {
        columns: out_cols.clone(),
        rows,
        rows_affected: 0,
        last_insert_id: None,
        rows_examined,
    })
}

/// Compare two pre-computed sort-key rows under an ORDER BY spec. `sort_by`
/// is stable, so equal keys keep emission order with or without deferred
/// projection.
fn cmp_sort_keys(order_by: &[OrderKey], ka: &[Value], kb: &[Value]) -> std::cmp::Ordering {
    for (i, ok) in order_by.iter().enumerate() {
        let ord = ka[i].index_cmp(&kb[i]);
        let ord = if ok.desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Exact-value grouping / DISTINCT key. Equality must distinguish exactly
/// what `Value`'s `Debug` formatting distinguishes — `Int(1)` ≠
/// `Double(1.0)` ≠ `Timestamp(1)`, `-0.0` ≠ `0.0` — while treating every
/// NaN as equal to itself, without allocating a formatted string per row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupKey(Vec<ValueKey>);

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ValueKey {
    Null,
    Int(i64),
    /// `f64` bits, with every NaN normalized to one pattern.
    DoubleBits(u64),
    Text(String),
    Bool(bool),
    Timestamp(i64),
}

impl From<Value> for ValueKey {
    fn from(v: Value) -> ValueKey {
        match v {
            Value::Null => ValueKey::Null,
            Value::Int(i) => ValueKey::Int(i),
            Value::Double(d) => ValueKey::DoubleBits(if d.is_nan() {
                f64::NAN.to_bits()
            } else {
                d.to_bits()
            }),
            Value::Text(s) => ValueKey::Text(s),
            Value::Bool(b) => ValueKey::Bool(b),
            Value::Timestamp(t) => ValueKey::Timestamp(t),
        }
    }
}

/// Execute an EXPLAIN: report each table access with its chosen path,
/// mirroring the planner decisions `exec_select` would make.
pub fn explain_select(catalog: &Catalog, sel: &SelectStmt) -> Result<QueryResult, SqlError> {
    let mut res = QueryResult {
        columns: vec!["table".into(), "binding".into(), "access".into()].into(),
        ..QueryResult::default()
    };
    let Some(from) = &sel.from else {
        res.rows.push(vec![
            Value::Text("(no table)".into()),
            Value::Null,
            Value::Text("constant".into()),
        ]);
        return Ok(res);
    };
    let base = get_table(catalog, &from.base.table)?;
    let base_binding = from.base.binding();
    let path = choose_path(base, base_binding, sel.filter.as_ref());
    res.rows.push(vec![
        Value::Text(from.base.table.clone()),
        Value::Text(base_binding.to_string()),
        Value::Text(path.describe()),
    ]);
    for j in &from.joins {
        let t = get_table(catalog, &j.table.table)?;
        let binding = j.table.binding();
        let path = choose_path(t, binding, Some(&j.on));
        res.rows.push(vec![
            Value::Text(j.table.table.clone()),
            Value::Text(binding.to_string()),
            Value::Text(path.describe()),
        ]);
    }
    Ok(res)
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct AggSpec {
    name: String,
    arg: Option<Expr>,
    star: bool,
}

fn collect_agg_specs(
    items: &[(Expr, String)],
    order_by: &[OrderKey],
    having: Option<&Expr>,
) -> Vec<AggSpec> {
    let mut specs: Vec<AggSpec> = Vec::new();
    let mut add_from = |e: &Expr| {
        e.walk(&mut |node| {
            if let Expr::Func { name, args, star } = node {
                if is_aggregate_name(name) {
                    let spec = AggSpec {
                        name: name.to_ascii_uppercase(),
                        arg: args.first().cloned(),
                        star: *star,
                    };
                    if !specs.contains(&spec) {
                        specs.push(spec);
                    }
                }
            }
        });
    };
    for (e, _) in items {
        add_from(e);
    }
    for ok in order_by {
        add_from(&ok.expr);
    }
    if let Some(h) = having {
        add_from(h);
    }
    specs
}

/// Replace aggregate calls with their computed values.
fn substitute_aggs(e: &Expr, specs: &[AggSpec], values: &[Value]) -> Expr {
    if let Expr::Func { name, args, star } = e {
        if is_aggregate_name(name) {
            let spec = AggSpec {
                name: name.to_ascii_uppercase(),
                arg: args.first().cloned(),
                star: *star,
            };
            if let Some(i) = specs.iter().position(|s| *s == spec) {
                return Expr::Literal(values[i].clone());
            }
        }
    }
    match e {
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(substitute_aggs(inner, specs, values))),
        Expr::Binary(a, op, b) => Expr::Binary(
            Box::new(substitute_aggs(a, specs, values)),
            *op,
            Box::new(substitute_aggs(b, specs, values)),
        ),
        Expr::Func { name, args, star } => Expr::Func {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| substitute_aggs(a, specs, values))
                .collect(),
            star: *star,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(substitute_aggs(expr, specs, values)),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(substitute_aggs(expr, specs, values)),
            pattern: Box::new(substitute_aggs(pattern, specs, values)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(substitute_aggs(expr, specs, values)),
            list: list
                .iter()
                .map(|i| substitute_aggs(i, specs, values))
                .collect(),
            negated: *negated,
        },
        Expr::Between { expr, lo, hi } => Expr::Between {
            expr: Box::new(substitute_aggs(expr, specs, values)),
            lo: Box::new(substitute_aggs(lo, specs, values)),
            hi: Box::new(substitute_aggs(hi, specs, values)),
        },
        other => other.clone(),
    }
}

#[derive(Debug, Clone)]
enum AggAcc {
    Count(i64),
    Sum { sum: f64, any: bool, int: bool },
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggAcc {
    fn new(spec: &AggSpec) -> AggAcc {
        match spec.name.as_str() {
            "COUNT" => AggAcc::Count(0),
            "SUM" => AggAcc::Sum {
                sum: 0.0,
                any: false,
                int: true,
            },
            "AVG" => AggAcc::Avg { sum: 0.0, n: 0 },
            "MIN" => AggAcc::Min(None),
            "MAX" => AggAcc::Max(None),
            other => unreachable!("non-aggregate {other}"),
        }
    }

    fn update(
        &mut self,
        spec: &AggSpec,
        ctx: &EvalCtx,
        scope: &dyn ColumnResolver,
    ) -> Result<(), SqlError> {
        let arg_val = if spec.star {
            Some(Value::Int(1))
        } else if let Some(arg) = &spec.arg {
            Some(eval(arg, ctx, scope)?)
        } else {
            None
        };
        match self {
            AggAcc::Count(n) => match arg_val {
                Some(Value::Null) => {}
                Some(_) => *n += 1,
                None => return Err(SqlError::BadParameter("COUNT needs an argument".into())),
            },
            AggAcc::Sum { sum, any, int } => match arg_val {
                Some(Value::Null) | None => {}
                Some(Value::Int(i)) => {
                    *sum += i as f64;
                    *any = true;
                }
                Some(Value::Double(d)) => {
                    *sum += d;
                    *any = true;
                    *int = false;
                }
                Some(v) => {
                    return Err(SqlError::TypeMismatch(format!("SUM over {v:?}")));
                }
            },
            AggAcc::Avg { sum, n } => match arg_val {
                Some(Value::Null) | None => {}
                Some(Value::Int(i)) => {
                    *sum += i as f64;
                    *n += 1;
                }
                Some(Value::Double(d)) => {
                    *sum += d;
                    *n += 1;
                }
                Some(v) => {
                    return Err(SqlError::TypeMismatch(format!("AVG over {v:?}")));
                }
            },
            AggAcc::Min(cur) => {
                if let Some(v) = arg_val {
                    if !v.is_null()
                        && (cur.is_none()
                            || v.sql_cmp(cur.as_ref().expect("checked"))
                                == Some(std::cmp::Ordering::Less))
                    {
                        *cur = Some(v);
                    }
                }
            }
            AggAcc::Max(cur) => {
                if let Some(v) = arg_val {
                    if !v.is_null()
                        && (cur.is_none()
                            || v.sql_cmp(cur.as_ref().expect("checked"))
                                == Some(std::cmp::Ordering::Greater))
                    {
                        *cur = Some(v);
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Value {
        match self {
            AggAcc::Count(n) => Value::Int(*n),
            AggAcc::Sum { sum, any, int } => {
                if !any {
                    Value::Null
                } else if *int {
                    Value::Int(*sum as i64)
                } else {
                    Value::Double(*sum)
                }
            }
            AggAcc::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *n as f64)
                }
            }
            AggAcc::Min(v) | AggAcc::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

/// Execute an INSERT.
pub fn exec_insert(
    catalog: &mut Catalog,
    table_name: &str,
    columns: &[String],
    rows: &[Vec<Expr>],
    ctx: &EvalCtx,
    cap: Capture,
) -> Result<WriteOutcome, SqlError> {
    let table = get_table_mut(catalog, table_name)?;

    // Map insert column list to schema positions. The schema borrows end
    // before the mutating insert loop starts, so no clone of the schema is
    // needed.
    let (arity, positions, pk_auto) = {
        let schema = table.schema();
        let positions: Vec<usize> = if columns.is_empty() {
            (0..schema.arity()).collect()
        } else {
            let mut out = Vec::with_capacity(columns.len());
            for c in columns {
                out.push(
                    schema
                        .column_index(c)
                        .ok_or_else(|| SqlError::UnknownColumn(c.clone()))?,
                );
            }
            out
        };
        let pk_auto = schema
            .pk_index()
            .filter(|&pk| schema.columns[pk].auto_increment);
        (schema.arity(), positions, pk_auto)
    };

    let mut outcome = WriteOutcome::default();
    let key = table_key(table_name);
    for value_exprs in rows {
        if value_exprs.len() != positions.len() {
            return Err(SqlError::Constraint(format!(
                "INSERT has {} values for {} columns",
                value_exprs.len(),
                positions.len()
            )));
        }
        let mut full = vec![Value::Null; arity];
        for (pos, e) in positions.iter().zip(value_exprs) {
            full[*pos] = eval(e, ctx, &NoColumns)?;
        }
        let rid = table.insert(full)?;
        let stored = table.get(rid).expect("just inserted");
        if let Some(pk) = pk_auto {
            // TIMESTAMP auto-increment keys store `Timestamp`; the assigned
            // id is still reported through last_insert_id.
            if let Value::Int(v) | Value::Timestamp(v) = stored[pk] {
                outcome.result.last_insert_id = Some(v);
            }
        }
        if cap.undo {
            outcome.undo.push(UndoEntry {
                table: key.clone().into_owned(),
                undo: Undo::Inserted(rid),
            });
        }
        if cap.changes {
            outcome.changes.push(RowChange {
                table: key.clone().into_owned(),
                kind: RowChangeKind::Insert {
                    row: stored.to_vec(),
                },
            });
        }
        outcome.result.rows_affected += 1;
    }
    Ok(outcome)
}

/// Shared row-matching for UPDATE and DELETE.
fn matching_rows(
    table: &Table,
    binding: &str,
    filter: Option<&Expr>,
    ctx: &EvalCtx,
    rows_examined: &mut u64,
) -> Result<Vec<RowId>, SqlError> {
    let path = choose_path(table, binding, filter);
    let bindings = [Binding {
        name: binding.to_string(),
        columns: table.col_names(),
    }];
    let empty_rows = [None];
    let scope = Scope {
        bindings: &bindings,
        rows: &empty_rows,
    };
    let cands = candidates(table, &path, ctx, &scope)?;
    let mut out = Vec::new();
    for (rid, row) in cands.rows(table) {
        *rows_examined += 1;
        let rows_holder = [Some(row)];
        let scope = Scope {
            bindings: &bindings,
            rows: &rows_holder,
        };
        let keep = match filter {
            Some(f) => eval_truth(f, ctx, &scope)? == Truth::True,
            None => true,
        };
        if keep {
            out.push(rid);
        }
    }
    Ok(out)
}

/// Execute an UPDATE.
pub fn exec_update(
    catalog: &mut Catalog,
    table_name: &str,
    sets: &[(String, Expr)],
    filter: Option<&Expr>,
    ctx: &EvalCtx,
    cap: Capture,
) -> Result<WriteOutcome, SqlError> {
    let table = get_table_mut(catalog, table_name)?;
    let (set_positions, bindings) = {
        let schema = table.schema();
        let mut set_positions = Vec::with_capacity(sets.len());
        for (c, _) in sets {
            set_positions.push(
                schema
                    .column_index(c)
                    .ok_or_else(|| SqlError::UnknownColumn(c.clone()))?,
            );
        }
        let bindings = [Binding {
            name: table_name.to_string(),
            columns: table.col_names(),
        }];
        (set_positions, bindings)
    };

    let mut outcome = WriteOutcome::default();
    let rids = matching_rows(
        table,
        table_name,
        filter,
        ctx,
        &mut outcome.result.rows_examined,
    )?;

    let key = table_key(table_name);
    for rid in rids {
        // One clone builds the new image; the SET expressions evaluate
        // against the borrowed old row.
        let mut new_row;
        {
            let old = table.get(rid).expect("matched row valid");
            new_row = old.to_vec();
            let rows_holder = [Some(old)];
            let scope = Scope {
                bindings: &bindings,
                rows: &rows_holder,
            };
            for (pos, (_, e)) in set_positions.iter().zip(sets) {
                new_row[*pos] = eval(e, ctx, &scope)?;
            }
        }
        let old_row = table.update(rid, new_row)?;
        if cap.changes {
            // Shipped images are owned copies; the undo log shares the Arc.
            let after = table.get(rid).expect("updated row valid").to_vec();
            if cap.undo {
                outcome.undo.push(UndoEntry {
                    table: key.clone().into_owned(),
                    undo: Undo::Updated(rid, old_row.clone()),
                });
            }
            outcome.changes.push(RowChange {
                table: key.clone().into_owned(),
                kind: RowChangeKind::Update {
                    before: old_row.to_vec(),
                    after,
                },
            });
        } else if cap.undo {
            outcome.undo.push(UndoEntry {
                table: key.clone().into_owned(),
                undo: Undo::Updated(rid, old_row),
            });
        }
        outcome.result.rows_affected += 1;
    }
    Ok(outcome)
}

/// Execute a DELETE.
pub fn exec_delete(
    catalog: &mut Catalog,
    table_name: &str,
    filter: Option<&Expr>,
    ctx: &EvalCtx,
    cap: Capture,
) -> Result<WriteOutcome, SqlError> {
    let table = get_table_mut(catalog, table_name)?;
    let mut outcome = WriteOutcome::default();
    let rids = matching_rows(
        table,
        table_name,
        filter,
        ctx,
        &mut outcome.result.rows_examined,
    )?;
    let key = table_key(table_name);
    for rid in rids {
        let row = table.delete(rid).expect("matched row valid");
        match (cap.undo, cap.changes) {
            (true, true) => {
                outcome.undo.push(UndoEntry {
                    table: key.clone().into_owned(),
                    undo: Undo::Deleted(rid, row.clone()),
                });
                outcome.changes.push(RowChange {
                    table: key.clone().into_owned(),
                    kind: RowChangeKind::Delete { row: row.to_vec() },
                });
            }
            (true, false) => outcome.undo.push(UndoEntry {
                table: key.clone().into_owned(),
                undo: Undo::Deleted(rid, row),
            }),
            (false, true) => outcome.changes.push(RowChange {
                table: key.clone().into_owned(),
                kind: RowChangeKind::Delete { row: row.to_vec() },
            }),
            (false, false) => {}
        }
        outcome.result.rows_affected += 1;
    }
    Ok(outcome)
}
