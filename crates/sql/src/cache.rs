//! Statement→plan cache: parse and plan once per distinct SQL text.
//!
//! Keyed by the raw SQL string. Each entry holds the parsed [`Statement`]
//! and, for SELECTs, the full [`SelectPlan`]; parameters bind at execute
//! time, so one entry serves every execution of a parameterized statement.
//! This is what makes the statement-based replication redo path cheap: a
//! slave re-applying the workload's handful of distinct statement shapes
//! pays one parse+plan per shape, then a hash lookup per event.
//!
//! Entries are validated against the owning engine's DDL serial before
//! reuse. Any schema-affecting DDL bumps the serial; an entry whose last
//! validation is older re-checks its recorded table dependencies (table
//! still present, schema serial unmoved) and is evicted when one moved.
//! Eviction is LRU over a fixed capacity, driven by an explicit clock tick —
//! never by hash iteration order or wall time — so cache behaviour is fully
//! deterministic.

use crate::ast::Statement;
use crate::exec::SelectPlan;
use std::collections::HashMap;
use std::sync::Arc;

/// A parsed (and, for SELECT, planned) statement. Shared via `Arc` so the
/// borrow on the cache ends before execution begins.
#[derive(Debug)]
pub struct CachedPlan {
    /// The parsed statement.
    pub stmt: Statement,
    /// The access-path plan, when the statement is a SELECT. Non-SELECT
    /// statements resolve table names at execute time and need no plan.
    pub select: Option<SelectPlan>,
    /// Number of `?` placeholders, checked against the bound parameters
    /// when the statement is binlogged.
    pub param_count: usize,
}

#[derive(Debug)]
struct Entry {
    plan: Arc<CachedPlan>,
    /// Engine DDL serial at the last successful validation. While it still
    /// matches the engine's counter the entry is fresh with no further
    /// checks; otherwise the dependency serials are re-checked.
    validated_serial: u64,
    /// LRU clock tick of the last hit or insertion.
    last_used: u64,
}

/// Hit/miss counters and current size, exposed for tests and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

/// LRU statement→plan cache.
#[derive(Debug)]
pub struct PlanCache {
    map: HashMap<String, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans; zero disables caching.
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Maximum number of entries (zero = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Change the capacity, evicting LRU entries that no longer fit.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.map.len() > self.capacity {
            self.evict_lru();
        }
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Look up `sql`. An entry validated at the current `ddl_serial` is
    /// returned directly; an older entry is returned only if `still_valid`
    /// confirms its dependencies, and is evicted (and counted as a miss)
    /// otherwise.
    pub fn get_validated<F>(
        &mut self,
        sql: &str,
        ddl_serial: u64,
        still_valid: F,
    ) -> Option<Arc<CachedPlan>>
    where
        F: FnOnce(&CachedPlan) -> bool,
    {
        let fresh = match self.map.get(sql) {
            Some(e) => e.validated_serial == ddl_serial || still_valid(&e.plan),
            None => {
                self.misses += 1;
                return None;
            }
        };
        if fresh {
            self.tick += 1;
            let e = self.map.get_mut(sql).expect("entry just found");
            e.validated_serial = ddl_serial;
            e.last_used = self.tick;
            self.hits += 1;
            Some(Arc::clone(&e.plan))
        } else {
            self.map.remove(sql);
            self.misses += 1;
            None
        }
    }

    /// Insert a freshly built plan validated at `ddl_serial`. No-op when
    /// the cache is disabled. Callers must not insert failed plans — a
    /// statement that cannot be planned is never pinned as an entry.
    pub fn insert(&mut self, sql: String, plan: Arc<CachedPlan>, ddl_serial: u64) {
        if self.capacity == 0 {
            return;
        }
        while self.map.len() >= self.capacity && !self.map.contains_key(&sql) {
            self.evict_lru();
        }
        self.tick += 1;
        self.map.insert(
            sql,
            Entry {
                plan,
                validated_serial: ddl_serial,
                last_used: self.tick,
            },
        );
    }

    /// Evict the least-recently-used entry. O(n) scan; at the default
    /// capacity of a few hundred entries this is cheaper than keeping an
    /// ordered side structure coherent on every hit.
    fn evict_lru(&mut self) {
        let victim = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone());
        if let Some(k) = victim {
            self.map.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            stmt: Statement::Begin,
            select: None,
            param_count: 0,
        })
    }

    #[test]
    fn hit_after_insert() {
        let mut c = PlanCache::new(4);
        assert!(c.get_validated("BEGIN", 0, |_| true).is_none());
        c.insert("BEGIN".into(), plan(), 0);
        assert!(c.get_validated("BEGIN", 0, |_| true).is_some());
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn stale_entry_revalidates_or_evicts() {
        let mut c = PlanCache::new(4);
        c.insert("BEGIN".into(), plan(), 0);
        // Serial moved but dependencies still check out: hit, re-stamped.
        assert!(c.get_validated("BEGIN", 5, |_| true).is_some());
        // Serial matches the re-stamp now, validator must not even run.
        assert!(c.get_validated("BEGIN", 5, |_| false).is_some());
        // Serial moves again and dependencies fail: evicted.
        assert!(c.get_validated("BEGIN", 6, |_| false).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = PlanCache::new(2);
        c.insert("a".into(), plan(), 0);
        c.insert("b".into(), plan(), 0);
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get_validated("a", 0, |_| true).is_some());
        c.insert("c".into(), plan(), 0);
        assert!(c.get_validated("a", 0, |_| true).is_some());
        assert!(c.get_validated("b", 0, |_| true).is_none());
        assert!(c.get_validated("c", 0, |_| true).is_some());
    }

    #[test]
    fn capacity_zero_disables() {
        let mut c = PlanCache::new(0);
        c.insert("a".into(), plan(), 0);
        assert!(c.get_validated("a", 0, |_| true).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let mut c = PlanCache::new(4);
        for k in ["a", "b", "c", "d"] {
            c.insert(k.into(), plan(), 0);
        }
        c.set_capacity(1);
        assert_eq!(c.stats().entries, 1);
        // The survivor is the most recently inserted.
        assert!(c.get_validated("d", 0, |_| true).is_some());
    }
}
