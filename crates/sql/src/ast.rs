//! Abstract syntax tree for the supported SQL subset.

use crate::schema::TableSchema;
use crate::value::Value;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        schema: TableSchema,
        if_not_exists: bool,
    },
    CreateIndex {
        name: String,
        table: String,
        column: String,
        unique: bool,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    Insert {
        table: String,
        /// Explicit column list; empty means "all columns in order".
        columns: Vec<String>,
        rows: Vec<Vec<Expr>>,
    },
    Select(SelectStmt),
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        filter: Option<Expr>,
    },
    Delete {
        table: String,
        filter: Option<Expr>,
    },
    Begin,
    Commit,
    Rollback,
    /// `EXPLAIN SELECT ...`: report the chosen access paths instead of rows.
    Explain(Box<SelectStmt>),
}

impl Statement {
    /// True for statements that modify data or schema (and therefore must be
    /// routed to the master and logged to the binlog).
    pub fn is_write(&self) -> bool {
        !matches!(
            self,
            Statement::Select(_)
                | Statement::Begin
                | Statement::Commit
                | Statement::Rollback
                | Statement::Explain(_)
        )
    }

    /// Number of `?` placeholders in the statement. The parser numbers
    /// placeholders sequentially in source order, so this count equals the
    /// number of parameters the statement binds.
    pub fn param_count(&self) -> usize {
        let mut n = 0;
        self.walk_exprs(&mut |e| {
            if matches!(e, Expr::Param(_)) {
                n += 1;
            }
        });
        n
    }

    /// Visit every expression in the statement, depth-first.
    pub fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Statement::Insert { rows, .. } => {
                for row in rows {
                    for e in row {
                        e.walk(f);
                    }
                }
            }
            Statement::Select(sel) => walk_select_exprs(sel, f),
            Statement::Explain(sel) => walk_select_exprs(sel, f),
            Statement::Update { sets, filter, .. } => {
                for (_, e) in sets {
                    e.walk(f);
                }
                if let Some(w) = filter {
                    w.walk(f);
                }
            }
            Statement::Delete { filter, .. } => {
                if let Some(w) = filter {
                    w.walk(f);
                }
            }
            Statement::CreateTable { .. }
            | Statement::CreateIndex { .. }
            | Statement::DropTable { .. }
            | Statement::Begin
            | Statement::Commit
            | Statement::Rollback => {}
        }
    }
}

/// Visit every expression in a SELECT, depth-first.
fn walk_select_exprs(sel: &SelectStmt, f: &mut impl FnMut(&Expr)) {
    for item in &sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            expr.walk(f);
        }
    }
    if let Some(from) = &sel.from {
        for j in &from.joins {
            j.on.walk(f);
        }
    }
    if let Some(w) = &sel.filter {
        w.walk(f);
    }
    for g in &sel.group_by {
        g.walk(f);
    }
    if let Some(h) = &sel.having {
        h.walk(f);
    }
    for ok in &sel.order_by {
        ok.expr.walk(f);
    }
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<FromClause>,
    pub filter: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// FROM clause: a base table plus zero or more joins.
#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    pub base: TableRef,
    pub joins: Vec<Join>,
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table binds in scopes (alias if present).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Join kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
}

/// One JOIN.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinKind,
    pub table: TableRef,
    pub on: Expr,
}

/// ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expr,
    pub desc: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    And,
    Or,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    /// Column reference: optional qualifier (table or alias) plus name.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// `?` positional parameter (0-based position).
    Param(usize),
    /// Column reference pre-resolved by the SELECT planner to positional
    /// `(FROM binding, column)` indices. Never produced by the parser;
    /// name resolution depends only on the plan's bindings, so the planner
    /// rewrites every [`Expr::Column`] it can resolve unambiguously and
    /// leaves the rest named (their lookup errors must stay per-row).
    Resolved {
        binding: usize,
        col: usize,
    },
    Unary(UnOp, Box<Expr>),
    Binary(Box<Expr>, BinOp, Box<Expr>),
    /// Function call; `COUNT(*)` is `Func("COUNT", [])` with `star = true`.
    Func {
        name: String,
        args: Vec<Expr>,
        star: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'`
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (list)`
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`
    Between {
        expr: Box<Expr>,
        lo: Box<Expr>,
        hi: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for an unqualified column.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Number of `?` parameters contained in this expression.
    pub fn param_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |e| {
            if matches!(e, Expr::Param(_)) {
                n += 1;
            }
        });
        n
    }

    /// Depth-first traversal.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary(_, e) | Expr::IsNull { expr: e, .. } => e.walk(f),
            Expr::Binary(a, _, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Between { expr, lo, hi } => {
                expr.walk(f);
                lo.walk(f);
                hi.walk(f);
            }
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) | Expr::Resolved { .. } => {}
        }
    }

    /// True when this expression contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Func { name, .. } = e {
                if is_aggregate_name(name) {
                    found = true;
                }
            }
        });
        found
    }
}

/// Whether a function name denotes an aggregate.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_write_classification() {
        assert!(!Statement::Begin.is_write());
        assert!(!Statement::Select(SelectStmt {
            distinct: false,
            items: vec![SelectItem::Wildcard],
            from: None,
            filter: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
            offset: None,
        })
        .is_write());
        assert!(Statement::Delete {
            table: "t".into(),
            filter: None
        }
        .is_write());
    }

    #[test]
    fn param_count_walks_nested() {
        let e = Expr::Binary(
            Box::new(Expr::Param(0)),
            BinOp::And,
            Box::new(Expr::InList {
                expr: Box::new(Expr::col("x")),
                list: vec![Expr::Param(1), Expr::Param(2)],
                negated: false,
            }),
        );
        assert_eq!(e.param_count(), 3);
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Func {
            name: "count".into(),
            args: vec![],
            star: true,
        };
        assert!(agg.contains_aggregate());
        let scalar = Expr::Func {
            name: "LOWER".into(),
            args: vec![Expr::col("name")],
            star: false,
        };
        assert!(!scalar.contains_aggregate());
    }

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef {
            table: "users".into(),
            alias: Some("u".into()),
        };
        assert_eq!(t.binding(), "u");
        let t2 = TableRef {
            table: "users".into(),
            alias: None,
        };
        assert_eq!(t2.binding(), "users");
    }
}
