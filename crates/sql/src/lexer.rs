//! SQL lexer: text → token stream.

use crate::error::SqlError;

/// A lexical token. Keywords are uppercased identifiers matched by the
/// parser, so the lexer only distinguishes shape, not vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (normalized to uppercase for matching; the
    /// original text is preserved for identifiers).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    /// `?` positional parameter.
    Param,
    /// Punctuation and operators.
    Symbol(Sym),
}

/// Operator / punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl Token {
    /// The uppercase form of a word token, if this is a word.
    pub fn word_upper(&self) -> Option<String> {
        match self {
            Token::Word(w) => Some(w.to_ascii_uppercase()),
            _ => None,
        }
    }
}

/// Tokenize SQL text.
pub fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Sym::Semicolon));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                out.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            '/' => {
                out.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '%' => {
                out.push(Token::Symbol(Sym::Percent));
                i += 1;
            }
            '?' => {
                out.push(Token::Param);
                i += 1;
            }
            '=' => {
                out.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push(Token::Symbol(Sym::NotEq));
                i += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Symbol(Sym::LtEq));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Symbol(Sym::NotEq));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Symbol(Sym::GtEq));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Lex("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Keep multi-byte UTF-8 intact by slicing chars.
                        let ch_start = i;
                        let ch = input[ch_start..].chars().next().expect("in-bounds char");
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                out.push(Token::Str(s));
            }
            '`' | '"' => {
                // Quoted identifier; advance by whole chars so multi-byte
                // UTF-8 inside the quotes cannot split a character.
                let quote = bytes[i];
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != quote {
                    let ch = input[i..].chars().next().expect("in-bounds char");
                    i += ch.len_utf8();
                }
                if i >= bytes.len() {
                    return Err(SqlError::Lex("unterminated quoted identifier".into()));
                }
                out.push(Token::Word(input[start..i].to_string()));
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let f: f64 = text
                        .parse()
                        .map_err(|_| SqlError::Lex(format!("bad float literal '{text}'")))?;
                    out.push(Token::Float(f));
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => out.push(Token::Int(v)),
                        Err(_) => {
                            let f: f64 = text.parse().map_err(|_| {
                                SqlError::Lex(format!("bad numeric literal '{text}'"))
                            })?;
                            out.push(Token::Float(f));
                        }
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                // Identifiers are ASCII (SQL names); stop at the first
                // non-identifier byte. ASCII-only scanning keeps every index
                // on a char boundary.
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Word(input[start..i].to_string()));
            }
            other => {
                return Err(SqlError::Lex(format!(
                    "unexpected character '{other}' at byte {i}"
                )));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_select() {
        let toks = lex("SELECT id, name FROM users WHERE id = 42;").unwrap();
        assert_eq!(toks[0], Token::Word("SELECT".into()));
        assert!(toks.contains(&Token::Symbol(Sym::Comma)));
        assert!(toks.contains(&Token::Int(42)));
        assert_eq!(*toks.last().unwrap(), Token::Symbol(Sym::Semicolon));
    }

    #[test]
    fn string_escapes() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("'oops"), Err(SqlError::Lex(_))));
    }

    #[test]
    fn numbers_int_float_exponent() {
        let toks = lex("1 2.5 3e2 9223372036854775807").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(300.0),
                Token::Int(i64::MAX),
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = lex("a <= b >= c <> d != e < f > g = h").unwrap();
        let syms: Vec<Sym> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(
            syms,
            vec![
                Sym::LtEq,
                Sym::GtEq,
                Sym::NotEq,
                Sym::NotEq,
                Sym::Lt,
                Sym::Gt,
                Sym::Eq
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert!(toks.contains(&Token::Int(2)));
    }

    #[test]
    fn params_and_quoted_identifiers() {
        let toks = lex("INSERT INTO `order` VALUES (?, ?)").unwrap();
        assert_eq!(toks.iter().filter(|t| **t == Token::Param).count(), 2);
        assert!(toks.contains(&Token::Word("order".into())));
    }

    #[test]
    fn unicode_in_strings() {
        let toks = lex("'héllo wörld'").unwrap();
        assert_eq!(toks, vec![Token::Str("héllo wörld".into())]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(lex("SELECT @"), Err(SqlError::Lex(_))));
    }
}
