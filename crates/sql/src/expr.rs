//! Scalar expression evaluation with SQL three-valued logic.

use crate::ast::{is_aggregate_name, BinOp, Expr, UnOp};
use crate::error::SqlError;
use crate::value::Value;
use std::borrow::Cow;
use std::cmp::Ordering;

/// Shared NULL for resolvers that hand out references (NULL-extended rows).
pub(crate) static NULL_VALUE: Value = Value::Null;

/// Evaluation context: bound parameters plus the session clock reading.
///
/// `now_micros` is supplied by the *session* (ultimately the owning VM's
/// drifting clock), never by the host machine — this is what makes the
/// paper's heartbeat measurement work: the same replicated `INSERT ...
/// NOW_MICROS()` statement commits different timestamps on master and slave.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx<'a> {
    pub params: &'a [Value],
    pub now_micros: i64,
}

impl<'a> EvalCtx<'a> {
    /// Context with no parameters.
    pub fn bare(now_micros: i64) -> Self {
        Self {
            params: &[],
            now_micros,
        }
    }
}

/// Resolves column references against the current row scope.
pub trait ColumnResolver {
    /// Look up `qualifier.name` (or bare `name`).
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Value, SqlError>;

    /// Look up a planner-resolved `(binding, column)` position — the fast
    /// path for [`Expr::Resolved`]. Resolvers without a positional scope
    /// reject it (such a node can only reach them through a logic error).
    fn resolve_idx(&self, binding: usize, col: usize) -> Result<Value, SqlError> {
        Err(SqlError::UnknownColumn(format!("#{binding}.{col}")))
    }

    /// Borrowing variant of [`ColumnResolver::resolve_idx`]: returns a
    /// reference into the scoped row instead of a clone, so predicate
    /// evaluation over Text columns costs no allocation. Resolvers that can
    /// hand out references override this; the default signals "no borrowed
    /// scope" and [`eval_cow`] falls back to the owning path.
    fn resolve_idx_ref(&self, binding: usize, col: usize) -> Result<&Value, SqlError> {
        let _ = (binding, col);
        Err(SqlError::Unsupported("no borrowed scope".into()))
    }
}

/// A resolver for scopes with no columns (e.g. `SELECT 1 + 1`).
pub struct NoColumns;

impl ColumnResolver for NoColumns {
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Value, SqlError> {
        let q = qualifier.map(|q| format!("{q}.")).unwrap_or_default();
        Err(SqlError::UnknownColumn(format!("{q}{name}")))
    }
}

/// Evaluate an expression to an owned value.
pub fn eval(expr: &Expr, ctx: &EvalCtx, row: &dyn ColumnResolver) -> Result<Value, SqlError> {
    eval_cow(expr, ctx, row).map(Cow::into_owned)
}

/// Evaluate an expression's SQL truth without materializing the value —
/// the predicate fast path (filters, JOIN conditions, HAVING).
pub fn eval_truth(expr: &Expr, ctx: &EvalCtx, row: &dyn ColumnResolver) -> Result<Truth, SqlError> {
    let v = eval_cow(expr, ctx, row)?;
    Ok(truth(&v))
}

/// Evaluate an expression, borrowing the result where it already lives in
/// the row scope, the parameter list, or the expression tree itself
/// (planner-resolved columns, params, literals). Comparisons and predicates
/// over Text columns therefore allocate nothing; only computed values
/// (arithmetic, functions) are owned.
pub fn eval_cow<'e>(
    expr: &'e Expr,
    ctx: &'e EvalCtx,
    row: &'e dyn ColumnResolver,
) -> Result<Cow<'e, Value>, SqlError> {
    match expr {
        Expr::Literal(v) => Ok(Cow::Borrowed(v)),
        Expr::Column { qualifier, name } => row.resolve(qualifier.as_deref(), name).map(Cow::Owned),
        Expr::Resolved { binding, col } => match row.resolve_idx_ref(*binding, *col) {
            Ok(v) => Ok(Cow::Borrowed(v)),
            Err(SqlError::Unsupported(_)) => row.resolve_idx(*binding, *col).map(Cow::Owned),
            Err(e) => Err(e),
        },
        Expr::Param(i) => ctx
            .params
            .get(*i)
            .map(Cow::Borrowed)
            .ok_or_else(|| SqlError::BadParameter(format!("parameter ?{} not bound", i + 1))),
        Expr::Unary(op, inner) => {
            let v = eval_cow(inner, ctx, row)?;
            match op {
                UnOp::Neg => match v.as_ref() {
                    Value::Null => Ok(Cow::Owned(Value::Null)),
                    Value::Int(i) => Ok(Cow::Owned(Value::Int(-i))),
                    Value::Double(d) => Ok(Cow::Owned(Value::Double(-d))),
                    other => Err(SqlError::TypeMismatch(format!("cannot negate {other:?}"))),
                },
                UnOp::Not => Ok(Cow::Owned(match truth(&v) {
                    Truth::True => Value::Bool(false),
                    Truth::False => Value::Bool(true),
                    Truth::Unknown => Value::Null,
                })),
            }
        }
        Expr::Binary(a, op, b) => eval_binary(a, *op, b, ctx, row),
        Expr::Func { name, args, star } => eval_func(name, args, *star, ctx, row).map(Cow::Owned),
        Expr::IsNull { expr, negated } => {
            let v = eval_cow(expr, ctx, row)?;
            Ok(Cow::Owned(Value::Bool(v.is_null() != *negated)))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_cow(expr, ctx, row)?;
            let p = eval_cow(pattern, ctx, row)?;
            match (v.as_ref(), p.as_ref()) {
                (Value::Null, _) | (_, Value::Null) => Ok(Cow::Owned(Value::Null)),
                (Value::Text(s), Value::Text(pat)) => {
                    Ok(Cow::Owned(Value::Bool(like_match(s, pat) != *negated)))
                }
                (a, b) => Err(SqlError::TypeMismatch(format!(
                    "LIKE requires text operands, got {a:?} LIKE {b:?}"
                ))),
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_cow(expr, ctx, row)?;
            if v.is_null() {
                return Ok(Cow::Owned(Value::Null));
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval_cow(item, ctx, row)?;
                if iv.is_null() {
                    saw_null = true;
                    continue;
                }
                if v.sql_cmp(&iv) == Some(Ordering::Equal) {
                    return Ok(Cow::Owned(Value::Bool(!negated)));
                }
            }
            if saw_null {
                Ok(Cow::Owned(Value::Null))
            } else {
                Ok(Cow::Owned(Value::Bool(*negated)))
            }
        }
        Expr::Between { expr, lo, hi } => {
            let v = eval_cow(expr, ctx, row)?;
            let l = eval_cow(lo, ctx, row)?;
            let h = eval_cow(hi, ctx, row)?;
            if v.is_null() || l.is_null() || h.is_null() {
                return Ok(Cow::Owned(Value::Null));
            }
            let ge = v.sql_cmp(&l).map(|o| o != Ordering::Less);
            let le = v.sql_cmp(&h).map(|o| o != Ordering::Greater);
            match (ge, le) {
                (Some(a), Some(b)) => Ok(Cow::Owned(Value::Bool(a && b))),
                _ => Err(SqlError::TypeMismatch(
                    "BETWEEN operands incomparable".into(),
                )),
            }
        }
    }
}

/// SQL three-valued truth of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    True,
    False,
    Unknown,
}

/// Classify a value as a SQL truth value.
pub fn truth(v: &Value) -> Truth {
    match v {
        Value::Null => Truth::Unknown,
        other => {
            if other.is_true() {
                Truth::True
            } else {
                Truth::False
            }
        }
    }
}

fn eval_binary<'e>(
    a: &'e Expr,
    op: BinOp,
    b: &'e Expr,
    ctx: &'e EvalCtx,
    row: &'e dyn ColumnResolver,
) -> Result<Cow<'e, Value>, SqlError> {
    let owned = |v: Value| Ok(Cow::Owned(v));
    match op {
        BinOp::And => {
            let lv = eval_cow(a, ctx, row)?;
            let l = truth(&lv);
            if l == Truth::False {
                return owned(Value::Bool(false));
            }
            let rv = eval_cow(b, ctx, row)?;
            let r = truth(&rv);
            owned(match (l, r) {
                (Truth::True, Truth::True) => Value::Bool(true),
                (_, Truth::False) => Value::Bool(false),
                _ => Value::Null,
            })
        }
        BinOp::Or => {
            let lv = eval_cow(a, ctx, row)?;
            let l = truth(&lv);
            if l == Truth::True {
                return owned(Value::Bool(true));
            }
            let rv = eval_cow(b, ctx, row)?;
            let r = truth(&rv);
            owned(match (l, r) {
                (_, Truth::True) => Value::Bool(true),
                (Truth::False, Truth::False) => Value::Bool(false),
                _ => Value::Null,
            })
        }
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let l = eval_cow(a, ctx, row)?;
            let r = eval_cow(b, ctx, row)?;
            match l.sql_cmp(&r) {
                None => owned(Value::Null),
                Some(ord) => {
                    let res = match op {
                        BinOp::Eq => ord == Ordering::Equal,
                        BinOp::NotEq => ord != Ordering::Equal,
                        BinOp::Lt => ord == Ordering::Less,
                        BinOp::LtEq => ord != Ordering::Greater,
                        BinOp::Gt => ord == Ordering::Greater,
                        BinOp::GtEq => ord != Ordering::Less,
                        _ => unreachable!(),
                    };
                    owned(Value::Bool(res))
                }
            }
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let l = eval_cow(a, ctx, row)?;
            let r = eval_cow(b, ctx, row)?;
            arith(&l, op, &r).map(Cow::Owned)
        }
    }
}

fn arith(l: &Value, op: BinOp, r: &Value) -> Result<Value, SqlError> {
    use Value::*;
    if l.is_null() || r.is_null() {
        return Ok(Null);
    }
    // Text concatenation via + is not SQL; reject non-numeric.
    let as_pair = |l: &Value, r: &Value| -> Option<(f64, f64, bool)> {
        let f = |v: &Value| match v {
            Int(i) => Some((*i as f64, true)),
            Timestamp(t) => Some((*t as f64, true)),
            Double(d) => Some((*d, false)),
            _ => None,
        };
        let (a, ai) = f(l)?;
        let (b, bi) = f(r)?;
        Some((a, b, ai && bi))
    };
    let (a, b, both_int) = as_pair(l, r).ok_or_else(|| {
        SqlError::TypeMismatch(format!("arithmetic on non-numeric values {l:?}, {r:?}"))
    })?;
    let v = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Ok(Null); // MySQL: division by zero yields NULL
            }
            a / b
        }
        BinOp::Mod => {
            if b == 0.0 {
                return Ok(Null);
            }
            a % b
        }
        _ => unreachable!(),
    };
    if both_int && op != BinOp::Div && v.abs() < (i64::MAX as f64) {
        Ok(Int(v as i64))
    } else {
        Ok(Double(v))
    }
}

fn eval_func(
    name: &str,
    args: &[Expr],
    star: bool,
    ctx: &EvalCtx,
    row: &dyn ColumnResolver,
) -> Result<Value, SqlError> {
    let upper = name.to_ascii_uppercase();
    if is_aggregate_name(&upper) {
        // Aggregates are folded by the executor; reaching here means the
        // query used one outside an aggregation context.
        return Err(SqlError::Unsupported(format!(
            "aggregate {upper} used in a non-aggregate context"
        )));
    }
    if star {
        return Err(SqlError::Parse(format!("{upper}(*) is not a function")));
    }
    let mut vals = Vec::with_capacity(args.len());
    for a in args {
        vals.push(eval(a, ctx, row)?);
    }
    let argc = |n: usize| -> Result<(), SqlError> {
        if vals.len() == n {
            Ok(())
        } else {
            Err(SqlError::BadParameter(format!(
                "{upper} expects {n} argument(s), got {}",
                vals.len()
            )))
        }
    };
    match upper.as_str() {
        // The paper's microsecond-resolution timestamp UDF (their workaround
        // for MySQL bug #8523).
        "NOW_MICROS" => {
            argc(0)?;
            Ok(Value::Timestamp(ctx.now_micros))
        }
        "LOWER" => {
            argc(1)?;
            match &vals[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(s.to_lowercase())),
                v => Err(SqlError::TypeMismatch(format!("LOWER on {v:?}"))),
            }
        }
        "UPPER" => {
            argc(1)?;
            match &vals[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(s.to_uppercase())),
                v => Err(SqlError::TypeMismatch(format!("UPPER on {v:?}"))),
            }
        }
        "LENGTH" => {
            argc(1)?;
            match &vals[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                v => Err(SqlError::TypeMismatch(format!("LENGTH on {v:?}"))),
            }
        }
        "ABS" => {
            argc(1)?;
            match &vals[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Double(d) => Ok(Value::Double(d.abs())),
                v => Err(SqlError::TypeMismatch(format!("ABS on {v:?}"))),
            }
        }
        "FLOOR" => {
            argc(1)?;
            match &vals[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Double(d) => Ok(Value::Int(d.floor() as i64)),
                v => Err(SqlError::TypeMismatch(format!("FLOOR on {v:?}"))),
            }
        }
        "CEIL" | "CEILING" => {
            argc(1)?;
            match &vals[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Double(d) => Ok(Value::Int(d.ceil() as i64)),
                v => Err(SqlError::TypeMismatch(format!("CEIL on {v:?}"))),
            }
        }
        "COALESCE" | "IFNULL" => {
            if vals.is_empty() {
                return Err(SqlError::BadParameter(format!("{upper} needs arguments")));
            }
            Ok(vals
                .into_iter()
                .find(|v| !v.is_null())
                .unwrap_or(Value::Null))
        }
        "SUBSTRING" | "SUBSTR" => {
            // SUBSTRING(str, pos [, len]) — 1-based pos like MySQL.
            if vals.len() < 2 || vals.len() > 3 {
                return Err(SqlError::BadParameter(format!(
                    "{upper} expects 2 or 3 arguments, got {}",
                    vals.len()
                )));
            }
            match (&vals[0], &vals[1]) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Text(text), Value::Int(pos)) => {
                    let chars: Vec<char> = text.chars().collect();
                    let start = if *pos > 0 {
                        (*pos - 1) as usize
                    } else if *pos < 0 {
                        chars.len().saturating_sub(pos.unsigned_abs() as usize)
                    } else {
                        return Ok(Value::Text(String::new()));
                    };
                    let len = match vals.get(2) {
                        Some(Value::Int(l)) if *l >= 0 => *l as usize,
                        Some(Value::Null) => return Ok(Value::Null),
                        Some(v) => {
                            return Err(SqlError::TypeMismatch(format!(
                                "SUBSTRING length must be INT, got {v:?}"
                            )))
                        }
                        None => usize::MAX,
                    };
                    Ok(Value::Text(chars.iter().skip(start).take(len).collect()))
                }
                (a, b) => Err(SqlError::TypeMismatch(format!("SUBSTRING on {a:?}, {b:?}"))),
            }
        }
        "TRIM" => {
            argc(1)?;
            match &vals[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(s.trim().to_string())),
                v => Err(SqlError::TypeMismatch(format!("TRIM on {v:?}"))),
            }
        }
        "REPLACE" => {
            argc(3)?;
            match (&vals[0], &vals[1], &vals[2]) {
                (Value::Null, _, _) | (_, Value::Null, _) | (_, _, Value::Null) => Ok(Value::Null),
                (Value::Text(s), Value::Text(from), Value::Text(to)) => {
                    if from.is_empty() {
                        Ok(Value::Text(s.clone()))
                    } else {
                        Ok(Value::Text(s.replace(from.as_str(), to)))
                    }
                }
                (a, b, c) => Err(SqlError::TypeMismatch(format!(
                    "REPLACE on {a:?}, {b:?}, {c:?}"
                ))),
            }
        }
        "ROUND" => {
            if vals.is_empty() || vals.len() > 2 {
                return Err(SqlError::BadParameter(
                    "ROUND expects 1 or 2 arguments".into(),
                ));
            }
            let digits = match vals.get(1) {
                Some(Value::Int(d)) => *d,
                Some(Value::Null) => return Ok(Value::Null),
                Some(v) => {
                    return Err(SqlError::TypeMismatch(format!(
                        "ROUND digits must be INT, got {v:?}"
                    )))
                }
                None => 0,
            };
            match &vals[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Double(d) => {
                    let scale = 10f64.powi(digits as i32);
                    let r = (d * scale).round() / scale;
                    if digits <= 0 {
                        Ok(Value::Int(r as i64))
                    } else {
                        Ok(Value::Double(r))
                    }
                }
                v => Err(SqlError::TypeMismatch(format!("ROUND on {v:?}"))),
            }
        }
        "GREATEST" | "LEAST" => {
            if vals.is_empty() {
                return Err(SqlError::BadParameter(format!("{upper} needs arguments")));
            }
            if vals.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let want_greater = upper == "GREATEST";
            let mut best = vals[0].clone();
            for v in &vals[1..] {
                match v.sql_cmp(&best) {
                    Some(std::cmp::Ordering::Greater) if want_greater => best = v.clone(),
                    Some(std::cmp::Ordering::Less) if !want_greater => best = v.clone(),
                    None => {
                        return Err(SqlError::TypeMismatch(format!(
                            "{upper} operands incomparable"
                        )))
                    }
                    _ => {}
                }
            }
            Ok(best)
        }
        "CONCAT" => {
            let mut s = String::new();
            for v in &vals {
                if v.is_null() {
                    return Ok(Value::Null);
                }
                s.push_str(&v.to_string());
            }
            Ok(Value::Text(s))
        }
        other => Err(SqlError::UnknownFunction(other.to_string())),
    }
}

/// SQL LIKE matcher: `%` matches any run, `_` matches one character.
/// Case-sensitive (like MySQL with a binary collation).
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try every split (including empty).
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn eval_one(sql: &str, params: &[Value]) -> Result<Value, SqlError> {
        // Parse `SELECT <expr>` and evaluate the lone item.
        let stmt = parse(&format!("SELECT {sql}"))?;
        match stmt {
            crate::ast::Statement::Select(sel) => match &sel.items[0] {
                crate::ast::SelectItem::Expr { expr, .. } => {
                    let ctx = EvalCtx {
                        params,
                        now_micros: 1_000_000,
                    };
                    eval(expr, &ctx, &NoColumns)
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_one("1 + 2 * 3", &[]).unwrap(), Value::Int(7));
        assert_eq!(eval_one("(1 + 2) * 3", &[]).unwrap(), Value::Int(9));
        assert_eq!(eval_one("7 / 2", &[]).unwrap(), Value::Double(3.5));
        assert_eq!(eval_one("7 % 3", &[]).unwrap(), Value::Int(1));
        assert_eq!(eval_one("-5 + 1", &[]).unwrap(), Value::Int(-4));
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(eval_one("1 / 0", &[]).unwrap(), Value::Null);
        assert_eq!(eval_one("1 % 0", &[]).unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval_one("NULL AND TRUE", &[]).unwrap(), Value::Null);
        assert_eq!(eval_one("NULL AND FALSE", &[]).unwrap(), Value::Bool(false));
        assert_eq!(eval_one("NULL OR TRUE", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_one("NULL OR FALSE", &[]).unwrap(), Value::Null);
        assert_eq!(eval_one("NOT NULL", &[]).unwrap(), Value::Null);
        assert_eq!(eval_one("NULL = NULL", &[]).unwrap(), Value::Null);
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_one("1 < 2", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_one("2 >= 2.0", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_one("'a' <> 'b'", &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn is_null_and_in_and_between() {
        assert_eq!(eval_one("NULL IS NULL", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_one("1 IS NOT NULL", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_one("2 IN (1, 2, 3)", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_one("4 IN (1, 2, 3)", &[]).unwrap(), Value::Bool(false));
        assert_eq!(eval_one("4 NOT IN (1, 2)", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_one("4 IN (1, NULL)", &[]).unwrap(), Value::Null);
        assert_eq!(
            eval_one("2 BETWEEN 1 AND 3", &[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_one("0 BETWEEN 1 AND 3", &[]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "H%"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", "a_"));
        assert!(like_match("a%b", "a%b"));
        assert_eq!(
            eval_one("'web 2.0' LIKE '%2.0'", &[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_one("'x' NOT LIKE 'y%'", &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn params_bind_in_order() {
        assert_eq!(
            eval_one("? + ?", &[Value::Int(1), Value::Int(2)]).unwrap(),
            Value::Int(3)
        );
        assert!(matches!(
            eval_one("? + ?", &[Value::Int(1)]),
            Err(SqlError::BadParameter(_))
        ));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(
            eval_one("LOWER('AbC')", &[]).unwrap(),
            Value::Text("abc".into())
        );
        assert_eq!(eval_one("LENGTH('héllo')", &[]).unwrap(), Value::Int(5));
        assert_eq!(eval_one("ABS(-3)", &[]).unwrap(), Value::Int(3));
        assert_eq!(
            eval_one("COALESCE(NULL, NULL, 7)", &[]).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            eval_one("CONCAT('a', 1, 'b')", &[]).unwrap(),
            Value::Text("a1b".into())
        );
        assert_eq!(eval_one("FLOOR(2.7)", &[]).unwrap(), Value::Int(2));
        assert_eq!(eval_one("CEIL(2.1)", &[]).unwrap(), Value::Int(3));
    }

    #[test]
    fn now_micros_reads_session_clock() {
        assert_eq!(
            eval_one("NOW_MICROS()", &[]).unwrap(),
            Value::Timestamp(1_000_000)
        );
    }

    #[test]
    fn unknown_function_rejected() {
        assert!(matches!(
            eval_one("FROBNICATE(1)", &[]),
            Err(SqlError::UnknownFunction(_))
        ));
    }

    #[test]
    fn aggregate_outside_aggregation_rejected() {
        assert!(matches!(
            eval_one("COUNT(*)", &[]),
            Err(SqlError::Unsupported(_))
        ));
    }
}
