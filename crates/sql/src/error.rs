//! Engine error type.

use std::fmt;

/// Errors surfaced by the SQL engine. User input (SQL text, parameters) can
/// produce any of these; none panic.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error: unexpected character or unterminated literal.
    Lex(String),
    /// Syntax error from the parser.
    Parse(String),
    /// Unknown table.
    UnknownTable(String),
    /// Unknown column (optionally qualified).
    UnknownColumn(String),
    /// Table already exists.
    DuplicateTable(String),
    /// Index already exists.
    DuplicateIndex(String),
    /// Primary-key or unique violation.
    DuplicateKey(String),
    /// Type mismatch or impossible coercion.
    TypeMismatch(String),
    /// NOT NULL violation or arity mismatch on INSERT.
    Constraint(String),
    /// Placeholder count/parameter mismatch.
    BadParameter(String),
    /// Unknown scalar or aggregate function.
    UnknownFunction(String),
    /// Transaction state error (e.g. COMMIT without BEGIN).
    Transaction(String),
    /// Binlog decode failure (corrupt or truncated event).
    BinlogCorrupt(String),
    /// Anything else.
    Unsupported(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            SqlError::DuplicateTable(t) => write!(f, "table '{t}' already exists"),
            SqlError::DuplicateIndex(i) => write!(f, "index '{i}' already exists"),
            SqlError::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            SqlError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::BadParameter(m) => write!(f, "bad parameter: {m}"),
            SqlError::UnknownFunction(n) => write!(f, "unknown function '{n}'"),
            SqlError::Transaction(m) => write!(f, "transaction error: {m}"),
            SqlError::BinlogCorrupt(m) => write!(f, "binlog corrupt: {m}"),
            SqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            SqlError::UnknownTable("users".into()).to_string(),
            "unknown table 'users'"
        );
        assert!(SqlError::Parse("expected FROM".into())
            .to_string()
            .contains("expected FROM"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SqlError::Lex("x".into()));
    }
}
