//! Recursive-descent parser: token stream → [`Statement`].

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::{lex, Sym, Token};
use crate::schema::{Column, TableSchema};
use crate::value::{DataType, Value};

/// Parse one SQL statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement, SqlError> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params_seen: 0,
    };
    let stmt = p.statement()?;
    p.eat_symbol(Sym::Semicolon);
    if !p.at_end() {
        return Err(SqlError::Parse(format!(
            "unexpected trailing tokens starting at {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params_seen: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Peek the uppercase keyword at the cursor.
    fn peek_kw(&self) -> Option<String> {
        self.peek().and_then(|t| t.word_upper())
    }

    /// Consume a keyword if it matches (case-insensitive); returns success.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw().as_deref() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require a keyword.
    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if self.peek() == Some(&Token::Symbol(s)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> Result<(), SqlError> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    /// Require an identifier (any word, including what could be a keyword in
    /// other positions).
    fn identifier(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Word(w)) => Ok(w),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        match self.peek_kw().as_deref() {
            Some("SELECT") => Ok(Statement::Select(self.select()?)),
            Some("EXPLAIN") => {
                self.pos += 1;
                Ok(Statement::Explain(Box::new(self.select()?)))
            }
            Some("INSERT") => self.insert(),
            Some("UPDATE") => self.update(),
            Some("DELETE") => self.delete(),
            Some("CREATE") => self.create(),
            Some("DROP") => self.drop_table(),
            Some("BEGIN") => {
                self.pos += 1;
                Ok(Statement::Begin)
            }
            Some("START") => {
                self.pos += 1;
                self.expect_kw("TRANSACTION")?;
                Ok(Statement::Begin)
            }
            Some("COMMIT") => {
                self.pos += 1;
                Ok(Statement::Commit)
            }
            Some("ROLLBACK") => {
                self.pos += 1;
                Ok(Statement::Rollback)
            }
            other => Err(SqlError::Parse(format!(
                "expected a statement, found {other:?}"
            ))),
        }
    }

    // ---------------- SELECT ----------------

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        self.eat_kw("ALL");
        let mut items = Vec::new();
        loop {
            if self.eat_symbol(Sym::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.identifier()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }

        let from = if self.eat_kw("FROM") {
            Some(self.parse_from_clause()?)
        } else {
            None
        };

        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }

        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.unsigned_int("LIMIT")?);
            if self.eat_kw("OFFSET") {
                offset = Some(self.unsigned_int("OFFSET")?);
            } else if self.eat_symbol(Sym::Comma) {
                // MySQL `LIMIT offset, count`
                offset = limit;
                limit = Some(self.unsigned_int("LIMIT count")?);
            }
        }

        Ok(SelectStmt {
            distinct,
            items,
            from,
            filter,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn unsigned_int(&mut self, what: &str) -> Result<u64, SqlError> {
        match self.next() {
            Some(Token::Int(v)) if v >= 0 => Ok(v as u64),
            other => Err(SqlError::Parse(format!(
                "expected non-negative integer after {what}, found {other:?}"
            ))),
        }
    }

    fn parse_from_clause(&mut self) -> Result<FromClause, SqlError> {
        let base = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.eat_kw("JOIN") {
                JoinKind::Inner
            } else {
                break;
            };
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            joins.push(Join { kind, table, on });
        }
        Ok(FromClause { base, joins })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.identifier()?;
        // Optional alias: `t alias` or `t AS alias`, but stop at clause
        // keywords.
        let alias = if self.eat_kw("AS") {
            Some(self.identifier()?)
        } else {
            match self.peek_kw().as_deref() {
                Some(
                    "WHERE" | "GROUP" | "HAVING" | "ORDER" | "LIMIT" | "INNER" | "LEFT" | "JOIN"
                    | "ON" | "SET" | "VALUES",
                ) => None,
                Some(_) => Some(self.identifier()?),
                None => None,
            }
        };
        Ok(TableRef { table, alias })
    }

    // ---------------- INSERT / UPDATE / DELETE ----------------

    fn insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.identifier()?;
        let mut columns = Vec::new();
        if self.eat_symbol(Sym::LParen) {
            loop {
                columns.push(self.identifier()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Sym::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            rows.push(row);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("UPDATE")?;
        let table = self.identifier()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_symbol(Sym::Eq)?;
            let e = self.expr()?;
            sets.push((col, e));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            filter,
        })
    }

    fn delete(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.identifier()?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    // ---------------- DDL ----------------

    fn create(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            let if_not_exists = if self.eat_kw("IF") {
                self.expect_kw("NOT")?;
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.identifier()?;
            self.expect_symbol(Sym::LParen)?;
            let mut cols = Vec::new();
            loop {
                cols.push(self.column_def()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            let schema = TableSchema::new(name, cols)?;
            Ok(Statement::CreateTable {
                schema,
                if_not_exists,
            })
        } else {
            let unique = self.eat_kw("UNIQUE");
            self.expect_kw("INDEX")?;
            let name = self.identifier()?;
            self.expect_kw("ON")?;
            let table = self.identifier()?;
            self.expect_symbol(Sym::LParen)?;
            let column = self.identifier()?;
            self.expect_symbol(Sym::RParen)?;
            Ok(Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            })
        }
    }

    fn column_def(&mut self) -> Result<Column, SqlError> {
        let name = self.identifier()?;
        let ty_word = self
            .next()
            .and_then(|t| match t {
                Token::Word(w) => Some(w.to_ascii_uppercase()),
                _ => None,
            })
            .ok_or_else(|| SqlError::Parse(format!("expected type for column '{name}'")))?;
        let ty = match ty_word.as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" => DataType::Int,
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => DataType::Double,
            "TEXT" | "VARCHAR" | "CHAR" | "LONGTEXT" | "MEDIUMTEXT" => DataType::Text,
            "BOOLEAN" | "BOOL" => DataType::Bool,
            "TIMESTAMP" | "DATETIME" => DataType::Timestamp,
            other => {
                return Err(SqlError::Parse(format!(
                    "unknown column type '{other}' for column '{name}'"
                )))
            }
        };
        // Optional (n) length, ignored.
        if self.eat_symbol(Sym::LParen) {
            let _ = self.next();
            if self.eat_symbol(Sym::Comma) {
                let _ = self.next();
            }
            self.expect_symbol(Sym::RParen)?;
        }
        let mut col = Column::new(name, ty);
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                col = col.primary_key();
            } else if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                col = col.not_null();
            } else if self.eat_kw("NULL") {
                // explicit nullable; default
            } else if self.eat_kw("AUTO_INCREMENT") {
                col = col.auto_increment();
            } else {
                break;
            }
        }
        Ok(col)
    }

    fn drop_table(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("DROP")?;
        self.expect_kw("TABLE")?;
        let if_exists = if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.identifier()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(Box::new(lhs), BinOp::Or, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(Box::new(lhs), BinOp::And, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            Ok(Expr::Unary(UnOp::Not, Box::new(inner)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        let lhs = self.additive()?;

        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }

        // [NOT] LIKE / IN / BETWEEN
        let negated = if self.peek_kw().as_deref() == Some("NOT") {
            let after = self.tokens.get(self.pos + 1).and_then(|t| t.word_upper());
            if matches!(after.as_deref(), Some("LIKE" | "IN" | "BETWEEN")) {
                self.pos += 1;
                true
            } else {
                false
            }
        } else {
            false
        };

        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_symbol(Sym::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            let between = Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
            };
            return Ok(if negated {
                Expr::Unary(UnOp::Not, Box::new(between))
            } else {
                between
            });
        }
        if negated {
            return Err(SqlError::Parse("dangling NOT".into()));
        }

        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Sym::NotEq)) => Some(BinOp::NotEq),
            Some(Token::Symbol(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Sym::LtEq)) => Some(BinOp::LtEq),
            Some(Token::Symbol(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Sym::GtEq)) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            return Ok(Expr::Binary(Box::new(lhs), op, Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinOp::Div,
                Some(Token::Symbol(Sym::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat_symbol(Sym::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner)));
        }
        if self.eat_symbol(Sym::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Expr::Literal(Value::Int(v))),
            Some(Token::Float(v)) => Ok(Expr::Literal(Value::Double(v))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::Param) => {
                let idx = self.params_seen;
                self.params_seen += 1;
                Ok(Expr::Param(idx))
            }
            Some(Token::Symbol(Sym::LParen)) => {
                let e = self.expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Word(w)) => {
                let upper = w.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => return Ok(Expr::Literal(Value::Null)),
                    "TRUE" => return Ok(Expr::Literal(Value::Bool(true))),
                    "FALSE" => return Ok(Expr::Literal(Value::Bool(false))),
                    _ => {}
                }
                // Function call?
                if self.peek() == Some(&Token::Symbol(Sym::LParen)) {
                    self.pos += 1;
                    // COUNT(*)
                    if self.eat_symbol(Sym::Star) {
                        self.expect_symbol(Sym::RParen)?;
                        return Ok(Expr::Func {
                            name: upper,
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.eat_symbol(Sym::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_symbol(Sym::Comma) {
                                break;
                            }
                        }
                        self.expect_symbol(Sym::RParen)?;
                    }
                    return Ok(Expr::Func {
                        name: upper,
                        args,
                        star: false,
                    });
                }
                // Qualified column?
                if self.eat_symbol(Sym::Dot) {
                    let name = self.identifier()?;
                    return Ok(Expr::Column {
                        qualifier: Some(w),
                        name,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name: w,
                })
            }
            other => Err(SqlError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s = parse("SELECT id, name FROM users WHERE id = 1").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items.len(), 2);
                assert!(sel.filter.is_some());
                assert_eq!(sel.from.unwrap().base.table, "users");
            }
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn parses_join_with_aliases() {
        let s = parse(
            "SELECT e.title, u.username FROM events e \
             INNER JOIN users u ON e.created_by = u.id \
             LEFT JOIN comments c ON c.event_id = e.id \
             WHERE u.id = ? ORDER BY e.title DESC LIMIT 10 OFFSET 5",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                let from = sel.from.unwrap();
                assert_eq!(from.base.binding(), "e");
                assert_eq!(from.joins.len(), 2);
                assert_eq!(from.joins[0].kind, JoinKind::Inner);
                assert_eq!(from.joins[1].kind, JoinKind::Left);
                assert_eq!(sel.limit, Some(10));
                assert_eq!(sel.offset, Some(5));
                assert!(sel.order_by[0].desc);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_mysql_style_limit() {
        let s = parse("SELECT * FROM t LIMIT 5, 10").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.offset, Some(5));
                assert_eq!(sel.limit, Some(10));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let s = parse("SELECT tag_id, COUNT(*) AS n FROM event_tags GROUP BY tag_id").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.group_by.len(), 1);
                match &sel.items[1] {
                    SelectItem::Expr { expr, alias } => {
                        assert!(expr.contains_aggregate());
                        assert_eq!(alias.as_deref(), Some("n"));
                    }
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_insert_multi_row_with_params() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, ?), (2, ?)").unwrap();
        match s {
            Statement::Insert { columns, rows, .. } => {
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][1], Expr::Param(0));
                assert_eq!(rows[1][1], Expr::Param(1));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_update_and_delete() {
        let s = parse("UPDATE users SET name = 'x', score = score + 1 WHERE id = 3").unwrap();
        assert!(matches!(s, Statement::Update { ref sets, .. } if sets.len() == 2));
        let s = parse("DELETE FROM users WHERE id IN (1, 2, 3)").unwrap();
        assert!(matches!(s, Statement::Delete { .. }));
    }

    #[test]
    fn parses_create_table_with_constraints() {
        let s = parse(
            "CREATE TABLE users (\
             id INT PRIMARY KEY AUTO_INCREMENT, \
             username VARCHAR(64) NOT NULL, \
             bio TEXT, \
             created_at TIMESTAMP NOT NULL)",
        )
        .unwrap();
        match s {
            Statement::CreateTable { schema, .. } => {
                assert_eq!(schema.arity(), 4);
                assert_eq!(schema.pk_index(), Some(0));
                assert!(schema.columns[0].auto_increment);
                assert!(schema.columns[1].not_null);
                assert!(!schema.columns[2].not_null);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_create_index_and_drop() {
        let s = parse("CREATE UNIQUE INDEX idx_u ON users (username)").unwrap();
        assert!(matches!(s, Statement::CreateIndex { unique: true, .. }));
        let s = parse("DROP TABLE IF EXISTS users").unwrap();
        assert!(matches!(
            s,
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn parses_transactions() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("START TRANSACTION;").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT;").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn operator_precedence() {
        // a OR b AND c == a OR (b AND c)
        let e = parse("SELECT a OR b AND c").unwrap();
        match e {
            Statement::Select(sel) => match &sel.items[0] {
                SelectItem::Expr { expr, .. } => match expr {
                    Expr::Binary(_, BinOp::Or, rhs) => {
                        assert!(matches!(**rhs, Expr::Binary(_, BinOp::And, _)));
                    }
                    other => panic!("got {other:?}"),
                },
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse("SELECT 1 + 2 * 3").unwrap();
        match e {
            Statement::Select(sel) => match &sel.items[0] {
                SelectItem::Expr { expr, .. } => match expr {
                    Expr::Binary(_, BinOp::Add, rhs) => {
                        assert!(matches!(**rhs, Expr::Binary(_, BinOp::Mul, _)));
                    }
                    other => panic!("got {other:?}"),
                },
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn like_in_between_not() {
        assert!(parse("SELECT * FROM t WHERE name LIKE 'a%'").is_ok());
        assert!(parse("SELECT * FROM t WHERE name NOT LIKE '%b'").is_ok());
        assert!(parse("SELECT * FROM t WHERE id NOT IN (1,2)").is_ok());
        assert!(parse("SELECT * FROM t WHERE id BETWEEN 1 AND 5").is_ok());
        assert!(parse("SELECT * FROM t WHERE x IS NOT NULL").is_ok());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(matches!(
            parse("SELECT 1 FROM t 42"),
            Err(SqlError::Parse(_))
        ));
    }

    #[test]
    fn param_positions_are_sequential() {
        let s = parse("SELECT * FROM t WHERE a = ? AND b = ? AND c = ?").unwrap();
        match s {
            Statement::Select(sel) => {
                let mut seen = Vec::new();
                sel.filter.unwrap().walk(&mut |e| {
                    if let Expr::Param(i) = e {
                        seen.push(*i);
                    }
                });
                assert_eq!(seen, vec![0, 1, 2]);
            }
            _ => panic!(),
        }
    }
}
